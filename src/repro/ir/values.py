"""IR values: constants, globals, arguments.

Instructions are also values (when they produce a result); they live in
:mod:`repro.ir.instructions`.
"""

from __future__ import annotations

from typing import Optional

from .source import SourceLocation
from .types import CType, PointerType


class Value:
    """Base of every SSA value in the IR."""

    def __init__(self, type_: CType, name: str = ""):
        self.type = type_
        self.name = name

    def short(self) -> str:
        """Compact rendering used inside instruction operand lists."""
        return f"%{self.name}" if self.name else f"%{id(self):x}"

    def __repr__(self) -> str:
        return self.short()


class Constant(Value):
    """Integer / float / string literal constant."""

    def __init__(self, type_: CType, value):
        super().__init__(type_)
        self.value = value

    def short(self) -> str:
        if isinstance(self.value, str):
            return repr(self.value)
        return str(self.value)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Constant)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class UndefValue(Value):
    """Value of an uninitialized read discovered during SSA renaming."""

    def short(self) -> str:
        return "undef"


class GlobalVariable(Value):
    """A file-scope variable.

    Its IR type is a *pointer to* the declared type, like an LLVM
    global: loads and stores go through it explicitly.
    """

    def __init__(
        self,
        name: str,
        declared_type: CType,
        initializer=None,
        location: Optional[SourceLocation] = None,
    ):
        super().__init__(PointerType(declared_type), name)
        self.declared_type = declared_type
        self.initializer = initializer
        self.location = location

    def short(self) -> str:
        return f"@{self.name}"


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, type_: CType, name: str, index: int, function=None):
        super().__init__(type_, name)
        self.index = index
        self.function = function

    def short(self) -> str:
        return f"%{self.name}"
