"""IR functions and modules."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import IRError
from .cfg import BasicBlock
from .instructions import Call, Instruction, Phi
from .source import SourceLocation
from .types import CType, FunctionType, StructType
from .values import Argument, GlobalVariable, Value


class Function(Value):
    """A function definition (with blocks) or declaration (without)."""

    def __init__(self, name: str, type_: FunctionType):
        super().__init__(type_, name)
        self.ftype = type_
        self.arguments: List[Argument] = []
        self.blocks: List[BasicBlock] = []
        self.location: Optional[SourceLocation] = None
        self.module = None
        self._next_temp = 0
        self._next_block = 0
        #: memoized derived analyses (dominator trees, control
        #: dependence, def-use); see :meth:`cached_analysis`
        self._analysis_cache: Dict[object, object] = {}

    # -- construction -------------------------------------------------

    def add_argument(self, type_: CType, name: str) -> Argument:
        arg = Argument(type_, name, len(self.arguments), self)
        self.arguments.append(arg)
        return arg

    def new_block(self, hint: str = "bb") -> BasicBlock:
        name = f"{hint}{self._next_block}"
        self._next_block += 1
        block = BasicBlock(name, self)
        self.blocks.append(block)
        return block

    def temp_name(self, hint: str = "t") -> str:
        name = f"{hint}.{self._next_temp}"
        self._next_temp += 1
        return name

    # -- structure ----------------------------------------------------

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no body")
        return self.blocks[0]

    @property
    def return_type(self) -> CType:
        return self.ftype.ret

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def calls(self) -> Iterator[Call]:
        for inst in self.instructions():
            if isinstance(inst, Call):
                yield inst

    def remove_unreachable_blocks(self) -> List[BasicBlock]:
        """Drop blocks not reachable from the entry; returns removals.

        Unreachable blocks arise from lowering (e.g. code after
        ``return``). They must be removed before dominance/SSA, which
        assume every block is reachable.
        """
        if not self.blocks:
            return []
        reachable = set()
        work = [self.entry]
        while work:
            block = work.pop()
            if block in reachable:
                continue
            reachable.add(block)
            work.extend(block.successors())
        removed = [b for b in self.blocks if b not in reachable]
        if removed:
            self.invalidate_analyses()
        self.blocks = [b for b in self.blocks if b in reachable]
        for dead in removed:
            for block in self.blocks:
                for phi in block.phis():
                    if dead in phi.incoming:
                        del phi.incoming[dead]
                        phi.operands = list(phi.incoming.values())
        return removed

    def compute_uses(self) -> Dict[Value, List[Tuple[Instruction, int]]]:
        """Def-use chains: value → list of (instruction, operand index)."""
        uses: Dict[Value, List[Tuple[Instruction, int]]] = {}
        for inst in self.instructions():
            for idx, op in enumerate(inst.operands):
                uses.setdefault(op, []).append((inst, idx))
        return uses

    # -- derived-analysis memoization ----------------------------------

    def cached_analysis(self, key, builder):
        """Build-once cache for per-function derived analyses.

        ``builder`` receives the function and its result is kept until
        :meth:`invalidate_analyses` — which every IR-mutating pass must
        call. Used for dominator trees, control dependence, and def-use
        chains so repeated analyses of one loaded Program (warm server,
        repeated SafeFlow runs, fingerprinting) stop recomputing them.
        """
        value = self._analysis_cache.get(key)
        if value is None:
            value = builder(self)
            self._analysis_cache[key] = value
        return value

    def invalidate_analyses(self) -> None:
        """Drop memoized analyses after an IR mutation."""
        self._analysis_cache.clear()

    def uses(self) -> Dict[Value, List[Tuple[Instruction, int]]]:
        """Memoized :meth:`compute_uses` (valid until IR mutation)."""
        return self.cached_analysis("uses", Function.compute_uses)

    def short(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:
        kind = "declare" if self.is_declaration else "define"
        return f"<{kind} {self.name} : {self.ftype!r}>"


class Module:
    """A whole translation-unit set: globals, structs, and functions."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}
        self.structs: Dict[str, StructType] = {}
        #: side tables filled by the front end
        self.function_annotations: Dict[str, list] = {}
        self.source_files: List[str] = []

    def add_function(self, func: Function) -> Function:
        existing = self.functions.get(func.name)
        if existing is not None and not existing.is_declaration:
            if not func.is_declaration:
                raise IRError(f"redefinition of function {func.name}")
            return existing
        func.module = self
        self.functions[func.name] = func
        return func

    def get_function(self, name: str) -> Optional[Function]:
        return self.functions.get(name)

    def add_global(self, gv: GlobalVariable) -> GlobalVariable:
        existing = self.globals.get(gv.name)
        if existing is not None:
            # a tentative/extern declaration followed by the defining
            # declaration: adopt the initializer
            if existing.initializer is None and gv.initializer is not None:
                existing.initializer = gv.initializer
            return existing
        self.globals[gv.name] = gv
        return gv

    def get_struct(self, tag: str, is_union: bool = False) -> StructType:
        key = ("union " if is_union else "struct ") + tag
        if key not in self.structs:
            self.structs[key] = StructType(tag, is_union)
        return self.structs[key]

    def defined_functions(self) -> Iterator[Function]:
        for func in self.functions.values():
            if not func.is_declaration:
                yield func

    def __repr__(self) -> str:
        return (
            f"<module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )
