"""Three-address IR instructions.

The instruction set deliberately mirrors the LLVM 1.x subset the paper's
prototype analyzed: loads/stores against explicit addresses, ``cast``
for every type conversion (what rule P3 inspects), explicit address
computation (:class:`FieldAddr` / :class:`IndexAddr`, together playing
the role of ``getelementptr``), calls, and CFG terminators. After
construction, :mod:`repro.ir.ssa` promotes scalar allocas and inserts
:class:`Phi` nodes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import IRError
from .source import SourceLocation
from .types import (
    ArrayType,
    CType,
    PointerType,
    StructType,
    VOID,
)
from .values import Value


class Instruction(Value):
    """Base instruction; also an SSA value when it produces a result."""

    #: subclasses that end a basic block
    IS_TERMINATOR = False

    def __init__(self, type_: CType, operands: Sequence[Value], name: str = ""):
        super().__init__(type_, name)
        self.operands: List[Value] = list(operands)
        self.parent = None  # BasicBlock, set on insertion
        self.location: Optional[SourceLocation] = None

    @property
    def function(self):
        return self.parent.parent if self.parent is not None else None

    def replace_operand(self, old: Value, new: Value) -> None:
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new

    def opname(self) -> str:
        return type(self).__name__.lower()

    def render(self) -> str:
        ops = ", ".join(op.short() for op in self.operands)
        head = f"{self.short()} = " if self.type != VOID else ""
        return f"{head}{self.opname()} {ops}"


class Alloca(Instruction):
    """Stack slot for a local variable; result is a pointer to it."""

    def __init__(self, allocated_type: CType, name: str):
        super().__init__(PointerType(allocated_type), [], name)
        self.allocated_type = allocated_type

    def render(self) -> str:
        return f"{self.short()} = alloca {self.allocated_type!r}"


class Load(Instruction):
    def __init__(self, ptr: Value, name: str = ""):
        ptype = ptr.type
        if not isinstance(ptype, PointerType):
            raise IRError(f"load from non-pointer {ptr.short()} : {ptype!r}")
        super().__init__(ptype.pointee, [ptr], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class Store(Instruction):
    def __init__(self, value: Value, ptr: Value):
        if not isinstance(ptr.type, PointerType):
            raise IRError(f"store to non-pointer {ptr.short()} : {ptr.type!r}")
        super().__init__(VOID, [value, ptr])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


class BinOp(Instruction):
    """Arithmetic / bitwise / logical binary operation."""

    OPS = {"+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^", "&&", "||"}

    def __init__(self, op: str, lhs: Value, rhs: Value, type_: CType, name: str = ""):
        if op not in self.OPS:
            raise IRError(f"unknown binary op {op!r}")
        super().__init__(type_, [lhs, rhs], name)
        self.op = op

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def render(self) -> str:
        return (
            f"{self.short()} = binop {self.op!r} "
            f"{self.operands[0].short()}, {self.operands[1].short()}"
        )


class UnaryOp(Instruction):
    OPS = {"-", "~", "!", "+"}

    def __init__(self, op: str, operand: Value, type_: CType, name: str = ""):
        if op not in self.OPS:
            raise IRError(f"unknown unary op {op!r}")
        super().__init__(type_, [operand], name)
        self.op = op

    def render(self) -> str:
        return f"{self.short()} = unop {self.op!r} {self.operands[0].short()}"


class Cmp(Instruction):
    OPS = {"==", "!=", "<", "<=", ">", ">="}

    def __init__(self, op: str, lhs: Value, rhs: Value, type_: CType, name: str = ""):
        if op not in self.OPS:
            raise IRError(f"unknown comparison {op!r}")
        super().__init__(type_, [lhs, rhs], name)
        self.op = op

    def render(self) -> str:
        return (
            f"{self.short()} = cmp {self.op!r} "
            f"{self.operands[0].short()}, {self.operands[1].short()}"
        )


class Cast(Instruction):
    """Explicit type conversion; the only way types change in the IR.

    ``kind`` is one of ``bitcast`` (pointer→pointer), ``ptrtoint``,
    ``inttoptr``, ``numeric`` (int/float conversions). Rule P3 inspects
    ``bitcast`` and ``ptrtoint`` applied to shared-memory pointers.
    """

    KINDS = {"bitcast", "ptrtoint", "inttoptr", "numeric"}

    def __init__(self, value: Value, to_type: CType, name: str = ""):
        super().__init__(to_type, [value], name)
        from_t = value.type
        if from_t.is_pointer and to_type.is_pointer:
            self.kind = "bitcast"
        elif from_t.is_pointer and to_type.is_integer:
            self.kind = "ptrtoint"
        elif from_t.is_integer and to_type.is_pointer:
            self.kind = "inttoptr"
        else:
            self.kind = "numeric"

    @property
    def source(self) -> Value:
        return self.operands[0]

    def render(self) -> str:
        return f"{self.short()} = cast({self.kind}) {self.operands[0].short()} to {self.type!r}"


class FieldAddr(Instruction):
    """Address of ``ptr->field`` (struct member access)."""

    def __init__(self, ptr: Value, field_name: str, name: str = ""):
        ptype = ptr.type
        if not isinstance(ptype, PointerType) or not isinstance(
            ptype.pointee, StructType
        ):
            raise IRError(
                f"fieldaddr base {ptr.short()} : {ptype!r} is not a struct pointer"
            )
        field = ptype.pointee.field(field_name)
        super().__init__(PointerType(field.type), [ptr], name)
        self.field_name = field_name
        self.field_offset = field.offset

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    def render(self) -> str:
        return f"{self.short()} = fieldaddr {self.operands[0].short()}.{self.field_name}"


class IndexAddr(Instruction):
    """Address of ``base[index]`` — array indexing or pointer arithmetic.

    If the base is a pointer to an array, the result points at the
    element type (a decayed access); otherwise it is pointer arithmetic
    on the pointee type.
    """

    def __init__(self, ptr: Value, index: Value, name: str = ""):
        ptype = ptr.type
        if not isinstance(ptype, PointerType):
            raise IRError(f"indexaddr base {ptr.short()} : {ptype!r} is not a pointer")
        if isinstance(ptype.pointee, ArrayType):
            elem = ptype.pointee.element
        else:
            elem = ptype.pointee
        super().__init__(PointerType(elem), [ptr, index], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]

    def render(self) -> str:
        return (
            f"{self.short()} = indexaddr {self.operands[0].short()}"
            f"[{self.operands[1].short()}]"
        )


class Call(Instruction):
    """Direct or indirect call. ``callee`` is a Function, a declaration
    name (str) for externals, or a Value for indirect calls."""

    def __init__(self, callee, args: Sequence[Value], ret_type: CType, name: str = ""):
        super().__init__(ret_type, list(args), name)
        self.callee = callee

    @property
    def callee_name(self) -> Optional[str]:
        from .function import Function

        if isinstance(self.callee, str):
            return self.callee
        if isinstance(self.callee, Function):
            return self.callee.name
        return None

    def render(self) -> str:
        target = self.callee_name or self.callee.short()
        args = ", ".join(a.short() for a in self.operands)
        head = f"{self.short()} = " if self.type != VOID else ""
        return f"{head}call {target}({args})"


class Ret(Instruction):
    IS_TERMINATOR = True

    def __init__(self, value: Optional[Value] = None):
        super().__init__(VOID, [value] if value is not None else [])

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def render(self) -> str:
        if self.operands:
            return f"ret {self.operands[0].short()}"
        return "ret void"


class Jump(Instruction):
    IS_TERMINATOR = True

    def __init__(self, target):
        super().__init__(VOID, [])
        self.target = target

    def render(self) -> str:
        return f"jump {self.target.name}"


class CondBranch(Instruction):
    IS_TERMINATOR = True

    def __init__(self, cond: Value, true_block, false_block):
        super().__init__(VOID, [cond])
        self.true_block = true_block
        self.false_block = false_block

    @property
    def condition(self) -> Value:
        return self.operands[0]

    def render(self) -> str:
        return (
            f"br {self.operands[0].short()} ? "
            f"{self.true_block.name} : {self.false_block.name}"
        )


class Phi(Instruction):
    """SSA phi node; ``incoming`` maps predecessor block → value."""

    def __init__(self, type_: CType, name: str = ""):
        super().__init__(type_, [], name)
        self.incoming: Dict[object, Value] = {}

    def add_incoming(self, block, value: Value) -> None:
        self.incoming[block] = value
        self.operands = list(self.incoming.values())

    def replace_operand(self, old: Value, new: Value) -> None:
        for blk, val in list(self.incoming.items()):
            if val is old:
                self.incoming[blk] = new
        self.operands = list(self.incoming.values())

    def render(self) -> str:
        parts = ", ".join(
            f"[{blk.name}: {val.short()}]" for blk, val in self.incoming.items()
        )
        return f"{self.short()} = phi {parts}"


#: names of the dummy functions the annotation pre-processing pass
#: (paper §3.3, first paragraph) inserts into the source text.
ASSERT_SAFE_MARKER = "__safeflow_assert_safe"
ASSUME_CORE_MARKER = "__safeflow_assume_core"
INIT_CHECK_MARKER = "__safeflow_init_check"

MARKER_FUNCTIONS = frozenset(
    {ASSERT_SAFE_MARKER, ASSUME_CORE_MARKER, INIT_CHECK_MARKER}
)
