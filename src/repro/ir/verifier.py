"""Structural well-formedness checks for lowered IR.

Run after lowering and after SSA construction in tests; catches the
lowering bugs that would otherwise surface as bogus analysis results.
"""

from __future__ import annotations

from typing import List

from .cfg import BasicBlock
from .dominance import dominator_tree
from .function import Function, Module
from .instructions import Instruction, Phi
from .values import Argument, Constant, GlobalVariable, UndefValue, Value


class VerificationError(AssertionError):
    """Raised when the IR is structurally malformed."""


def verify_function(function: Function, check_ssa: bool = True) -> None:
    if function.is_declaration:
        return
    errors: List[str] = []

    block_set = set(function.blocks)
    for block in function.blocks:
        if block.parent is not function:
            errors.append(f"{block.name}: wrong parent")
        if not block.is_terminated:
            errors.append(f"{block.name}: not terminated")
        seen_non_phi = False
        for inst in block.instructions:
            if inst.parent is not block:
                errors.append(f"{block.name}: {inst.render()} has wrong parent")
            if isinstance(inst, Phi):
                if seen_non_phi:
                    errors.append(f"{block.name}: phi after non-phi")
            else:
                seen_non_phi = True
            if inst.IS_TERMINATOR and inst is not block.instructions[-1]:
                errors.append(f"{block.name}: terminator not last")
        for succ in block.successors():
            if succ not in block_set:
                errors.append(f"{block.name}: successor {succ.name} not in function")

    for block in function.blocks:
        preds = set(block.predecessors())
        for phi in block.phis():
            for inc in phi.incoming:
                if inc not in preds:
                    errors.append(
                        f"{block.name}: phi {phi.short()} has non-predecessor "
                        f"incoming {inc.name}"
                    )

    if check_ssa:
        _check_dominance(function, errors)

    if errors:
        raise VerificationError(
            f"IR verification failed for {function.name}:\n  " + "\n  ".join(errors)
        )


def _check_dominance(function: Function, errors: List[str]) -> None:
    """Every use must be dominated by its definition (SSA property)."""
    dt = dominator_tree(function)
    def_block = {}
    for inst in function.instructions():
        def_block[inst] = inst.parent
    for block in function.blocks:
        for inst in block.instructions:
            if isinstance(inst, Phi):
                for inc_block, value in inst.incoming.items():
                    if isinstance(value, Instruction):
                        if not dt.dominates(def_block[value], inc_block):
                            errors.append(
                                f"{block.name}: phi operand {value.short()} does "
                                f"not dominate incoming edge from {inc_block.name}"
                            )
                continue
            for op in inst.operands:
                if isinstance(op, Instruction):
                    dblock = def_block.get(op)
                    if dblock is None:
                        errors.append(
                            f"{block.name}: use of detached value {op.short()}"
                        )
                    elif dblock is block:
                        if block.instructions.index(op) > block.instructions.index(
                            inst
                        ):
                            errors.append(
                                f"{block.name}: {op.short()} used before defined"
                            )
                    elif not dt.dominates(dblock, block):
                        errors.append(
                            f"{block.name}: def of {op.short()} in {dblock.name} "
                            f"does not dominate use"
                        )
                elif not isinstance(
                    op, (Constant, GlobalVariable, Argument, UndefValue, Value)
                ):
                    errors.append(f"{block.name}: non-value operand {op!r}")


def verify_module(module: Module, check_ssa: bool = True) -> None:
    for func in module.defined_functions():
        verify_function(func, check_ssa=check_ssa)
