"""Exception hierarchy for the SafeFlow reproduction.

Every error raised by the library derives from :class:`SafeFlowError`
so callers can catch the whole family with one ``except`` clause.
Errors that carry a source position expose ``location`` (a
:class:`repro.ir.source.SourceLocation` or ``None``).
"""

from __future__ import annotations


class SafeFlowError(Exception):
    """Base class for all errors raised by this library."""

    def __init__(self, message: str, location=None):
        super().__init__(message)
        self.message = message
        self.location = location

    def __str__(self) -> str:
        if self.location is not None:
            return f"{self.location}: {self.message}"
        return self.message


class PreprocessorError(SafeFlowError):
    """Raised when the mini C preprocessor cannot process an input."""


class AnnotationError(SafeFlowError):
    """Raised for malformed or misplaced SafeFlow annotations."""


class ParseError(SafeFlowError):
    """Raised when the C parser rejects an input file."""


class LoweringError(SafeFlowError):
    """Raised when a C construct cannot be lowered to the IR.

    The paper's language subset intentionally excludes some constructs
    (e.g. ``goto``); lowering reports them through this error rather
    than silently mis-modelling them.
    """


class IRError(SafeFlowError):
    """Raised for malformed IR detected by the verifier or builders."""


class AnalysisError(SafeFlowError):
    """Raised when an analysis phase cannot complete."""


class ResourceExhaustedError(SafeFlowError):
    """Raised when an analysis exceeds a resource guard.

    ``kind`` names the budget that ran out: ``"deadline"`` (the
    in-analysis wall-clock deadline checked in the outer fixpoint and
    the constraint solver), ``"cpu"`` (the ``RLIMIT_CPU`` soft cap via
    ``SIGXCPU``), or ``"rss"`` (the memory cap — a ``MemoryError``
    under ``RLIMIT_AS``). Worker entry points translate it into a
    structured ``resource_exhausted`` result instead of letting a
    runaway input take the worker (or the whole batch) down.
    """

    def __init__(self, message: str, kind: str = "deadline", location=None):
        super().__init__(message, location)
        self.kind = kind


class SolverError(SafeFlowError):
    """Raised by the affine constraint solver on malformed systems."""


class CorpusError(SafeFlowError):
    """Raised when a bundled corpus system is missing or inconsistent."""


class JournalError(SafeFlowError):
    """Raised when the batch write-ahead journal cannot be used at all
    (unwritable path, header mismatch). Torn or corrupt *tails* are not
    errors — replay truncates and recovers from them."""


class SimulationError(SafeFlowError):
    """Raised by the runtime/Simplex simulation substrate."""
