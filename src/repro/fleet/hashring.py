"""Consistent hashing of analysis jobs onto shards.

Two jobs with the same inputs must land on the same shard, or the
per-shard caches (IR cache, summary store, segment store, the
in-memory program memo) thrash: DFI's per-function segment keying —
already our cache key — gives the sharding dimension, and the fleet
routes whole jobs by a content key derived the same way as
:func:`repro.perf.journal.job_fingerprint`.

The ring is the classic virtual-node construction: each shard owns
``replicas`` pseudo-random points on a 64-bit circle (sha256 of
``"shard:replica"``), and a key routes to the first point clockwise of
its own hash. Properties the fleet relies on:

- *stability* — adding or removing one shard moves only ~1/N of the
  keyspace; every other job keeps its warm shard;
- *spread* — virtual nodes (default 64 per shard) keep the largest
  shard's keyspace share within a few percent of fair;
- *walk-over* — :meth:`HashRing.lookup` takes a ``skip`` set of shard
  ids (dead or draining); a skipped shard's keys overflow to the next
  *distinct* shard clockwise, which is exactly the re-dispatch and
  drain-overflow rule of the router. The walk visits shards in a
  key-dependent but deterministic order, so retries are stable too.

Routing keys deliberately diverge from ``job_fingerprint`` in one way:
no file digests. The router must not do disk I/O per request, and
hashing *paths* instead of contents means an edited file re-routes to
the shard whose incremental caches already know the old version — the
best possible placement for the edit.
"""

from __future__ import annotations

import bisect
import hashlib
import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set

#: virtual nodes per shard; 64 keeps worst-case imbalance low single
#: digits while ring construction stays trivially cheap
DEFAULT_REPLICAS = 64


def _point(data: str) -> int:
    """64-bit position of ``data`` on the ring."""
    digest = hashlib.sha256(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def routing_key(params: Dict[str, Any]) -> str:
    """Stable content key of one ``analyze`` request's *shape*.

    Mirrors :func:`repro.perf.journal.job_fingerprint` minus file
    digests (see module docstring): inline source text, file paths,
    name, and per-request config overrides. Unknown/missing fields
    hash as their absence, so the key is total over any params dict.
    """
    shape = {
        "source": params.get("source"),
        "filename": params.get("filename"),
        "files": list(params.get("files") or []),
        "name": params.get("name"),
        "config": params.get("config") or {},
    }
    blob = json.dumps(shape, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class HashRing:
    """Consistent-hash ring over integer shard ids."""

    def __init__(self, shard_ids: Iterable[int],
                 replicas: int = DEFAULT_REPLICAS):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: List[int] = []
        self._owners: List[int] = []
        self._shards: Set[int] = set()
        for shard_id in shard_ids:
            self.add(shard_id)

    def __len__(self) -> int:
        return len(self._shards)

    @property
    def shard_ids(self) -> Set[int]:
        return set(self._shards)

    def add(self, shard_id: int) -> None:
        if shard_id in self._shards:
            return
        self._shards.add(shard_id)
        for replica in range(self.replicas):
            point = _point(f"{shard_id}:{replica}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, shard_id)

    def remove(self, shard_id: int) -> None:
        if shard_id not in self._shards:
            return
        self._shards.discard(shard_id)
        keep = [i for i, owner in enumerate(self._owners)
                if owner != shard_id]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    def lookup(self, key: str,
               skip: Optional[Set[int]] = None) -> Optional[int]:
        """Shard owning ``key``, walking past ``skip``-ped shards.

        Returns ``None`` only when every shard is skipped (or the ring
        is empty) — the router treats that as "no backend available".
        """
        preference = self.preference(key)
        for shard_id in preference:
            if not skip or shard_id not in skip:
                return shard_id
        return None

    def preference(self, key: str) -> List[int]:
        """All shards in the key's deterministic walk order (home
        first). The router's re-dispatch and drain overflow follow
        this list, so a key's fallback shard is stable across calls."""
        if not self._points:
            return []
        order: List[int] = []
        seen: Set[int] = set()
        start = bisect.bisect(self._points, _point(key)) % len(self._points)
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in seen:
                seen.add(owner)
                order.append(owner)
                if len(seen) == len(self._shards):
                    break
        return order

    def spread(self, keys: Sequence[str]) -> Dict[int, int]:
        """Key count per shard (diagnostics and tests)."""
        counts: Dict[int, int] = {s: 0 for s in self._shards}
        for key in keys:
            owner = self.lookup(key)
            if owner is not None:
                counts[owner] += 1
        return counts
