"""The asyncio front router of the analysis fleet.

:class:`FleetRouter` listens on one NDJSON JSON-RPC socket — the same
protocol the daemons speak (:mod:`repro.server.protocol`), so
:class:`repro.server.SafeFlowClient` points at it unchanged — and
forwards every ``analyze`` to one of N shard daemons:

*Affinity.* The request's :func:`repro.fleet.hashring.routing_key`
(job shape, the I/O-free sibling of ``job_fingerprint``) is looked up
on a consistent-hash ring, so repeated jobs land on the shard whose
IR/summary/segment caches already know them.

*Backpressure + work stealing.* The router tracks its own in-flight
count per shard and folds in each shard's health plane
(``queue_depth``, rolling latency) from a periodic poll. When the
home shard's load is past ``steal_threshold`` and another live shard
is markedly colder (by ``steal_margin``), the job is *stolen* by the
cold shard — losing cache affinity once beats queueing behind a hot
spot — and both sides' metrics record the steal.

*Supervision + re-dispatch.* A failed forward or failed health poll
marks the shard suspect; a supervisor coroutine restarts its backend
(same cache dir — it comes back warm) while every request the shard
was holding re-dispatches along the key's deterministic ring walk.
Analyses are idempotent and a failed forward provably kept no client
response, so re-dispatch never doubles a *kept* result; a request is
failed only after ``redispatch_deadline`` of the whole fleet being
unreachable — zero dropped requests under single-shard chaos.

*Rolling restart.* :meth:`FleetRouter.reload` drains one shard at a
time: mark it draining (the ring walks past it, overflowing its keys
to their next shard), wait for its in-flight count to reach zero,
restart it gracefully, wait until it answers ``ping``, then move on.
Clients see nothing but a brief affinity shift.

Responses to one client connection are written strictly in request
order (the protocol's pipelining contract) even though forwards run
concurrently: each request enqueues its future response into that
connection's delivery queue and a per-connection writer task awaits
them in order.

The router runs one asyncio loop in a dedicated thread; the blocking
backend spawn/stop calls go through an executor so routing and health
checks never stall behind a restart. All counters are touched only on
the loop thread — no locks.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from ..perf.latency import LatencyRecorder, RollingLatency
from ..qos.breaker import CircuitBreaker
from ..server import protocol
from .backend import InProcessBackend, ProcessBackend, ShardSpec
from .hashring import HashRing, routing_key

#: how long start() waits for the loop thread to come up
START_WAIT = 60.0


@dataclass
class FleetConfig:
    """Shape of one fleet: N shards behind one router socket."""

    shards: int = 4
    host: str = "127.0.0.1"
    port: int = 0
    cache_root: str = ".safeflow-fleet"
    workers_per_shard: int = 1
    queue_size: int = 64
    summaries: bool = False
    kernel: str = "compiled"
    #: "process" spawns real `safeflow serve` subprocesses;
    #: "inprocess" embeds the daemons (fast tests)
    backend: str = "process"
    #: False runs each shard's analyses on daemon threads instead of
    #: worker subprocesses (`safeflow serve --in-process`) — fast
    #: tests; production fleets keep worker crash isolation
    use_processes: bool = True
    #: home-shard load (router in-flight + reported queue depth) at or
    #: above which stealing is considered
    steal_threshold: int = 2
    #: a thief must be at least this much colder than the home shard
    steal_margin: int = 2
    #: seconds between health polls of each shard
    health_interval: float = 0.5
    #: per-poll timeout before a shard is declared suspect
    health_timeout: float = 5.0
    #: concurrent router→shard checkouts per shard (each occupies one
    #: handler thread on the daemon)
    conns_per_shard: int = 8
    #: give up re-dispatching a request after this long without any
    #: healthy shard (the whole fleet is down, not one shard)
    redispatch_deadline: float = 60.0
    #: per-shard circuit breaker (PR 10): trip when this fraction of
    #: the last ``breaker_window`` forwards were shard faults
    #: (connection death, ``worker_crashed``, ``deadline_exceeded``) —
    #: at least ``breaker_min_volume`` samples required, so one early
    #: blip cannot open a cold breaker
    breaker_failure_threshold: float = 0.5
    breaker_min_volume: int = 5
    breaker_window: int = 20
    #: seconds an open breaker holds traffic off the shard before
    #: letting one half-open probe through
    breaker_cooldown_s: float = 2.0
    #: path to a tenants.json quota table, given to every shard so
    #: admission control behaves identically wherever a job lands
    tenants_path: Optional[str] = None
    #: per-shard in-flight dispatch cap: "auto" (AIMD), "N" (fixed),
    #: or None (unlimited)
    max_inflight: Optional[str] = None


class _Conn:
    __slots__ = ("reader", "writer", "generation")

    def __init__(self, reader, writer, generation):
        self.reader = reader
        self.writer = writer
        self.generation = generation

    def close(self) -> None:
        try:
            self.writer.close()
        except Exception:
            pass


class _ShardState:
    """Router-side view of one shard."""

    def __init__(self, sid: int, backend,
                 breaker: Optional[CircuitBreaker] = None):
        self.sid = sid
        self.backend = backend
        #: closed/open/half-open health latch fed by forward outcomes;
        #: an open breaker takes the shard out of the ring walk
        self.breaker = breaker or CircuitBreaker()
        #: bumped on every restart; pooled connections from an older
        #: generation are closed on checkout/release instead of reused
        self.generation = 0
        self.healthy = False
        self.draining = False
        self.outstanding = 0       # forwards currently held by router
        self.routed = 0
        self.steals_in = 0
        self.steals_out = 0
        self.redispatches_out = 0  # forwards lost here and re-routed
        self.restarts = 0
        self.last_health: Dict[str, Any] = {}
        # created on the loop (start of _serve)
        self.free: Optional[asyncio.Queue] = None
        self.checkout: Optional[asyncio.Semaphore] = None
        self.restart_lock: Optional[asyncio.Lock] = None

    @property
    def queue_depth(self) -> int:
        try:
            return int(self.last_health.get("queue_depth") or 0)
        except (TypeError, ValueError):
            return 0

    def load(self) -> int:
        """The routing load signal: what the router has in flight on
        this shard plus what the shard itself reported queued."""
        return self.outstanding + self.queue_depth

    def snapshot(self) -> Dict[str, Any]:
        return {
            "shard": self.sid,
            "healthy": self.healthy,
            "draining": self.draining,
            "generation": self.generation,
            "outstanding": self.outstanding,
            "routed": self.routed,
            "steals_in": self.steals_in,
            "steals_out": self.steals_out,
            "redispatches_out": self.redispatches_out,
            "restarts": self.restarts,
            "breaker": self.breaker.snapshot(),
            "address": list(self.backend.address or ()) or None,
            "pid": self.backend.pid,
            "health": dict(self.last_health),
        }


class FleetRouter:
    """N analysis daemons behind one consistent-hash front socket."""

    def __init__(self, config: Optional[FleetConfig] = None,
                 specs: Optional[List[ShardSpec]] = None):
        self.config = config or FleetConfig()
        if specs is None:
            specs = [
                ShardSpec(
                    shard_id=i,
                    cache_dir=f"{self.config.cache_root}/shard-{i}",
                    workers=self.config.workers_per_shard,
                    queue_size=self.config.queue_size,
                    summaries=self.config.summaries,
                    kernel=self.config.kernel,
                    use_processes=self.config.use_processes,
                    tenants_path=self.config.tenants_path,
                    max_inflight=self.config.max_inflight,
                )
                for i in range(self.config.shards)
            ]
        backend_cls = (InProcessBackend if self.config.backend == "inprocess"
                       else ProcessBackend)
        self.shards: Dict[int, _ShardState] = {
            spec.shard_id: _ShardState(
                spec.shard_id, backend_cls(spec),
                breaker=CircuitBreaker(
                    failure_threshold=self.config.breaker_failure_threshold,
                    min_volume=self.config.breaker_min_volume,
                    window=self.config.breaker_window,
                    cooldown_s=self.config.breaker_cooldown_s,
                ))
            for spec in specs
        }
        self.ring = HashRing(self.shards.keys())
        self.started_at = time.time()
        self._started_mono = time.monotonic()
        # single-threaded counters: only the router loop touches them
        self.counters = {
            "requests": 0, "responses": 0, "errors": 0,
            "steals": 0, "redispatches": 0, "shard_restarts": 0,
            "reloads": 0, "local_rpcs": 0,
        }
        self.rolling_latency = RollingLatency()
        self.latency = LatencyRecorder()

        self.address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping = False
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ring_changed: Optional[asyncio.Event] = None
        self._reload_lock: Optional[asyncio.Lock] = None
        self._monitor_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # lifecycle (thread-owning facade)
    # ------------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Start every shard, then serve; blocks until listening."""
        # spawn shards before the loop (concurrently — a process
        # backend blocks on the daemon's startup announcement): a fleet
        # that cannot start its backends should fail loudly, not
        # half-serve
        states = self._shard_list()
        with ThreadPoolExecutor(max_workers=max(1, len(states))) as pool:
            list(pool.map(lambda s: s.backend.start(), states))
        for state in states:
            state.generation += 1
            state.healthy = True
        self._thread = threading.Thread(
            target=self._run_loop, name="safeflow-fleet", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=START_WAIT)
        if self._startup_error is not None:
            raise RuntimeError(
                f"fleet router failed to start: {self._startup_error}")
        if self.address is None:
            raise RuntimeError("fleet router did not start in time")
        return self.address

    def stop(self) -> None:
        """Stop serving, then stop every shard (graceful)."""
        loop = self._loop
        if loop is not None and loop.is_running():
            try:
                asyncio.run_coroutine_threadsafe(
                    self._shutdown(), loop).result(timeout=30.0)
            except Exception:
                pass
        if self._thread is not None:
            self._thread.join(timeout=60.0)
        states = self._shard_list()
        with ThreadPoolExecutor(max_workers=max(1, len(states))) as pool:
            list(pool.map(lambda s: s.backend.stop(), states))

    def reload(self, timeout: float = 600.0) -> Dict[str, Any]:
        """Rolling restart of every shard (blocking facade)."""
        future = asyncio.run_coroutine_threadsafe(
            self._rolling_reload(), self._require_loop())
        return future.result(timeout=timeout)

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Thread-safe read (the CLI's --metrics-json dump)."""
        future = asyncio.run_coroutine_threadsafe(
            self._fleet_metrics(), self._require_loop())
        return future.result(timeout=10.0)

    def _require_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None or not self._loop.is_running():
            raise RuntimeError("fleet router is not running")
        return self._loop

    def _shard_list(self) -> List[_ShardState]:
        return [self.shards[sid] for sid in sorted(self.shards)]

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
        finally:
            loop.close()

    async def _serve(self) -> None:
        self._stop_event = asyncio.Event()
        self._ring_changed = asyncio.Event()
        self._reload_lock = asyncio.Lock()
        for state in self._shard_list():
            state.free = asyncio.Queue()
            state.checkout = asyncio.Semaphore(self.config.conns_per_shard)
            state.restart_lock = asyncio.Lock()
        self._server = await asyncio.start_server(
            self._serve_client, host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_MESSAGE_BYTES + 2,
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        self._monitor_task = asyncio.ensure_future(self._monitor())
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            self._stopping = True
            self._monitor_task.cancel()
            self._server.close()
            await self._server.wait_closed()
            # cancel whatever is still in flight (client handlers,
            # forwards, restarts) and let it unwind
            pending = [t for t in asyncio.all_tasks()
                       if t is not asyncio.current_task()]
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
            for state in self._shard_list():
                await self._drain_pool(state)

    async def _shutdown(self) -> None:
        self._stopping = True
        if self._stop_event is not None:
            self._stop_event.set()

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------

    async def _serve_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        """One client connection, handled request-by-request.

        Sequential per connection is the daemon's own contract (one
        handler thread reads, answers, reads again), so the router
        mirrors it instead of paying a per-request task + ordered
        delivery queue — concurrency comes from connections, which is
        also how every client (SafeFlowClient, the bench, other
        routers) actually drives it.
        """
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    writer.write(protocol.encode(protocol.error_response(
                        None, protocol.INVALID_REQUEST,
                        "message exceeds MAX_MESSAGE_BYTES")))
                    await writer.drain()
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                writer.write(await self._dispatch(line))
                await writer.drain()
        except asyncio.CancelledError:
            pass  # router shutdown: just close the connection
        except (ConnectionError, OSError):
            pass  # client went away mid-response
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _dispatch(self, line: bytes) -> bytes:
        """One request line → one response line (never raises)."""
        started = time.perf_counter()
        self.counters["requests"] += 1
        try:
            payload = json.loads(line.decode("utf-8"))
        except ValueError:
            self.counters["errors"] += 1
            return protocol.encode(protocol.error_response(
                None, protocol.PARSE_ERROR, "request is not valid JSON"))
        req_id = payload.get("id") if isinstance(payload, dict) else None
        method = payload.get("method") if isinstance(payload, dict) else None
        try:
            if method == "analyze":
                raw = await self._forward_analyze(payload, line)
            else:
                self.counters["local_rpcs"] += 1
                raw = protocol.encode(await self._local_rpc(
                    method, payload, req_id))
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # the router must always answer
            self.counters["errors"] += 1
            raw = protocol.encode(protocol.error_response(
                req_id, protocol.INTERNAL_ERROR,
                f"fleet router error: {exc}"))
        self.counters["responses"] += 1
        elapsed = time.perf_counter() - started
        self.rolling_latency.observe(elapsed)
        self.latency.record(elapsed)
        return raw

    # ------------------------------------------------------------------
    # analyze forwarding: affinity, stealing, re-dispatch
    # ------------------------------------------------------------------

    async def _forward_analyze(self, payload: Dict[str, Any],
                               line: bytes) -> bytes:
        params = payload.get("params")
        key = routing_key(params if isinstance(params, dict) else {})
        req_id = payload.get("id")
        deadline = time.monotonic() + self.config.redispatch_deadline
        failed: Set[int] = set()
        while True:
            if time.monotonic() >= deadline:
                self.counters["errors"] += 1
                return protocol.encode(protocol.error_response(
                    req_id, protocol.SHUTTING_DOWN,
                    "no healthy shard available"))
            sid = self._route(key, failed)
            if sid is None:
                if failed:
                    # every shard failed this request once; start the
                    # walk over — restarts may have landed by now
                    failed.clear()
                    continue
                await self._wait_ring_change(deadline)
                continue
            state = self.shards[sid]
            if not state.breaker.allow():
                # lost the half-open probe slot to a concurrent request
                # (routable() raced); walk on without recording a fault
                failed.add(sid)
                continue
            state.outstanding += 1
            state.routed += 1
            try:
                raw = await self._shard_call(state, line)
            except (ConnectionError, OSError, EOFError):
                # the forward died before a response: provably no kept
                # result on the client side, so re-dispatch is safe
                failed.add(sid)
                state.breaker.record_failure()
                state.redispatches_out += 1
                self.counters["redispatches"] += 1
                self._mark_suspect(state)
            else:
                self._record_breaker_outcome(state, raw)
                return raw
            finally:
                state.outstanding -= 1

    def _route(self, key: str, failed: Set[int]) -> Optional[int]:
        """Home shard for ``key``, unless stealing is warranted."""
        skip = set(failed)
        for sid, state in self.shards.items():
            if (not state.healthy or state.draining
                    or not state.breaker.routable()):
                skip.add(sid)
        home = self.ring.lookup(key, skip)
        if home is None:
            return None
        home_state = self.shards[home]
        home_load = home_state.load()
        if home_load >= self.config.steal_threshold:
            thief = min(
                (s for sid, s in self.shards.items() if sid not in skip),
                key=lambda s: (s.load(), s.sid),
            )
            if (thief.sid != home
                    and thief.load() + self.config.steal_margin
                    <= home_load):
                home_state.steals_out += 1
                thief.steals_in += 1
                self.counters["steals"] += 1
                return thief.sid
        return home

    #: error codes that indict the *shard* rather than the request —
    #: what the breaker counts as failures. parse/param errors and
    #: admission rejections (queue_full, rate_limited, shed) mean the
    #: shard is alive and answering; crashes, expired deadlines, and
    #: internal errors mean it is not keeping up.
    _SHARD_FAULT_CODES = frozenset({
        protocol.WORKER_CRASHED,
        protocol.DEADLINE_EXCEEDED,
        protocol.INTERNAL_ERROR,
    })

    def _record_breaker_outcome(self, state: _ShardState,
                                raw: bytes) -> None:
        """Feed one forwarded response into the shard's breaker. The
        fast path (no ``"error"`` substring) skips JSON decoding — the
        router passes responses through untouched, so this sniff is
        the only per-response cost the breaker adds."""
        if b'"error"' not in raw:
            state.breaker.record_success()
            return
        try:
            error = (json.loads(raw.decode("utf-8")) or {}).get("error")
            code = (error or {}).get("code")
        except (ValueError, AttributeError):
            code = None
        if code in self._SHARD_FAULT_CODES:
            state.breaker.record_failure()
        else:
            state.breaker.record_success()

    async def _wait_ring_change(self, deadline: float) -> None:
        self._ring_changed.clear()
        timeout = min(1.0, max(0.05, deadline - time.monotonic()))
        try:
            await asyncio.wait_for(self._ring_changed.wait(), timeout)
        except asyncio.TimeoutError:
            pass

    def _notify_ring_change(self) -> None:
        if self._ring_changed is not None:
            self._ring_changed.set()

    # ------------------------------------------------------------------
    # shard connections
    # ------------------------------------------------------------------

    async def _shard_call(self, state: _ShardState, line: bytes) -> bytes:
        """One exclusive round-trip on a pooled shard connection.

        The connection is held for the whole round trip, so the
        response on it is unambiguously *this* request's (the daemon
        answers in order per connection); the raw response line passes
        through to the client untouched.
        """
        conn = await self._acquire_conn(state)
        try:
            conn.writer.write(line)
            await conn.writer.drain()
            raw = await conn.reader.readline()
            if not raw:
                raise ConnectionError("shard closed the connection")
        except BaseException:
            self._discard_conn(state, conn)
            raise
        self._release_conn(state, conn)
        return raw

    async def _acquire_conn(self, state: _ShardState) -> _Conn:
        """Check out a connection; the semaphore bounds concurrent
        checkouts (≙ busy handler threads on the daemon), the free
        queue recycles idle sockets within the current generation."""
        await state.checkout.acquire()
        try:
            while not state.free.empty():
                conn = state.free.get_nowait()
                if conn.generation == state.generation:
                    return conn
                conn.close()
            address = state.backend.address
            if address is None:
                raise ConnectionError("shard has no address")
            reader, writer = await asyncio.open_connection(
                *address, limit=protocol.MAX_MESSAGE_BYTES + 2)
            return _Conn(reader, writer, state.generation)
        except BaseException:
            state.checkout.release()
            raise

    def _release_conn(self, state: _ShardState, conn: _Conn) -> None:
        if conn.generation == state.generation:
            state.free.put_nowait(conn)
        else:
            conn.close()
        state.checkout.release()

    def _discard_conn(self, state: _ShardState, conn: _Conn) -> None:
        conn.close()
        state.checkout.release()

    async def _drain_pool(self, state: _ShardState) -> None:
        """Close every idle pooled connection of a shard."""
        if state.free is None:
            return
        while not state.free.empty():
            state.free.get_nowait().close()

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------

    def _mark_suspect(self, state: _ShardState) -> None:
        if state.healthy and not self._stopping:
            state.healthy = False
            asyncio.ensure_future(self._restart_shard(state))

    async def _monitor(self) -> None:
        """Periodic health poll of every shard (fresh connection per
        poll so saturation of the forwarding pool can never read as
        shard death)."""
        while not self._stopping:
            await asyncio.sleep(self.config.health_interval)
            for state in self._shard_list():
                if self._stopping or state.draining or not state.healthy:
                    continue
                if (not state.backend.alive
                        and not isinstance(state.backend, InProcessBackend)):
                    self._mark_suspect(state)
                    continue
                try:
                    health = await asyncio.wait_for(
                        self._shard_rpc_fresh(state, "health"),
                        self.config.health_timeout)
                    state.last_health = health or {}
                except asyncio.CancelledError:
                    raise
                except Exception:
                    self._mark_suspect(state)

    async def _restart_shard(self, state: _ShardState) -> None:
        """Supervised restart: same spec, same cache dir, new port."""
        async with state.restart_lock:
            if state.healthy or self._stopping:
                return
            state.generation += 1  # invalidate pooled connections now
            await self._drain_pool(state)
            loop = asyncio.get_running_loop()
            try:
                await loop.run_in_executor(
                    None, lambda: state.backend.restart(graceful=False))
            except Exception:
                restarted = False
            else:
                restarted = True
                state.restarts += 1
                self.counters["shard_restarts"] += 1
            if restarted and await self._wait_shard_ready(state):
                state.healthy = True
                self._notify_ring_change()
                return
        # restart failed or never became ready: back off and re-arm
        if not self._stopping:
            await asyncio.sleep(self.config.health_interval)
            if not state.healthy and not self._stopping:
                asyncio.ensure_future(self._restart_shard(state))

    async def _wait_shard_ready(self, state: _ShardState,
                                timeout: float = 30.0) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline and not self._stopping:
            try:
                result = await asyncio.wait_for(
                    self._shard_rpc_fresh(state, "ping"), 2.0)
                if result and result.get("pong"):
                    return True
            except asyncio.CancelledError:
                raise
            except Exception:
                await asyncio.sleep(0.1)
        return False

    async def _shard_rpc_fresh(self, state: _ShardState, method: str,
                               params: Optional[Dict[str, Any]] = None
                               ) -> Any:
        """A router-originated RPC on its own short-lived connection
        (never contends with the forwarding pool)."""
        address = state.backend.address
        if address is None:
            raise ConnectionError("shard has no address")
        reader, writer = await asyncio.open_connection(
            *address, limit=protocol.MAX_MESSAGE_BYTES + 2)
        try:
            writer.write(protocol.encode(protocol.request_payload(
                method, params, f"fleet-{method}")))
            await writer.drain()
            raw = await reader.readline()
        finally:
            try:
                writer.close()
            except Exception:
                pass
        if not raw:
            raise ConnectionError("shard closed the connection")
        payload = json.loads(raw.decode("utf-8"))
        error = payload.get("error")
        if error is not None:
            raise RuntimeError(error.get("message", "shard error"))
        return payload.get("result")

    # ------------------------------------------------------------------
    # rolling reload
    # ------------------------------------------------------------------

    async def _rolling_reload(self) -> Dict[str, Any]:
        """Drain and restart one shard at a time; never drop requests."""
        async with self._reload_lock:
            reloaded: List[int] = []
            for state in self._shard_list():
                if self._stopping:
                    break
                state.draining = True
                try:
                    while state.outstanding > 0:
                        await asyncio.sleep(0.02)
                    state.generation += 1
                    await self._drain_pool(state)
                    loop = asyncio.get_running_loop()
                    await loop.run_in_executor(
                        None, lambda s=state: s.backend.restart(
                            graceful=True))
                    state.restarts += 1
                    self.counters["shard_restarts"] += 1
                    state.healthy = await self._wait_shard_ready(state)
                finally:
                    state.draining = False
                    self._notify_ring_change()
                if not state.healthy:
                    self._mark_suspect_after_reload(state)
                reloaded.append(state.sid)
            self.counters["reloads"] += 1
            return {"reloaded": reloaded,
                    "healthy": [s.sid for s in self._shard_list()
                                if s.healthy]}

    def _mark_suspect_after_reload(self, state: _ShardState) -> None:
        if not self._stopping:
            asyncio.ensure_future(self._restart_shard(state))

    # ------------------------------------------------------------------
    # fleet-level RPCs
    # ------------------------------------------------------------------

    async def _local_rpc(self, method: Optional[str],
                         payload: Dict[str, Any], req_id) -> Dict[str, Any]:
        if method == "ping":
            return protocol.ok_response(req_id, {"pong": True,
                                                 "role": "fleet"})
        if method == "health":
            return protocol.ok_response(req_id, await self._fleet_health())
        if method == "metrics":
            return protocol.ok_response(req_id, await self._fleet_metrics())
        if method == "cancel":
            params = payload.get("params") or {}
            return protocol.ok_response(
                req_id, await self._broadcast_cancel(params))
        if method == "fleet_reload":
            return protocol.ok_response(req_id, await self._rolling_reload())
        if method == "shutdown":
            # answer first, then tear down: the client deserves its ack
            asyncio.get_running_loop().call_later(
                0.2, lambda: asyncio.ensure_future(self._shutdown()))
            return protocol.ok_response(req_id, {"shutting_down": True,
                                                 "role": "fleet"})
        return protocol.error_response(
            req_id, protocol.METHOD_NOT_FOUND,
            f"unknown method {method!r}")

    async def _fleet_health(self) -> Dict[str, Any]:
        states = self._shard_list()
        shards = [s.snapshot() for s in states]
        healthy = sum(1 for s in states if s.healthy)
        rolling = self.rolling_latency.quantiles()
        inflight = sum(s.outstanding for s in states)
        return {
            "status": "ok" if healthy == len(shards) else (
                "degraded" if healthy else "down"),
            "role": "fleet",
            "protocol": protocol.PROTOCOL_VERSION,
            "uptime_seconds": time.monotonic() - self._started_mono,
            "shards": shards,
            "shards_total": len(shards),
            "shards_healthy": healthy,
            "queue_depth": sum(s.queue_depth for s in states),
            "inflight": inflight,
            "in_flight": inflight,
            "latency_p50_s": rolling["p50_s"],
            "latency_p99_s": rolling["p99_s"],
        }

    async def _fleet_metrics(self) -> Dict[str, Any]:
        health = await self._fleet_health()
        states = self._shard_list()
        qos: Dict[str, Any] = {
            "breakers": {
                str(s.sid): s.breaker.snapshot() for s in states
            },
            "breaker_opens": sum(s.breaker.opens for s in states),
        }
        # fold each shard's own qos block (per-tenant counters,
        # brownout level, concurrency limit) in from its health poll
        shard_tenants: Dict[str, Dict[str, int]] = {}
        for state in states:
            for tenant, counts in ((state.last_health.get("qos") or {})
                                   .get("tenants") or {}).items():
                merged = shard_tenants.setdefault(tenant, {})
                for outcome, n in counts.items():
                    merged[outcome] = merged.get(outcome, 0) + int(n or 0)
        if shard_tenants:
            qos["tenants"] = {
                name: dict(sorted(counts.items()))
                for name, counts in sorted(shard_tenants.items())
            }
        return {
            "role": "fleet",
            "started_at": self.started_at,
            "uptime_seconds": health["uptime_seconds"],
            "status": health["status"],
            "router": dict(self.counters),
            "qos": qos,
            "latency": {
                "rolling": self.rolling_latency.quantiles(),
                "request": self.latency.summary(),
            },
            "shards": health["shards"],
        }

    async def _broadcast_cancel(self,
                                params: Dict[str, Any]) -> Dict[str, Any]:
        """``cancel`` fans out: the router does not track which shard
        holds a job id, and cancelling a finished/unknown job is a
        no-op on every daemon."""
        outcomes = []
        for state in self._shard_list():
            if not state.healthy:
                continue
            try:
                outcomes.append(await asyncio.wait_for(
                    self._shard_rpc_fresh(state, "cancel", params), 5.0))
            except asyncio.CancelledError:
                raise
            except Exception:
                continue
        cancelled = any((o or {}).get("cancelled") for o in outcomes)
        state_word = next(
            ((o or {}).get("state") for o in outcomes
             if (o or {}).get("cancelled")), None)
        return {"cancelled": cancelled, "state": state_word,
                "shards_asked": len(outcomes)}
