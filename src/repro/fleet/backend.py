"""Shard lifecycle: spawning, supervising, and restarting the
``safeflow serve`` daemons behind the fleet router.

Two interchangeable backends implement the same synchronous contract
(``start`` / ``stop`` / ``kill`` / ``restart`` / ``alive`` /
``address``; the router calls the blocking ones through an executor):

- :class:`ProcessBackend` runs a real ``safeflow serve`` subprocess —
  what ``safeflow fleet`` deploys, what the chaos tests SIGKILL, and
  the only backend with true crash isolation;
- :class:`InProcessBackend` embeds a :class:`SafeFlowServer` in the
  router's process — no spawn cost, used by the fast tests.

A shard keeps its identity across restarts: the same
:class:`ShardSpec` (and in particular the same ``cache_dir``) is
reused, so a restarted shard comes back with its disk caches — IR,
summaries, segments — already warm. Only the port may change
(ephemeral bind), which the router re-reads from :attr:`address`
after every (re)start.

The supervision philosophy follows :mod:`repro.resilience`: a dead
shard is an *event*, not an error — restart it, re-dispatch what it
was holding, and account for it in the metrics plane.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.config import AnalysisConfig

#: what `safeflow serve` prints once it is accepting connections
_LISTENING_RE = re.compile(
    r"safeflow serve: listening on (\S+?):(\d+)\b")

#: seconds to wait for a spawned daemon to announce its address
SPAWN_DEADLINE = 30.0


@dataclass
class ShardSpec:
    """Everything needed to (re)create one shard."""

    shard_id: int
    cache_dir: str
    workers: int = 1
    queue_size: int = 64
    summaries: bool = False
    kernel: str = "compiled"
    host: str = "127.0.0.1"
    #: False maps to `safeflow serve --in-process` (thread workers);
    #: tests use it to avoid per-shard worker-process spawn cost
    use_processes: bool = True
    #: path to a tenants.json quota table; every shard gets the same
    #: table so admission behaves identically wherever a job lands
    tenants_path: Optional[str] = None
    #: in-flight dispatch cap per shard: "auto" (AIMD adaptive), an
    #: integer (fixed), or None (unlimited)
    max_inflight: Optional[str] = None
    #: extra `safeflow serve` flags (ProcessBackend only)
    extra_args: Tuple[str, ...] = ()

    def config(self) -> AnalysisConfig:
        return AnalysisConfig(
            summary_mode=self.summaries,
            cache_dir=self.cache_dir,
            kernel=self.kernel,
        )


class ProcessBackend:
    """One shard as a supervised ``safeflow serve`` subprocess."""

    def __init__(self, spec: ShardSpec):
        self.spec = spec
        self.proc: Optional[subprocess.Popen] = None
        self.address: Optional[Tuple[str, int]] = None

    # -- lifecycle -----------------------------------------------------

    @property
    def log_path(self) -> str:
        return os.path.join(self.spec.cache_dir,
                            f"shard-{self.spec.shard_id}.log")

    def start(self) -> Tuple[str, int]:
        """Spawn the daemon and block until it announces its address.

        The daemon's stdout/stderr go to a *file* (:attr:`log_path`),
        never a pipe: the daemon's worker subprocesses inherit the
        descriptor, and after a SIGKILL of the daemon a pipe would
        only see EOF once every orphaned worker exits — a file needs
        no reader at all. The announcement line is polled from the
        file.
        """
        if self.alive:
            return self.address
        os.makedirs(self.spec.cache_dir, exist_ok=True)
        with open(self.log_path, "ab") as log:
            start_offset = log.tell()
            # own session: the daemon and the analysis workers it
            # forks form one process group, so kill() can take down
            # the whole tree even after the daemon itself was
            # SIGKILLed out from under its children
            self.proc = subprocess.Popen(
                self._argv(),
                stdout=log,
                stderr=subprocess.STDOUT,
                env=self._env(),
                start_new_session=True,
            )
        deadline = time.monotonic() + SPAWN_DEADLINE
        address = None
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                break
            with open(self.log_path, "rb") as log:
                log.seek(start_offset)
                tail = log.read().decode("utf-8", "replace")
            match = _LISTENING_RE.search(tail)
            if match:
                address = (match.group(1), int(match.group(2)))
                break
            time.sleep(0.05)
        if address is None:
            self.kill()
            raise RuntimeError(
                f"shard {self.spec.shard_id}: daemon did not announce "
                f"its address within {SPAWN_DEADLINE}s "
                f"(see {self.log_path})")
        self.address = address
        return address

    def _argv(self) -> List[str]:
        spec = self.spec
        argv = [
            sys.executable, "-m", "repro.cli", "serve",
            "--host", spec.host, "--port", "0",
            "--cache-dir", spec.cache_dir,
            "--workers", str(spec.workers),
            "--queue-size", str(spec.queue_size),
            "--kernel", spec.kernel,
        ]
        if spec.summaries:
            argv.append("--summaries")
        if not spec.use_processes:
            argv.append("--in-process")
        if spec.tenants_path:
            argv.extend(["--tenants", spec.tenants_path])
        if spec.max_inflight:
            argv.extend(["--max-inflight", str(spec.max_inflight)])
        argv.extend(spec.extra_args)
        return argv

    @staticmethod
    def _env() -> dict:
        """Child environment with this interpreter's ``repro`` on the
        path (the fleet may run from a source checkout)."""
        env = os.environ.copy()
        package_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (package_root if not existing
                             else package_root + os.pathsep + existing)
        return env

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful stop: SIGTERM (the daemon drains) then SIGKILL."""
        if self.proc is None:
            return
        if self.proc.poll() is None:
            try:
                self.proc.send_signal(signal.SIGTERM)
            except OSError:
                pass
            try:
                self.proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.kill()
        self._reap()

    def kill(self) -> None:
        """SIGKILL the whole shard process group, no drain — the
        chaos path. Group-wide so workers orphaned by an external
        SIGKILL of the daemon die too."""
        if self.proc is None:
            return
        try:
            os.killpg(self.proc.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError, OSError):
            if self.proc.poll() is None:
                try:
                    self.proc.kill()
                except OSError:
                    pass
        try:
            self.proc.wait(timeout=10.0)
        except subprocess.TimeoutExpired:  # pragma: no cover
            pass
        self._reap()

    def _reap(self) -> None:
        self.address = None

    def restart(self, graceful: bool = False) -> Tuple[str, int]:
        """Bring the shard back with the same spec (same cache dir)."""
        if graceful:
            self.stop()
        else:
            self.kill()
        self.proc = None
        return self.start()


class InProcessBackend:
    """One shard as an embedded :class:`SafeFlowServer` (tests)."""

    def __init__(self, spec: ShardSpec):
        self.spec = spec
        self.server = None
        self.address: Optional[Tuple[str, int]] = None

    def start(self) -> Tuple[str, int]:
        if self.server is not None:
            return self.address
        from ..server.daemon import SafeFlowServer

        os.makedirs(self.spec.cache_dir, exist_ok=True)
        tenants = None
        if self.spec.tenants_path:
            from ..qos import load_tenants

            tenants = load_tenants(self.spec.tenants_path)
        max_inflight = self.spec.max_inflight
        if max_inflight not in (None, "auto"):
            max_inflight = int(max_inflight)
        self.server = SafeFlowServer(
            config=self.spec.config(),
            host=self.spec.host, port=0,
            workers=self.spec.workers,
            queue_size=self.spec.queue_size,
            use_processes=self.spec.use_processes,
            tenants=tenants,
            max_inflight=max_inflight,
        )
        self.server.start()
        self.address = tuple(self.server.address[:2])
        return self.address

    @property
    def alive(self) -> bool:
        return self.server is not None

    @property
    def pid(self) -> Optional[int]:
        return os.getpid() if self.server is not None else None

    def stop(self, timeout: float = 30.0) -> None:
        if self.server is None:
            return
        self.server.stop()
        self.server = None
        self.address = None

    def kill(self) -> None:
        """Closest an in-process shard gets to dying abruptly: stop
        without draining. True SIGKILL chaos needs ProcessBackend."""
        if self.server is None:
            return
        self.server.stop(drain=False)
        self.server = None
        self.address = None

    def restart(self, graceful: bool = False) -> Tuple[str, int]:
        if graceful:
            self.stop()
        else:
            self.kill()
        return self.start()
