"""The fleet layer: a consistent-hash front router over N analysis
daemons (:mod:`repro.server`).

One ``safeflow serve`` process is the throughput ceiling of the
serving tier; :class:`FleetRouter` scales it out. The router speaks
the same NDJSON JSON-RPC on its front socket that the daemons speak on
theirs, so :class:`repro.server.SafeFlowClient` works unchanged —
point it at the router and every verdict is byte-identical to a
direct daemon (or a direct :class:`repro.core.SafeFlow` call).

- :mod:`repro.fleet.hashring` — the consistent-hash ring mapping job
  routing keys onto shards so each shard's IR/summary/segment caches
  stay hot for its slice of the corpus;
- :mod:`repro.fleet.backend` — shard lifecycle: spawn, supervise,
  restart (``ProcessBackend`` runs real ``safeflow serve``
  subprocesses; ``InProcessBackend`` embeds daemons in-process for
  tests);
- :mod:`repro.fleet.router` — the asyncio router itself: affinity
  routing with load-aware work stealing, backpressure from each
  shard's health plane, automatic restart + in-flight re-dispatch on
  shard death, and rolling drain/restart (``safeflow fleet
  --reload``).
"""

from .hashring import HashRing, routing_key
from .backend import InProcessBackend, ProcessBackend, ShardSpec
from .router import FleetRouter, FleetConfig

__all__ = [
    "HashRing",
    "routing_key",
    "ShardSpec",
    "ProcessBackend",
    "InProcessBackend",
    "FleetRouter",
    "FleetConfig",
]
