"""Call-graph substrate: construction, SCCs, traversal orders."""

from .graph import CallGraph, CallSite
from .scc import strongly_connected_components

__all__ = ["CallGraph", "CallSite", "strongly_connected_components"]
