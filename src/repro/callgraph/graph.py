"""Call graph over IR functions.

SafeFlow's phase 1 propagates shared-memory pointers bottom-up and
top-down over the strongly connected components of the call graph
(§3.3); this module supplies the graph and both traversal orders.

Indirect calls are resolved conservatively: a call through a function
pointer may target any *address-taken* function whose signature has the
same arity. The corpus systems use direct calls only, so this matters
only for user programs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..ir import Call, Function, Module
from .scc import strongly_connected_components


class CallSite:
    """One call instruction and its resolved possible targets."""

    __slots__ = ("call", "caller", "targets")

    def __init__(self, call: Call, caller: Function, targets: Tuple[Function, ...]):
        self.call = call
        self.caller = caller
        self.targets = targets

    def __repr__(self) -> str:
        names = ",".join(t.name for t in self.targets) or "<external>"
        return f"<callsite {self.caller.name} -> {names}>"


class CallGraph:
    """Whole-program call graph with SCC condensation."""

    def __init__(self, module: Module):
        self.module = module
        self.edges: Dict[Function, Set[Function]] = {}
        self.reverse_edges: Dict[Function, Set[Function]] = {}
        self.call_sites: List[CallSite] = []
        self.external_calls: List[Tuple[Function, Call]] = []
        self._build()
        self._sccs: Optional[List[List[Function]]] = None

    def _build(self) -> None:
        address_taken = self._address_taken_functions()
        for func in self.module.defined_functions():
            self.edges.setdefault(func, set())
            for call in func.calls():
                targets = self._resolve(call, address_taken)
                defined = tuple(t for t in targets if not t.is_declaration)
                if defined:
                    self.call_sites.append(CallSite(call, func, defined))
                    for target in defined:
                        self.edges[func].add(target)
                        self.reverse_edges.setdefault(target, set()).add(func)
                else:
                    self.external_calls.append((func, call))
        for func in self.module.defined_functions():
            self.reverse_edges.setdefault(func, set())

    def _address_taken_functions(self) -> List[Function]:
        taken: List[Function] = []
        for func in self.module.defined_functions():
            for inst in func.instructions():
                for op in inst.operands:
                    if isinstance(op, Function) and not (
                        isinstance(inst, Call) and inst.callee is op
                    ):
                        if op not in taken:
                            taken.append(op)
        return taken

    def _resolve(self, call: Call, address_taken: List[Function]) -> List[Function]:
        if isinstance(call.callee, Function):
            return [call.callee]
        if isinstance(call.callee, str):
            target = self.module.get_function(call.callee)
            return [target] if target is not None else []
        # indirect call: all address-taken functions of matching arity
        arity = len(call.operands)
        return [
            f
            for f in address_taken
            if len(f.ftype.params) == arity or f.ftype.varargs
        ]

    # ------------------------------------------------------------------

    def callees(self, func: Function) -> Set[Function]:
        return self.edges.get(func, set())

    def callers(self, func: Function) -> Set[Function]:
        return self.reverse_edges.get(func, set())

    def sites_in(self, func: Function) -> Iterable[CallSite]:
        return (site for site in self.call_sites if site.caller is func)

    def sccs(self) -> List[List[Function]]:
        """SCCs in reverse topological order (callees before callers)."""
        if self._sccs is None:
            nodes = list(self.edges.keys())
            succ = {f: sorted(self.edges[f], key=lambda g: g.name) for f in nodes}
            self._sccs = strongly_connected_components(nodes, succ)
        return self._sccs

    def bottom_up_order(self) -> List[List[Function]]:
        """SCC groups, every callee group before its caller groups."""
        return self.sccs()

    def top_down_order(self) -> List[List[Function]]:
        """SCC groups, every caller group before its callee groups."""
        return list(reversed(self.sccs()))

    def reachable_from(self, roots: Iterable[Function]) -> Set[Function]:
        seen: Set[Function] = set()
        work = list(roots)
        while work:
            func = work.pop()
            if func in seen:
                continue
            seen.add(func)
            work.extend(self.edges.get(func, ()))
        return seen

    @property
    def root(self) -> Optional[Function]:
        main = self.module.get_function("main")
        if main is not None and not main.is_declaration:
            return main
        return None
