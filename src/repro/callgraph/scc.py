"""Tarjan's strongly-connected-components algorithm (iterative).

Returns components in reverse topological order of the condensation —
i.e. for a call graph, callees appear before callers, which is exactly
the bottom-up summary order SafeFlow's phases need.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, TypeVar

N = TypeVar("N", bound=Hashable)


def strongly_connected_components(
    nodes: Sequence[N], successors: Dict[N, Sequence[N]]
) -> List[List[N]]:
    index: Dict[N, int] = {}
    lowlink: Dict[N, int] = {}
    on_stack: Dict[N, bool] = {}
    stack: List[N] = []
    result: List[List[N]] = []
    counter = [0]

    for root in nodes:
        if root in index:
            continue
        # iterative Tarjan with an explicit work stack of (node, iterator)
        work: List[tuple] = [(root, iter(successors.get(root, ())))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True

        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter(successors.get(succ, ()))))
                    advanced = True
                    break
                if on_stack.get(succ, False):
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[N] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
    return result
