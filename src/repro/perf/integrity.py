"""Checksummed cache-entry framing (torn-write detection).

The on-disk caches write atomically (``mkstemp`` + ``os.replace``),
which protects against *concurrent* readers — but not against partial
disks, bit rot, or a crash mid-``write`` on filesystems where replace
lands but the temp data didn't all make it. A silently truncated
pickle can raise nearly anything at load time, or — worse — unpickle
to a plausible but wrong object graph.

Every cache entry is therefore framed as::

    MAGIC (6 bytes) + sha256(payload) (32 bytes) + payload

:func:`unseal` verifies the magic and digest before a single byte of
the payload reaches ``pickle``; any mismatch raises
:class:`IntegrityError`, which the caches treat as *evict and
recompute silently*, counting the event into
``AnalysisStats.cache_integrity_evictions`` / server metrics.
Pre-checksum legacy entries fail the magic check and are evicted the
same way — one recompute, no schema migration.
"""

from __future__ import annotations

import hashlib

#: frame magic; bump the digit on framing changes
MAGIC = b"SFCK1\n"
_DIGEST_LEN = 32
HEADER_LEN = len(MAGIC) + _DIGEST_LEN


class IntegrityError(Exception):
    """A cache entry whose checksum footer does not match its bytes."""


def seal(payload: bytes) -> bytes:
    """Frame ``payload`` with the magic + content digest header."""
    return MAGIC + hashlib.sha256(payload).digest() + payload


def unseal(blob: bytes) -> bytes:
    """Verify and strip the frame; :class:`IntegrityError` on damage."""
    if len(blob) < HEADER_LEN or not blob.startswith(MAGIC):
        raise IntegrityError("missing or foreign cache-entry header")
    digest = blob[len(MAGIC):HEADER_LEN]
    payload = blob[HEADER_LEN:]
    if hashlib.sha256(payload).digest() != digest:
        raise IntegrityError("cache-entry checksum mismatch (torn write?)")
    return payload
