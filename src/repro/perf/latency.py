"""Shared latency accounting: full-run recorders and rolling windows.

Two consumers need the same quantile math and must not drift apart:

- the benchmarks (``bench_server.py``, ``bench_fleet.py``) record every
  request of a run and report p50/p90/p99 — :class:`LatencyRecorder`;
- the daemon / fleet health planes report *recent* latency so a router
  can make backpressure decisions on a live signal — a full-run
  aggregate would be dominated by history and never recover after a
  spike — :class:`RollingLatency` keeps a bounded window of the most
  recent observations.

Quantiles use the nearest-rank method on sorted samples: ``p50`` of
one sample is that sample, never an interpolation artifact. All
durations are seconds (floats); renderers multiply up to ms.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Dict, List, Optional, Sequence


def percentile(sorted_samples: Sequence[float], p: float) -> Optional[float]:
    """Nearest-rank percentile of an ascending-sorted sequence.

    ``p`` is in [0, 100]. Returns ``None`` for an empty sequence.
    """
    if not sorted_samples:
        return None
    if p <= 0:
        return sorted_samples[0]
    if p >= 100:
        return sorted_samples[-1]
    # nearest-rank: ceil(p/100 * n), 1-based
    n = len(sorted_samples)
    rank = max(1, math.ceil(p * n / 100.0))
    return sorted_samples[min(n, rank) - 1]


class LatencyRecorder:
    """Records every observation of a benchmark run.

    Unbounded by design — a bench run knows its own size — but cheap:
    one float append per observation, sorting deferred to
    :meth:`summary`.
    """

    __slots__ = ("_samples", "_sorted")

    def __init__(self):
        self._samples: List[float] = []
        self._sorted = True

    def record(self, seconds: float) -> None:
        self._samples.append(float(seconds))
        self._sorted = False

    def __len__(self) -> int:
        return len(self._samples)

    def _ensure_sorted(self) -> List[float]:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        return self._samples

    def percentile(self, p: float) -> Optional[float]:
        return percentile(self._ensure_sorted(), p)

    def summary(self) -> Dict[str, object]:
        """JSON-ready stats block: count/mean/min/p50/p90/p99/max."""
        samples = self._ensure_sorted()
        if not samples:
            return {"count": 0}
        return {
            "count": len(samples),
            "mean_s": sum(samples) / len(samples),
            "min_s": samples[0],
            "p50_s": percentile(samples, 50),
            "p90_s": percentile(samples, 90),
            "p99_s": percentile(samples, 99),
            "max_s": samples[-1],
        }


class RollingLatency:
    """Thread-safe bounded window of recent latency observations.

    The health plane reads :meth:`quantiles` on every ``health`` RPC;
    a router polling many shards needs that read to be cheap, so the
    window is kept small (default 512) and sorting happens per read on
    a copied snapshot.
    """

    def __init__(self, window: int = 512):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._lock = threading.Lock()
        self._samples: deque = deque(maxlen=window)
        self._count = 0

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(float(seconds))
            self._count += 1

    def quantiles(self) -> Dict[str, object]:
        """Recent p50/p99 (seconds) plus window occupancy and the
        all-time observation count."""
        with self._lock:
            samples = sorted(self._samples)
            count = self._count
        return {
            "p50_s": percentile(samples, 50),
            "p99_s": percentile(samples, 99),
            "window": len(samples),
            "count": count,
        }
