"""Stable content fingerprints for the performance layer.

Every cache in :mod:`repro.perf` is keyed by *content*, never by
timestamps: two runs that see the same bytes, the same configuration
and the same analysis-relevant facts must produce the same key, across
processes and machines. Three fingerprint families live here:

- :func:`file_digest` / :func:`text_digest` — raw input hashing for the
  front-end IR cache;
- :func:`config_fingerprint` — the analysis-relevant slice of
  :class:`repro.core.config.AnalysisConfig` (cache plumbing fields are
  excluded so toggling the cache never invalidates it);
- :func:`function_fingerprint` / :class:`FlowFingerprints` — structural
  hashes of IR functions, including source locations (diagnostics embed
  line numbers, so a moved function *is* a changed function) and the
  per-function shared-memory facts the value-flow phase consumes.

The function fingerprints deliberately avoid :mod:`repro.ir.printer`:
``function_to_text`` assigns names to unnamed temporaries as a side
effect, and its operand rendering falls back to ``id()``-based names
that differ between processes. Here every instruction is named by its
(block, index) position, which is stable for a fixed program.
"""

from __future__ import annotations

import hashlib
import weakref
from dataclasses import fields as dataclass_fields
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from ..ir import BasicBlock, Function, Instruction
from ..ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    Cmp,
    CondBranch,
    FieldAddr,
    IndexAddr,
    Jump,
    Phi,
    Ret,
)
from ..ir.values import Argument, Constant, GlobalVariable, UndefValue, Value

#: bump when the fingerprint composition changes; folded into every key
SCHEMA_VERSION = 1

#: AnalysisConfig fields that only steer the performance layer itself —
#: never part of a semantic cache key. ``sparse_fixpoint`` and
#: ``profile`` qualify because both are report-preserving: toggling
#: them must not invalidate summaries recorded under the other setting.
CACHE_ONLY_FIELDS = frozenset({
    "cache_dir", "frontend_cache", "frontend_memo", "summary_cache",
    "sparse_fixpoint", "profile", "kernel_width", "pause_gc",
})


def sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def text_digest(text: str) -> str:
    return sha256_hex(text.encode("utf-8", errors="surrogateescape"))


def file_digest(path: str) -> Optional[str]:
    """Content hash of a file; ``None`` when it cannot be read."""
    try:
        with open(path, "rb") as f:
            return sha256_hex(f.read())
    except OSError:
        return None


def combine(parts: Iterable[str]) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8", errors="surrogateescape"))
        h.update(b"\x00")
    return h.hexdigest()


def config_fingerprint(config) -> str:
    """Deterministic digest of the analysis-relevant config fields."""
    parts = [f"schema={SCHEMA_VERSION}"]
    for f in sorted(dataclass_fields(config), key=lambda f: f.name):
        if f.name in CACHE_ONLY_FIELDS:
            continue
        value = getattr(config, f.name)
        if f.name == "kernel":
            # the compiled kernel's persisted side effects (summary
            # records) depend on its program/lattice format: fold the
            # opcode format version in, so records written under one
            # representation are never replayed into another
            if value == "compiled":
                from ..valueflow.opcodes import OPCODE_FORMAT_VERSION

                rendered = repr(f"compiled/v{OPCODE_FORMAT_VERSION}")
            else:
                rendered = repr(value)
        elif isinstance(value, dict):
            rendered = repr(sorted(value.items()))
        elif isinstance(value, (tuple, list)):
            rendered = repr(tuple(value))
        else:
            rendered = repr(value)
        parts.append(f"{f.name}={rendered}")
    # persisted value-flow segments (repro.incremental) have their own
    # on-disk format; fold its version in so a format rev gives stores
    # and summary caches a fresh namespace, like OPCODE_FORMAT_VERSION
    from ..incremental.segments import SEGMENT_FORMAT_VERSION

    parts.append(f"segments=v{SEGMENT_FORMAT_VERSION}")
    # the recovery ladder rewrites unit text before parsing: fold the
    # tier format version and GNU parser strategy in (the enabled-tier
    # set itself is an ordinary config field above), so a rewrite-rule
    # rev or installing the wild extra renamespaces every cache
    if getattr(config, "recover_tiers", ()):
        from ..frontend.recovery import recovery_fingerprint

        fp = recovery_fingerprint(config.recover_tiers)
        parts.append(f"recovery={fp}")
    return combine(parts)


# ----------------------------------------------------------------------
# IR function fingerprints
# ----------------------------------------------------------------------

def _loc_text(location) -> str:
    if location is None:
        return "-"
    return f"{location.filename}:{location.line}:{location.column}"


#: memoized digests keyed by Function identity. IR functions are
#: immutable once the front end hands them to the analysis pipeline, so
#: the digest of a live object never changes; weak keys let programs be
#: garbage-collected normally.
_FUNCTION_FP_CACHE: "weakref.WeakKeyDictionary[Function, str]" = (
    weakref.WeakKeyDictionary()
)


def function_fingerprint(func: Function) -> str:
    """Structural + positional digest of one function's IR.

    Includes every instruction's class, operands (positionally named),
    class-specific attributes, and source location, so both a semantic
    edit and a pure line-shift change the fingerprint — either would
    change the diagnostics the cached summaries reproduce.

    Memoized per live ``Function`` object: summary replay fingerprints
    every function once per analyzed program, and long-lived processes
    (``safeflow serve``, batch workers) re-fingerprint shared corpora.
    """
    cached = _FUNCTION_FP_CACHE.get(func)
    if cached is not None:
        return cached
    fp = _function_fingerprint_uncached(func)
    _FUNCTION_FP_CACHE[func] = fp
    return fp


def _function_fingerprint_uncached(func: Function) -> str:
    if func.is_declaration:
        return combine([f"declare {func.name}", repr(func.ftype)])
    ids: Dict[Value, str] = {}
    block_ids: Dict[BasicBlock, str] = {}
    for bi, block in enumerate(func.blocks):
        block_ids[block] = f"b{bi}"
        for ii, inst in enumerate(block.instructions):
            ids[inst] = f"%{bi}.{ii}"

    def val(v: Value) -> str:
        if isinstance(v, Instruction):
            return ids.get(v, "%ext")
        if isinstance(v, Argument):
            return f"arg{v.index}"
        if isinstance(v, Constant):
            return f"const({v.value!r}:{v.type!r})"
        if isinstance(v, GlobalVariable):
            return f"@{v.name}"
        if isinstance(v, Function):
            return f"fn:{v.name}"
        if isinstance(v, UndefValue):
            return "undef"
        return f"other:{type(v).__name__}"

    lines = [
        f"define {func.name}",
        ",".join(f"{a.name}:{a.type!r}" for a in func.arguments),
        repr(func.return_type),
    ]
    for block in func.blocks:
        lines.append(f"{block_ids[block]}:")
        for inst in block.instructions:
            extra = ""
            if isinstance(inst, BinOp):
                extra = inst.op
            elif isinstance(inst, Cmp):
                extra = inst.op
            elif isinstance(inst, Cast):
                extra = inst.kind
            elif isinstance(inst, FieldAddr):
                extra = inst.field_name
            elif isinstance(inst, Alloca):
                extra = repr(inst.allocated_type)
            elif isinstance(inst, Call):
                extra = inst.callee_name or val(inst.callee)
            elif isinstance(inst, Jump):
                extra = block_ids.get(inst.target, "b?")
            elif isinstance(inst, CondBranch):
                extra = (f"{block_ids.get(inst.true_block, 'b?')}/"
                         f"{block_ids.get(inst.false_block, 'b?')}")
            elif isinstance(inst, Phi):
                extra = ",".join(
                    f"{block_ids.get(b, 'b?')}={val(v)}"
                    for b, v in sorted(
                        inst.incoming.items(),
                        key=lambda kv: block_ids.get(kv[0], "b?"),
                    )
                )
            else:
                op = getattr(inst, "op", None)
                if isinstance(op, str):
                    extra = op
            ops = ",".join(val(op) for op in inst.operands)
            lines.append(
                f"{ids[inst]}={type(inst).__name__}"
                f"[{extra}]({ops}):{inst.type!r}@{_loc_text(inst.location)}"
            )
    return combine(lines)


# ----------------------------------------------------------------------
# per-function flow facts + transitive closure hashes
# ----------------------------------------------------------------------

class FlowFingerprints:
    """Per-function fingerprints covering everything a value-flow
    summary of that function can observe:

    - the function's own IR (with locations);
    - the shared-memory facts phase 1 derived *for that function*
      (``value_regions``, ``arg_regions``, ``monitor_assumes``);
    - the global tables every function sees (region model, resolved
      ``assert(safe(...))`` positions, non-core descriptors, config).

    ``closure(func)`` folds in the fingerprints of every transitively
    callable function, so an edit to a callee invalidates exactly the
    callers that can reach it and nothing else.
    """

    def __init__(self, shm, config, assert_vars: Optional[dict] = None):
        self.shm = shm
        self.module = shm.module
        self._global_fp = self._compute_global(config, assert_vars or {})
        self._flow: Dict[str, str] = {}
        self._closure: Dict[str, str] = {}
        self._reachable_sets: Optional[
            Dict[Function, FrozenSet[Function]]
        ] = None

    # -- pieces --------------------------------------------------------

    def _compute_global(self, config, assert_vars: dict) -> str:
        parts = [config_fingerprint(config)]
        for name in sorted(self.shm.regions):
            region = self.shm.regions[name]
            parts.append(
                f"region:{name}:{region.size}:{region.noncore}:"
                f"{region.init_function}"
            )
        for key in sorted(assert_vars):
            parts.append(f"assert:{key!r}={assert_vars[key]!r}")
        for fname in sorted(self.shm.noncore_descriptors):
            names = sorted(self.shm.noncore_descriptors[fname])
            parts.append(f"descr:{fname}:{names}")
        # fail-closed degradation changes every body's semantics (calls
        # into degraded functions become unmonitored non-core flow, and
        # a lost unit smears every unresolved external), so the degraded
        # set must namespace the summaries: flipping a function's
        # degraded status without changing its IR must not replay
        # records from the other mode
        program = getattr(self.shm, "program", None)
        if program is not None:
            degraded = sorted(
                getattr(program, "degraded_functions", ()) or ())
            unit_lost = any(
                d.kind == "unit"
                for d in getattr(program, "degraded", ()) or ())
            if degraded or unit_lost:
                parts.append(f"degraded:{degraded}:{unit_lost}")
        return combine(parts)

    def _flow_fp(self, func: Function) -> str:
        cached = self._flow.get(func.name)
        if cached is not None:
            return cached
        parts = [self._global_fp, function_fingerprint(func)]
        positions: Dict[Value, str] = {}
        for bi, block in enumerate(func.blocks):
            for ii, inst in enumerate(block.instructions):
                positions[inst] = f"{bi}.{ii}"
        vr = self.shm.value_regions.get(func, {})
        entries = sorted(
            (positions.get(value, "?"), sorted(regions))
            for value, regions in vr.items()
            if regions
        )
        parts.append(f"vr:{entries!r}")
        ar = self.shm.arg_regions.get(func, [])
        parts.append(f"ar:{[sorted(r) for r in ar]!r}")
        assumes = self.shm.monitor_assumes.get(func.name, [])
        parts.append(
            "as:" + repr(sorted(
                (a.pointer, a.offset, a.size, a.is_parameter,
                 a.parameter_index)
                for a in assumes
            ))
        )
        fp = combine(parts)
        self._flow[func.name] = fp
        return fp

    # -- public --------------------------------------------------------

    def _reachable(self, func: Function) -> FrozenSet[Function]:
        """Everything transitively callable from ``func`` (inclusive).

        Computed for all functions at once, bottom-up over the call
        graph's SCC condensation: one pass unions callee-component sets
        instead of re-traversing the graph per function, and every
        member of an SCC shares one frozenset. Yields exactly the same
        sets as per-function ``reachable_from`` — the closure
        fingerprints are unchanged.
        """
        if self._reachable_sets is None:
            cg = self.shm.callgraph
            sets: Dict[Function, FrozenSet[Function]] = {}
            for component in cg.sccs():  # callees before callers
                members = set(component)
                acc = set(members)
                for member in component:
                    for callee in cg.callees(member):
                        if callee not in members:
                            acc |= sets[callee]
                shared = frozenset(acc)
                for member in component:
                    sets[member] = shared
            self._reachable_sets = sets
        cached = self._reachable_sets.get(func)
        if cached is not None:
            return cached
        # not a call-graph node (e.g. a function outside the module)
        return frozenset(self.shm.callgraph.reachable_from([func]))

    def closure(self, func: Function) -> str:
        """Fingerprint of ``func`` plus everything it can call."""
        cached = self._closure.get(func.name)
        if cached is not None:
            return cached
        reachable = self._reachable(func)
        parts = [f"root:{self._flow_fp(func)}"]
        for other in sorted(reachable, key=lambda f: f.name):
            if other is func or other.is_declaration:
                continue
            parts.append(f"{other.name}:{self._flow_fp(other)}")
        fp = combine(parts)
        self._closure[func.name] = fp
        return fp
