"""In-memory reuse of front-ended programs (the memory tier above
:class:`repro.perf.ircache.IRCache`).

A disk IR-cache hit still unpickles the whole ``Program`` object graph
on every request — on the serving hot path that is the second-largest
cost after gc churn (~1.5ms even for a trivial unit). But repeated
analyses of one loaded ``Program`` are already a supported pattern:
the incremental session (PR 7) re-analyzes one program object across
many verdicts with proven byte-identity, and per-function derived
analyses (:meth:`repro.ir.function.Function.cached_analysis`) are
idempotent build-once memos. This module exploits that: a process-wide
pool keeps recently used ``Program`` objects and hands them out for
reuse instead of re-unpickling.

Leases are *exclusive*: :meth:`ProgramMemo.acquire` pops the object
out of the pool, so two threads (the daemon's in-process fallback pool)
can never analyze one shared object graph concurrently — the second
request simply misses and unpickles its own copy, which
:meth:`ProgramMemo.release` then adds to the pool.

Staleness mirrors the disk cache: keys are the IRCache content keys
(input digests + front-end config), and each pooled program carries
the ``(path, digest)`` list of every real file it was built from;
:meth:`acquire` re-validates those digests, so an edited ``#include``
dependency is a miss here exactly as it is on disk. Inline-source
programs have no file dependencies and validate for free.

The memo is report-preserving by the incremental layer's byte-identity
argument and is therefore never part of a cache key
(``AnalysisConfig.frontend_memo`` is a ``CACHE_ONLY_FIELDS`` entry).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from .fingerprint import file_digest

#: default bound on pooled programs across all keys (process-wide)
DEFAULT_CAPACITY = 32

_Deps = List[Tuple[str, str]]


class ProgramMemo:
    """Bounded LRU pool of front-ended programs, exclusive-lease."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = max(0, capacity)
        self._lock = threading.Lock()
        #: key → pooled [(program, deps)]; OrderedDict gives key-level LRU
        self._pools: "OrderedDict[str, List[Tuple[object, _Deps]]]" = \
            OrderedDict()
        self._size = 0
        self._leased: Dict[int, Tuple[str, _Deps]] = {}
        self.hits = 0
        self.misses = 0
        self.stale_evictions = 0

    # ------------------------------------------------------------------

    def acquire(self, key: Optional[str]):
        """Pop a fresh pooled program for ``key``, or ``None``.

        The caller owns the returned object until it hands it back via
        :meth:`release` (typically in a ``finally``).
        """
        if key is None or self.capacity == 0:
            return None
        with self._lock:
            pool = self._pools.get(key)
            while pool:
                program, deps = pool.pop()
                self._size -= 1
                if not pool:
                    del self._pools[key]
                if self._deps_fresh(deps):
                    self._leased[id(program)] = (key, deps)
                    self.hits += 1
                    return program
                self.stale_evictions += 1
                pool = self._pools.get(key)
            self.misses += 1
            return None

    def release(self, key: Optional[str], program) -> bool:
        """Return a program to the pool; False when not memoizable."""
        if key is None or program is None or self.capacity == 0:
            return False
        with self._lock:
            lease = self._leased.pop(id(program), None)
        deps = lease[1] if lease is not None else self._compute_deps(program)
        if deps is None:
            return False
        with self._lock:
            pool = self._pools.setdefault(key, [])
            self._pools.move_to_end(key)
            pool.append((program, deps))
            self._size += 1
            while self._size > self.capacity:
                oldest_key, oldest_pool = next(iter(self._pools.items()))
                oldest_pool.pop(0)
                self._size -= 1
                if not oldest_pool:
                    del self._pools[oldest_key]
        return True

    # ------------------------------------------------------------------

    @staticmethod
    def _deps_fresh(deps: _Deps) -> bool:
        return all(file_digest(path) == digest for path, digest in deps)

    @staticmethod
    def _compute_deps(program) -> Optional[_Deps]:
        """``(path, digest)`` of every real file behind ``program``;
        ``None`` (not memoizable) when one cannot be read. Mirrors
        :meth:`repro.perf.ircache.IRCache.store`."""
        deps: _Deps = []
        seen = set()
        for unit in getattr(program, "units", []):
            for path in getattr(unit.source, "files", []):
                if path in seen or not os.path.isfile(path):
                    continue
                seen.add(path)
                digest = file_digest(path)
                if digest is None:
                    return None
                deps.append((path, digest))
        return deps

    # ------------------------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._pools.clear()
            self._leased.clear()
            self._size = 0

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "stale_evictions": self.stale_evictions,
                "pooled": self._size,
            }


#: the process-wide memo every SafeFlow instance shares
_MEMO = ProgramMemo()


def program_memo() -> ProgramMemo:
    return _MEMO
