"""Durable batch checkpoint/resume: an append-only result journal.

``safeflow batch --journal PATH`` writes every completed job's result
to a write-ahead log the moment it settles, so a batch killed mid-run
(SIGKILL, OOM, power loss) costs only the jobs that were in flight.
``--resume`` replays the journal, keeps results whose input
fingerprints still match, and re-runs only the rest.

Format
------

The journal is a sequence of independently verifiable frames::

    FRAME_MAGIC (4 bytes) + big-endian u32 length + sealed payload

where ``sealed`` is :func:`repro.perf.integrity.seal` over a pickled
record dict — the same ``SFCK1`` checksum framing the on-disk caches
use, so a torn write, bit rot, or a crash mid-append is detected
before a single byte reaches ``pickle``. Records are either the
header (``{"type": "header", "version", "config"}``) or a result
(``{"type": "result", "name", "fingerprint", "result": BatchResult}``).

Recovery is truncate-and-continue: replay reads frames sequentially
and stops at the first damaged one (short frame, bad magic, checksum
mismatch, unpicklable payload); everything before it is intact by
construction — appends are sequential and flushed+fsynced per record —
so the damaged tail is truncated, counted, and the journal re-opened
for append at the cut. A torn tail is *expected* after a crash, never
an error.

Fingerprints
------------

A journaled result is only reused when ``job_fingerprint`` still
matches: the content digest of every input file, the job's shape
(name, file list, include dirs, defines), and the analysis-relevant
config fingerprint (which includes ``degraded_mode``). Any change —
edited source, different config — re-runs the job, which keeps
``--resume`` byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import JournalError
from ..resilience import faults
from .batch import BatchJob, BatchOutcome, BatchResult, run_batch
from .fingerprint import combine, config_fingerprint, file_digest
from .integrity import seal, unseal

#: per-frame magic — detects a seek into garbage before length parsing
FRAME_MAGIC = b"SFJ1"
_LEN = struct.Struct(">I")
#: journal format version (header record); bump on layout changes
VERSION = 1
#: refuse absurd frame lengths (corrupt length field) without trying
#: to allocate them
_MAX_FRAME = 1 << 31


def job_fingerprint(job: BatchJob, config) -> str:
    """Content fingerprint deciding whether a journaled result is reusable."""
    parts = [
        f"config={config_fingerprint(config)}",
        f"name={job.name}",
        f"files={tuple(job.files)!r}",
        f"include_dirs={tuple(job.include_dirs)!r}",
        f"defines={sorted((job.defines or {}).items())!r}",
    ]
    for path in job.files:
        digest = file_digest(path)
        parts.append(f"file={path}:{digest or '<missing>'}")
    return combine(parts)


@dataclass
class JournalReplay:
    """What a journal held: reusable results plus damage accounting."""

    #: job name → (fingerprint, result); later records win, so a job
    #: re-run after a resume supersedes its older entry
    results: Dict[str, Tuple[str, BatchResult]] = field(default_factory=dict)
    #: damaged tail frames truncated during replay (0 or 1 — replay
    #: stops at the first damaged frame)
    truncated_records: int = 0
    #: byte offset of the last intact frame boundary
    good_offset: int = 0
    header: Optional[dict] = None


class BatchJournal:
    """Append-only, checksum-framed WAL of batch results."""

    def __init__(self, path: str):
        self.path = path
        self._fh: Optional[io.BufferedWriter] = None

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------

    def replay(self) -> JournalReplay:
        """Read every intact record; truncate a damaged tail in place."""
        replay = JournalReplay()
        try:
            fh = open(self.path, "rb")
        except FileNotFoundError:
            return replay
        with fh:
            while True:
                offset = fh.tell()
                head = fh.read(len(FRAME_MAGIC) + _LEN.size)
                if not head:
                    replay.good_offset = offset
                    return replay  # clean end
                if (len(head) < len(FRAME_MAGIC) + _LEN.size
                        or head[:len(FRAME_MAGIC)] != FRAME_MAGIC):
                    return self._damaged(replay, offset)
                (length,) = _LEN.unpack(head[len(FRAME_MAGIC):])
                if length > _MAX_FRAME:
                    return self._damaged(replay, offset)
                sealed = fh.read(length)
                if len(sealed) < length:
                    return self._damaged(replay, offset)
                try:
                    payload = unseal(sealed)
                    record = pickle.loads(payload)
                except Exception:  # IntegrityError, unpickling garbage
                    return self._damaged(replay, offset)
                self._absorb(replay, record)
                replay.good_offset = fh.tell()

    def _damaged(self, replay: JournalReplay, offset: int) -> JournalReplay:
        """Truncate the journal at the last intact frame boundary."""
        replay.truncated_records += 1
        replay.good_offset = offset
        try:
            with open(self.path, "r+b") as fh:
                fh.truncate(offset)
        except OSError as exc:
            raise JournalError(
                f"cannot truncate damaged journal tail of {self.path}: {exc}"
            )
        return replay

    @staticmethod
    def _absorb(replay: JournalReplay, record) -> None:
        if not isinstance(record, dict):
            return
        if record.get("type") == "header":
            replay.header = record
        elif record.get("type") == "result":
            name = record.get("name")
            result = record.get("result")
            if isinstance(name, str) and isinstance(result, BatchResult):
                replay.results[name] = (record.get("fingerprint", ""), result)

    # ------------------------------------------------------------------
    # append
    # ------------------------------------------------------------------

    def open_for_append(self, fresh: bool = False, config=None) -> None:
        """Open the journal for appending; write a header if empty.

        ``fresh`` truncates any existing file first (a non-resume run
        must not inherit stale records).
        """
        directory = os.path.dirname(os.path.abspath(self.path))
        try:
            os.makedirs(directory, exist_ok=True)
            self._fh = open(self.path, "wb" if fresh else "ab")
            empty = os.path.getsize(self.path) == 0
        except OSError as exc:
            raise JournalError(f"cannot open journal {self.path}: {exc}")
        if empty:
            header = {"type": "header", "version": VERSION}
            if config is not None:
                header["config"] = config_fingerprint(config)
            self._write_record(header)

    def append_result(self, name: str, fingerprint: str,
                      result: BatchResult) -> None:
        """Durably append one settled result, then fire the
        ``kill_after_journal`` fault hook (chaos harness)."""
        self._write_record({
            "type": "result",
            "name": name,
            "fingerprint": fingerprint,
            "result": result,
        })
        faults.on_journal_append(name)

    def _write_record(self, record: dict) -> None:
        if self._fh is None:
            raise JournalError("journal is not open for appending")
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        sealed = seal(payload)
        try:
            self._fh.write(FRAME_MAGIC + _LEN.pack(len(sealed)) + sealed)
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except OSError as exc:
            raise JournalError(
                f"cannot append to journal {self.path}: {exc}")

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def __enter__(self) -> "BatchJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# journaled batch driver
# ----------------------------------------------------------------------

def run_journaled(
    jobs: Sequence[BatchJob],
    config,
    journal_path: str,
    resume: bool = False,
    fail_fast: bool = False,
    **run_kwargs,
) -> BatchOutcome:
    """:func:`repro.perf.batch.run_batch` with a durable WAL.

    Every settled result is appended to the journal the moment the
    dispatch loop sees it, so a driver killed mid-batch loses only
    in-flight jobs. With ``resume`` the journal is replayed first:
    jobs with an intact, fingerprint-matching, successful record are
    not re-run — their journaled results (reports included) are spliced
    back in job order, byte-identical to the uninterrupted run because
    they *are* the bytes of that run. Failed/missing/stale records
    re-run. A damaged tail is truncated and counted
    (``BatchOutcome.journal_truncated_records``, also folded into the
    first re-run report's ``AnalysisStats.journal_recovered_records``).
    """
    journal = BatchJournal(journal_path)
    replay = journal.replay() if resume else JournalReplay()

    fingerprints = {job.name: job_fingerprint(job, config) for job in jobs}
    reused: Dict[int, BatchResult] = {}
    todo: List[Tuple[int, BatchJob]] = []
    for index, job in enumerate(jobs):
        record = replay.results.get(job.name)
        if (record is not None and record[0] == fingerprints[job.name]
                and record[1].ok):
            reused[index] = record[1]
        else:
            todo.append((index, job))

    with journal:
        journal.open_for_append(fresh=not resume, config=config)

        def on_result(sub_index: int, result: BatchResult) -> None:
            _index, job = todo[sub_index]
            if result.ok:
                journal.append_result(
                    job.name, fingerprints[job.name], result)

        sub = run_batch([job for _, job in todo], config,
                        fail_fast=fail_fast, on_result=on_result,
                        **run_kwargs)

    outcome = BatchOutcome(
        wall_time=sub.wall_time,
        worker_restarts=sub.worker_restarts,
        quarantined=list(sub.quarantined),
        resumed_jobs=len(reused),
        journal_truncated_records=replay.truncated_records,
    )
    merged: Dict[int, BatchResult] = dict(reused)
    for (index, _job), result in zip(todo, sub.results):
        merged[index] = result
    outcome.results.extend(merged[i] for i in range(len(jobs)))

    if replay.truncated_records:
        # surface the recovery in AnalysisStats: attribute it to the
        # first re-computed successful report (deterministic in job
        # order); recomputation is exactly what the truncation cost
        for index, _job in todo:
            result = merged.get(index)
            if result is not None and result.ok and result.report is not None:
                result.report.stats.journal_recovered_records = (
                    replay.truncated_records)
                break
    return outcome
