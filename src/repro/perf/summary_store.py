"""Persistent ESP-summary reuse for the value-flow phase.

:class:`repro.valueflow.engine.ValueFlowAnalysis` in ``summary_mode``
analyzes each (function, assumed-core context) once per outer fixpoint
iteration. For a function whose analysis-relevant inputs have not
changed since a previous *process*, that work is replayable: this
module persists, per summary/effects body run, everything the run
observed and everything it did.

**Key** (see :mod:`repro.perf.fingerprint`): the function's transitive
closure fingerprint (its own IR with locations, every reachable
callee's IR, the per-function shared-memory facts, the global region /
assertion tables and the analysis config), the assumed-core context,
the body kind, and the serialized argument taints. Editing one function
therefore invalidates exactly that function and its transitive callers;
everything else keeps replaying.

**Record**: the returned taint, plus the body's observable effects —
warnings ensured, critical-dependency failures accumulated, value-flow
graph edges added, memory-cell taints joined — plus its *inputs*: the
first-read taint of every memory cell it consulted and the (callee,
context, argument-taints, result) of every call it dispatched.

**Replay** is validating, never trusting: a record is applied only if
every recorded cell read matches the engine's current cell state, every
re-dispatched call returns the recorded taint, and no re-dispatched
call mutated cell state out from under the recorded reads. Any mismatch
falls back to recomputing the body, which is always safe because every
effect is an idempotent join. The engine's outer fixpoint then
converges to the same state, and the same report, as a cold run.

Memory cells are identified across processes by *canonical names*
derived from the points-to graph structure (:class:`CellNamer`), never
by the process-local ``Cell.id`` counter.
"""

from __future__ import annotations

import heapq
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .fingerprint import SCHEMA_VERSION, combine
from .integrity import IntegrityError, seal, unseal

if TYPE_CHECKING:  # imported lazily at runtime: valueflow imports us
    from ..valueflow.taint import Taint

# ----------------------------------------------------------------------
# serialization of taints / contexts / locations
# ----------------------------------------------------------------------

SerSource = Tuple[str, str, str, int]
SerTaint = Tuple[Tuple[SerSource, ...], Tuple[SerSource, ...]]


def _ser_sources(sources) -> Tuple[SerSource, ...]:
    return tuple(sorted(
        (s.region, s.function, s.filename, s.line) for s in sources
    ))


def ser_taint(taint: Taint) -> SerTaint:
    return (_ser_sources(taint.data), _ser_sources(taint.control))


#: ser-tuple → interned taint. Taints are interned by value, so the
#: mapping is a pure function; memoizing it keeps warm segment replays
#: (which deserialize the same few taints thousands of times per
#: verdict) off the frozenset-construction path.
_DESER_TAINT_MEMO: Dict[SerTaint, "Taint"] = {}
_DESER_ARGS_MEMO: Dict[Tuple[SerTaint, ...], Tuple["Taint", ...]] = {}


def deser_taint(data: SerTaint) -> "Taint":
    cached = _DESER_TAINT_MEMO.get(data)
    if cached is not None:
        return cached
    from ..valueflow.taint import SAFE, Taint, TaintSource

    data_srcs, control_srcs = data
    if not data_srcs and not control_srcs:
        taint = SAFE
    else:
        taint = Taint(
            frozenset(TaintSource(*s) for s in data_srcs),
            frozenset(TaintSource(*s) for s in control_srcs),
        )
    _DESER_TAINT_MEMO[data] = taint
    return taint


def ser_args(args) -> Tuple[SerTaint, ...]:
    return tuple(ser_taint(a) for a in args)


def deser_args(data) -> Tuple[Taint, ...]:
    cached = _DESER_ARGS_MEMO.get(data)
    if cached is None:
        cached = _DESER_ARGS_MEMO[data] = tuple(
            deser_taint(a) for a in data)
    return cached


def ser_ctx(ctx) -> Tuple[str, ...]:
    return tuple(sorted(ctx))


def ser_loc(location) -> Optional[Tuple[str, int, int]]:
    if location is None:
        return None
    return (location.filename, location.line, location.column)


# ----------------------------------------------------------------------
# body records
# ----------------------------------------------------------------------

@dataclass
class BodyRecord:
    """One persisted summary/effects body run (all fields serialized)."""

    ret: SerTaint
    reads: Tuple[Tuple[str, SerTaint], ...] = ()
    writes: Tuple[Tuple[str, SerTaint], ...] = ()
    #: ((function, region, line), (message, loc, function, region))
    warnings: Tuple[tuple, ...] = ()
    #: ((filename, line, function, variable), data srcs, control srcs)
    failures: Tuple[tuple, ...] = ()
    #: ((kind, label, loc), (kind, label, loc), edge kind)
    edges: Tuple[tuple, ...] = ()
    #: (callee name, context, argument taints, returned taint)
    calls: Tuple[tuple, ...] = ()

    def __getstate__(self):
        # the replaying engine attaches a per-process decoded view
        # (interned taints, VFG nodes) under ``_replay_cache``; the
        # persisted form must stay pure serialized tuples
        state = dict(self.__dict__)
        state.pop("_replay_cache", None)
        return state


class BodyRecorder:
    """Mutable capture buffer for one body run."""

    __slots__ = ("ok", "_reads", "_read_names", "_written", "writes",
                 "warnings", "failures", "edges", "calls")

    def __init__(self):
        self.ok = True
        self._reads: List[Tuple[str, Taint]] = []
        self._read_names = set()
        self._written = set()
        self.writes: List[Tuple[str, Taint]] = []
        self.warnings: List[tuple] = []
        self.failures: List[tuple] = []
        self.edges: List[tuple] = []
        self.calls: List[tuple] = []

    def note_read(self, name: Optional[str], taint: Taint) -> None:
        if name is None:
            self.ok = False
            return
        # only the *first* read of a cell the body has not itself
        # written is an input; later reads see the body's own joins
        if name in self._read_names or name in self._written:
            return
        self._read_names.add(name)
        self._reads.append((name, taint))

    def note_write(self, name: Optional[str], taint: Taint) -> None:
        if name is None:
            self.ok = False
            return
        self._written.add(name)
        self.writes.append((name, taint))

    def note_warning(self, key: tuple, fields: tuple) -> None:
        self.warnings.append((key, fields))

    def note_failure(self, key: tuple, data, control) -> None:
        self.failures.append((key, _ser_sources(data), _ser_sources(control)))

    def note_edge(self, src: tuple, dst: tuple, kind: str) -> None:
        self.edges.append((src, dst, kind))

    def note_call(self, callee: str, ctx, args, ret: Taint) -> None:
        self.calls.append((callee, ser_ctx(ctx), ser_args(args),
                           ser_taint(ret)))

    def coupling(self) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        """The named cells this body read/wrote, even when the record
        itself is not persistable (``ok`` is False because an unnamed
        cell was touched). The incremental segment store keeps these as
        dependency-graph facts: a body that is never replayed still
        couples writers to readers, and its edges must take part in
        dirty-cone invalidation."""
        return (tuple(sorted(self._read_names)),
                tuple(sorted(self._written)))

    def finish(self, ret: Taint) -> BodyRecord:
        return BodyRecord(
            ret=ser_taint(ret),
            reads=tuple((n, ser_taint(t)) for n, t in self._reads),
            writes=tuple((n, ser_taint(t)) for n, t in self.writes),
            warnings=tuple(self.warnings),
            failures=tuple(self.failures),
            edges=tuple(self.edges),
            calls=tuple(self.calls),
        )


# ----------------------------------------------------------------------
# canonical cell naming
# ----------------------------------------------------------------------

class CellNamer:
    """Process-independent names for points-to representatives.

    Starting from the named roots of the points-to graph (globals,
    allocas, arguments, return slots), every reachable representative
    is assigned the lexicographically smallest derivation path such as
    ``@shm_ptr.*.angle``. Cells not reachable from any named root stay
    unnamed; records touching them are simply not persisted.
    """

    def __init__(self, points_to):
        self._names: Dict[int, str] = {}
        self._cells: Dict[str, object] = {}
        heap = []
        seq = 0
        for name, cell in points_to.named_roots():
            heapq.heappush(heap, (name, seq, cell))
            seq += 1
        while heap:
            name, _, cell = heapq.heappop(heap)
            rep = cell.find()
            if rep.id in self._names:
                continue
            self._names[rep.id] = name
            self._cells[name] = rep
            if rep.has_pointee():
                heapq.heappush(heap, (f"{name}.*", seq, rep.pointee()))
                seq += 1
            for fname, fcell in sorted(rep.fields().items()):
                heapq.heappush(heap, (f"{name}.{fname}", seq, fcell))
                seq += 1

    def key_of(self, cell) -> Optional[str]:
        return self._names.get(cell.find().id)

    def cell_for(self, name: str):
        cell = self._cells.get(name)
        return cell.find() if cell is not None else None


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------

@dataclass
class _StoreFile:
    schema: int = SCHEMA_VERSION
    entries: Dict[str, BodyRecord] = field(default_factory=dict)


class SummaryStore:
    """On-disk map from body keys to :class:`BodyRecord`.

    Load-on-construct, stage-in-memory, merge-and-flush atomically.
    Concurrent writers (batch workers) may race; the merge-then-
    ``os.replace`` discipline keeps the file consistent, and a lost
    update only costs a future cache miss.
    """

    def __init__(self, path: str):
        self.path = path
        self.hits = 0
        self.misses = 0
        self.integrity_evictions = 0
        self._entries: Dict[str, BodyRecord] = {}
        self._staged: Dict[str, BodyRecord] = {}
        self._load()

    def _read_file(self) -> Optional[_StoreFile]:
        """The on-disk store, or None when absent/damaged.

        A checksum failure (torn write, bit rot, pre-checksum legacy
        file) evicts the file and counts an ``integrity_eviction`` —
        summaries are pure acceleration, so the recovery is simply an
        empty store and a cold first run.
        """
        try:
            with open(self.path, "rb") as f:
                raw = f.read()
        except OSError:
            return None
        try:
            payload = unseal(raw)
        except IntegrityError:
            self.integrity_evictions += 1
            try:
                os.unlink(self.path)
            except OSError:
                pass
            return None
        try:
            data: _StoreFile = pickle.loads(payload)
            if getattr(data, "schema", None) == SCHEMA_VERSION:
                return data
        except Exception:  # fail-open: a corrupt store is an empty one
            pass
        return None

    def _load(self) -> None:
        data = self._read_file()
        self._entries = dict(data.entries) if data is not None else {}

    # ------------------------------------------------------------------

    @staticmethod
    def entry_key(func_name: str, kind: str, closure_fp: str,
                  ctx: Tuple[str, ...], args: Tuple[SerTaint, ...]) -> str:
        return combine([
            f"func={func_name}",
            f"kind={kind}",
            f"closure={closure_fp}",
            f"ctx={ctx!r}",
            f"args={args!r}",
        ])

    def lookup(self, key: str) -> Optional[BodyRecord]:
        return self._entries.get(key)

    def stage(self, key: str, record: BodyRecord) -> None:
        self._staged[key] = record

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Merge staged records into the file (atomic replace)."""
        if not self._staged:
            return
        current = self._read_file() or _StoreFile()
        current.entries.update(self._staged)
        try:
            payload = pickle.dumps(current,
                                   protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return
        try:
            directory = os.path.dirname(self.path) or "."
            os.makedirs(directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as f:
                    f.write(seal(payload))
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return
        self._entries.update(self._staged)
        self._staged.clear()
