"""Parallel batch analysis of independent programs, supervised.

Whole programs are the natural parallel grain for SafeFlow: each job
(a corpus system, a generated scaling program, a user translation
unit set) is analyzed in complete isolation, so fanning jobs across a
:class:`~concurrent.futures.ProcessPoolExecutor` needs no shared state
beyond the on-disk caches, which are multi-process safe by design
(atomic replace writes, checksum-validated reads).

One worker process analyzes one job end to end and ships the rendered
:class:`~repro.core.results.AnalysisReport` back — reports are plain
frozen dataclasses and pickle cheaply. A job that raises is reported as
a failed :class:`BatchResult` without disturbing its siblings; a job
that exceeds ``timeout`` seconds is reported as timed out.

Crash isolation (:mod:`repro.resilience`): the driver keeps at most
one dispatched future per worker slot, so when a worker dies and
``BrokenProcessPool`` fails every outstanding future, the in-flight
set *is* the suspect set. The executor is rebuilt transparently,
completed results are kept, and suspects are re-run one at a time —
isolation makes a repeat crash unambiguous — until a job has crashed
``max_crashes`` times (default 2) and is quarantined with a structured
``worker_crashed`` result. One crash therefore costs one re-run (or,
for a genuinely poisoned input, one result), never the batch.

Resource guards: per-worker ``setrlimit`` caps and the in-analysis
deadline (:mod:`repro.resilience.guards`) are applied by the worker
entry point; a per-job ``timeout`` automatically arms the worker-side
deadline so runaway analyses abort *inside* the worker with a
``resource_exhausted``/timeout result instead of squatting on a slot.

``max_workers=1`` (or a single job) runs inline in the calling process
— the degenerate case doubles as the escape hatch (``--jobs 1``) and
keeps single-job semantics identical to :meth:`SafeFlow.analyze_files`.

Platform robustness: worker processes prefer the cheap ``fork`` start
method, fall back to ``spawn`` where ``fork`` does not exist, and fall
all the way back to in-process sequential execution when no process
pool can be created at all (:func:`resolve_mp_context` /
:func:`run_batch`). The analysis service
(:mod:`repro.server.pool`) reuses the same resolution.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import multiprocessing
import time
import traceback
from collections import deque
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class BatchJob:
    """One independent analysis unit."""

    name: str
    files: Sequence[str]
    include_dirs: Sequence[str] = ()
    defines: Optional[Dict[str, str]] = None


@dataclass
class BatchResult:
    """Outcome of one job: exactly one of ``report`` / ``error`` set.

    ``error`` is a single structured line (``ExcType: message``) fit
    for terminal output and JSON payloads; ``detail`` carries the full
    traceback for post-mortems and is never printed by the CLI's
    human-readable path. ``code`` classifies failures for machine
    consumers: ``analysis_failed``, ``timeout``, ``worker_crashed``,
    or ``resource_exhausted``. ``duration`` is measured per job (from
    this job's dispatch/start), never from the batch start.
    """

    name: str
    report: Optional[object] = None
    error: Optional[str] = None
    detail: Optional[str] = None
    duration: float = 0.0
    code: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class BatchOutcome:
    """Ordered per-job results plus whole-batch wall-clock.

    ``worker_restarts`` counts executor rebuilds after worker crashes;
    ``quarantined`` lists (in job order) the jobs resolved as
    ``worker_crashed`` after repeated crashes.
    """

    results: List[BatchResult] = field(default_factory=list)
    wall_time: float = 0.0
    worker_restarts: int = 0
    quarantined: List[str] = field(default_factory=list)
    #: jobs whose results were replayed from a batch journal instead of
    #: re-run (``safeflow batch --resume``)
    resumed_jobs: int = 0
    #: torn/corrupt journal tail records truncated during replay
    journal_truncated_records: int = 0

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)


def _run_job(job: BatchJob, config, guards=None) -> BatchResult:
    """Worker entry point; must stay module-level for pickling."""
    from ..core.driver import SafeFlow
    from ..errors import ResourceExhaustedError
    from ..resilience import worker_harness

    start = time.perf_counter()
    try:
        with worker_harness(job.name, guards):
            overrides = {}
            if job.include_dirs:
                overrides["include_dirs"] = tuple(job.include_dirs)
            if job.defines:
                overrides["defines"] = dict(job.defines)
            job_config = dataclasses.replace(config, **overrides)
            report = SafeFlow(job_config).analyze_files(
                list(job.files), name=job.name
            )
        return BatchResult(
            name=job.name,
            report=report,
            duration=time.perf_counter() - start,
        )
    except ResourceExhaustedError as exc:
        duration = time.perf_counter() - start
        if exc.kind == "deadline":
            return BatchResult(
                name=job.name, code="timeout",
                error=f"timed out after {duration:.1f}s "
                      f"(in-analysis deadline)",
                duration=duration,
            )
        return BatchResult(
            name=job.name, code="resource_exhausted",
            error=f"resource exhausted ({exc.kind}): {exc}",
            duration=duration,
        )
    except MemoryError:
        return BatchResult(
            name=job.name, code="resource_exhausted",
            error="resource exhausted (rss): analysis ran out of memory",
            duration=time.perf_counter() - start,
        )
    except Exception as exc:
        return BatchResult(
            name=job.name,
            code="analysis_failed",
            error=f"{type(exc).__name__}: {exc}",
            detail=traceback.format_exc(limit=8),
            duration=time.perf_counter() - start,
        )


def resolve_mp_context(prefer: str = "fork"):
    """Best available multiprocessing context, or ``None``.

    Tries ``prefer`` (default ``fork``: cheap worker start, no
    re-import), then ``spawn``, then the platform default. ``None``
    means no usable context — callers must run in-process.
    """
    for method in (prefer, "spawn"):
        try:
            return multiprocessing.get_context(method)
        except ValueError:
            continue
    try:  # pragma: no cover - every supported platform has a default
        return multiprocessing.get_context()
    except Exception:  # pragma: no cover
        return None


def _aborted_result(job: BatchJob) -> BatchResult:
    return BatchResult(
        name=job.name, code="aborted",
        error="aborted: an earlier job failed (--fail-fast)",
    )


def _run_sequential(outcome: BatchOutcome, jobs: Sequence[BatchJob],
                    config, start: float, guards=None,
                    fail_fast: bool = False,
                    on_result=None) -> BatchOutcome:
    stopped = False
    for job in jobs:
        if stopped:
            outcome.results.append(_aborted_result(job))
            continue
        result = _run_job(job, config, guards)
        outcome.results.append(result)
        if on_result is not None:
            on_result(len(outcome.results) - 1, result)
        if fail_fast and not result.ok:
            stopped = True
    outcome.wall_time = time.perf_counter() - start
    return outcome


def _effective_guards(guards, timeout: Optional[float]):
    """Fold the per-job ``timeout`` into the worker-side deadline."""
    from ..resilience import ResourceGuards

    if guards is None:
        guards = ResourceGuards()
    return guards.with_deadline(timeout)


def run_batch(
    jobs: Sequence[BatchJob],
    config,
    max_workers: int = 1,
    timeout: Optional[float] = None,
    guards=None,
    max_crashes: int = 2,
    fail_fast: bool = False,
    on_result=None,
) -> BatchOutcome:
    """Analyze ``jobs`` with up to ``max_workers`` processes.

    Results come back in job order regardless of completion order. A
    per-job ``timeout`` (seconds, measured from each job's dispatch)
    turns a straggler into a timed-out result; completed siblings are
    unaffected. ``guards`` caps each worker's CPU/RSS and arms the
    in-analysis deadline; ``max_crashes`` is the quarantine threshold
    of the crash supervision (see the module docstring).

    ``fail_fast`` stops dispatching after the first failed job; jobs
    never dispatched come back as ``aborted`` results. ``on_result``
    is invoked as ``on_result(index, result)`` the moment a job's
    result settles (in completion order, not job order), for every job
    that actually executed — never for aborted ones. The batch journal
    uses it for incremental durability: a batch killed mid-run keeps
    every result that reached the callback.
    """
    from ..resilience import SupervisedExecutor

    start = time.perf_counter()
    outcome = BatchOutcome()
    if not jobs:
        return outcome
    guards = _effective_guards(guards, timeout)

    if max_workers <= 1 or len(jobs) == 1:
        return _run_sequential(outcome, jobs, config, start, guards,
                               fail_fast, on_result)

    # fork keeps worker start cheap; the analyzer holds no threads or
    # open handles at this point that fork could corrupt. Platforms
    # without fork get spawn; platforms where no pool can be created
    # at all (sandboxes forbidding process creation) run sequentially.
    supervisor = SupervisedExecutor(max_workers=min(max_workers, len(jobs)))
    if not supervisor.available:
        supervisor.shutdown()
        return _run_sequential(outcome, jobs, config, start, guards,
                               fail_fast, on_result)
    abandoned = False
    try:
        abandoned = _run_supervised(
            outcome, jobs, config, supervisor, timeout, guards, max_crashes,
            fail_fast, on_result,
        )
    finally:
        # an abandoned (timed-out but still running) future would make
        # a waiting shutdown block on the straggler; let it finish in
        # the background instead — its result is discarded anyway
        supervisor.shutdown(wait=not abandoned, cancel_futures=True)
    outcome.wall_time = time.perf_counter() - start
    return outcome


def _run_supervised(outcome: BatchOutcome, jobs: Sequence[BatchJob],
                    config, supervisor, timeout: Optional[float],
                    guards, max_crashes: int,
                    fail_fast: bool = False, on_result=None) -> bool:
    """The supervised dispatch loop; returns True when futures were
    abandoned (timed out while running)."""
    from ..resilience import CrashLedger

    ledger = CrashLedger(max_crashes)
    results: Dict[int, BatchResult] = {}
    pending: "deque[Tuple[int, BatchJob]]" = deque(enumerate(jobs))
    suspects: "deque[Tuple[int, BatchJob]]" = deque()
    # future -> (index, job, dispatched_at, generation)
    inflight: Dict[concurrent.futures.Future, Tuple] = {}
    abandoned = False
    stopping = False  # fail-fast tripped: drain in-flight, dispatch none

    def settle(index: int, result: BatchResult) -> None:
        nonlocal stopping
        results[index] = result
        if on_result is not None:
            on_result(index, result)
        if fail_fast and not result.ok:
            stopping = True

    def dispatch(item) -> None:
        index, job = item
        try:
            generation, future = supervisor.submit(
                _run_job, job, config, guards
            )
        except RuntimeError:
            # no pool can be (re)built anymore: run inline
            settle(index, _run_job(job, config, guards))
            return
        inflight[future] = (index, job, time.perf_counter(), generation)

    def settle_crash(index, job, dispatched_at) -> None:
        key = f"{index}:{job.name}"
        crashes = ledger.record(key)
        if crashes >= max_crashes:
            settle(index, BatchResult(
                name=job.name, code="worker_crashed",
                error=f"worker crashed {crashes} times running this "
                      f"job; quarantined",
                duration=time.perf_counter() - dispatched_at,
            ))
            outcome.quarantined.append(job.name)
        else:
            suspects.append((index, job))

    while pending or suspects or inflight:
        if stopping and not inflight:
            break
        if not stopping:
            while (not stopping and pending
                   and len(inflight) < supervisor.max_workers):
                dispatch(pending.popleft())
            if not inflight and not pending and suspects:
                # isolation: exactly one suspect in flight, so a repeat
                # crash is attributed unambiguously
                dispatch(suspects.popleft())
        if not inflight:
            continue

        wait_timeout = None
        if timeout is not None:
            now = time.perf_counter()
            nearest = min(t for (_, _, t, _) in inflight.values())
            wait_timeout = max(0.0, min(nearest + timeout - now, 0.5))
        done, _ = concurrent.futures.wait(
            list(inflight), timeout=wait_timeout,
            return_when=concurrent.futures.FIRST_COMPLETED,
        )

        broken_generation = None
        for future in done:
            index, job, dispatched_at, generation = inflight.pop(future)
            try:
                settle(index, future.result())
            except BrokenProcessPool:
                broken_generation = generation
                settle_crash(index, job, dispatched_at)
            except concurrent.futures.CancelledError:
                pending.appendleft((index, job))  # never started: retry
            except Exception as exc:  # future raised something odd
                settle(index, BatchResult(
                    name=job.name, code="worker_crashed",
                    error=f"worker failed: {exc!r}",
                    duration=time.perf_counter() - dispatched_at,
                ))
        if broken_generation is not None:
            # the break dooms every other in-flight future too; drain
            # them now so their jobs are recorded as suspects exactly
            # once, then rebuild the executor
            for future, (index, job, dispatched_at, _gen) in list(
                    inflight.items()):
                try:
                    settle(index, future.result(timeout=10.0))
                except BrokenProcessPool:
                    settle_crash(index, job, dispatched_at)
                except concurrent.futures.CancelledError:
                    pending.appendleft((index, job))
                except concurrent.futures.TimeoutError:
                    # still unresolved after the pool broke: merely
                    # slow, not provably crashed (its worker may have
                    # been healthy when the break was flagged). Re-run
                    # it in isolation without a ledger mark so a slow
                    # innocent is never crash-attributed.
                    suspects.append((index, job))
                except Exception as exc:
                    settle(index, BatchResult(
                        name=job.name, code="worker_crashed",
                        error=f"worker failed: {exc!r}",
                        duration=time.perf_counter() - dispatched_at,
                    ))
            inflight.clear()
            if supervisor.notify_broken(broken_generation):
                outcome.worker_restarts += 1

        if timeout is not None:
            now = time.perf_counter()
            for future, (index, job, dispatched_at, _gen) in list(
                    inflight.items()):
                if now - dispatched_at < timeout:
                    continue
                if not future.cancel():
                    abandoned = True  # running: the worker-side
                    # deadline (armed from ``timeout``) will abort it
                del inflight[future]
                settle(index, BatchResult(
                    name=job.name, code="timeout",
                    error=f"timed out after {timeout:.1f}s",
                    duration=now - dispatched_at,
                ))

    # fail-fast: everything never dispatched is reported as aborted
    for index, job in list(pending) + list(suspects):
        if index not in results:
            results[index] = _aborted_result(job)
    outcome.results.extend(results[i] for i in range(len(jobs)))
    return abandoned
