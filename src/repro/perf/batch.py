"""Parallel batch analysis of independent programs.

Whole programs are the natural parallel grain for SafeFlow: each job
(a corpus system, a generated scaling program, a user translation
unit set) is analyzed in complete isolation, so fanning jobs across a
:class:`~concurrent.futures.ProcessPoolExecutor` needs no shared state
beyond the on-disk caches, which are multi-process safe by design
(atomic replace writes, validate-on-read).

One worker process analyzes one job end to end and ships the rendered
:class:`~repro.core.results.AnalysisReport` back — reports are plain
frozen dataclasses and pickle cheaply. A job that raises is reported as
a failed :class:`BatchResult` without disturbing its siblings; a job
that exceeds ``timeout`` seconds is reported as timed out.

``max_workers=1`` (or a single job) runs inline in the calling process
— the degenerate case doubles as the escape hatch (``--jobs 1``) and
keeps single-job semantics identical to :meth:`SafeFlow.analyze_files`.

Platform robustness: worker processes prefer the cheap ``fork`` start
method, fall back to ``spawn`` where ``fork`` does not exist, and fall
all the way back to in-process sequential execution when no process
pool can be created at all (:func:`resolve_mp_context` /
:func:`run_batch`). The analysis service
(:mod:`repro.server.pool`) reuses the same resolution.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class BatchJob:
    """One independent analysis unit."""

    name: str
    files: Sequence[str]
    include_dirs: Sequence[str] = ()
    defines: Optional[Dict[str, str]] = None


@dataclass
class BatchResult:
    """Outcome of one job: exactly one of ``report`` / ``error`` set.

    ``error`` is a single structured line (``ExcType: message``) fit
    for terminal output and JSON payloads; ``detail`` carries the full
    traceback for post-mortems and is never printed by the CLI's
    human-readable path.
    """

    name: str
    report: Optional[object] = None
    error: Optional[str] = None
    detail: Optional[str] = None
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class BatchOutcome:
    """Ordered per-job results plus whole-batch wall-clock."""

    results: List[BatchResult] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)


def _run_job(job: BatchJob, config) -> BatchResult:
    """Worker entry point; must stay module-level for pickling."""
    from ..core.driver import SafeFlow

    start = time.perf_counter()
    try:
        overrides = {}
        if job.include_dirs:
            overrides["include_dirs"] = tuple(job.include_dirs)
        if job.defines:
            overrides["defines"] = dict(job.defines)
        job_config = dataclasses.replace(config, **overrides)
        report = SafeFlow(job_config).analyze_files(
            list(job.files), name=job.name
        )
        return BatchResult(
            name=job.name,
            report=report,
            duration=time.perf_counter() - start,
        )
    except Exception as exc:
        return BatchResult(
            name=job.name,
            error=f"{type(exc).__name__}: {exc}",
            detail=traceback.format_exc(limit=8),
            duration=time.perf_counter() - start,
        )


def resolve_mp_context(prefer: str = "fork"):
    """Best available multiprocessing context, or ``None``.

    Tries ``prefer`` (default ``fork``: cheap worker start, no
    re-import), then ``spawn``, then the platform default. ``None``
    means no usable context — callers must run in-process.
    """
    for method in (prefer, "spawn"):
        try:
            return multiprocessing.get_context(method)
        except ValueError:
            continue
    try:  # pragma: no cover - every supported platform has a default
        return multiprocessing.get_context()
    except Exception:  # pragma: no cover
        return None


def _run_sequential(outcome: BatchOutcome, jobs: Sequence[BatchJob],
                    config, start: float) -> BatchOutcome:
    for job in jobs:
        outcome.results.append(_run_job(job, config))
    outcome.wall_time = time.perf_counter() - start
    return outcome


def run_batch(
    jobs: Sequence[BatchJob],
    config,
    max_workers: int = 1,
    timeout: Optional[float] = None,
) -> BatchOutcome:
    """Analyze ``jobs`` with up to ``max_workers`` processes.

    Results come back in job order regardless of completion order. A
    per-job ``timeout`` (seconds) turns a straggler into a timed-out
    result; completed siblings are unaffected.
    """
    start = time.perf_counter()
    outcome = BatchOutcome()
    if not jobs:
        return outcome

    if max_workers <= 1 or len(jobs) == 1:
        return _run_sequential(outcome, jobs, config, start)

    # fork keeps worker start cheap; the analyzer holds no threads or
    # open handles at this point that fork could corrupt. Platforms
    # without fork get spawn; platforms where no pool can be created
    # at all (sandboxes forbidding process creation) run sequentially.
    mp_context = resolve_mp_context()
    if mp_context is None:
        return _run_sequential(outcome, jobs, config, start)
    try:
        pool_cm = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(max_workers, len(jobs)),
            mp_context=mp_context,
        )
    except (OSError, PermissionError, ValueError):
        return _run_sequential(outcome, jobs, config, start)

    with pool_cm as pool:
        futures = [pool.submit(_run_job, job, config) for job in jobs]
        deadline = None if timeout is None else start + timeout
        for job, future in zip(jobs, futures):
            try:
                remaining = None
                if deadline is not None:
                    remaining = max(0.0, deadline - time.perf_counter())
                outcome.results.append(future.result(timeout=remaining))
            except concurrent.futures.TimeoutError:
                future.cancel()
                outcome.results.append(BatchResult(
                    name=job.name,
                    error=f"timed out after {timeout:.1f}s",
                    duration=time.perf_counter() - start,
                ))
            except Exception as exc:  # worker died (e.g. OOM kill)
                outcome.results.append(BatchResult(
                    name=job.name,
                    error=f"worker failed: {exc!r}",
                    duration=time.perf_counter() - start,
                ))
    outcome.wall_time = time.perf_counter() - start
    return outcome
