"""Content-hash-keyed on-disk cache for front-ended programs.

The front end (preprocess → pycparser → lower → SSA → verify) is the
dominant cost of re-analyzing an unchanged translation unit, and it is
a pure function of the input bytes plus a handful of config knobs. This
cache pickles the finished :class:`repro.frontend.driver.Program` keyed
by:

- the schema version and pycparser version;
- the given paths (diagnostics embed the path strings, so the same
  bytes under another name is a different program) or the literal
  source text for :func:`load_source`;
- the content hash of every top-level input file;
- the preprocessor ``defines``, the include directories, and the
  ``verify`` flag.

``#include`` dependencies cannot be known before preprocessing, so
they are handled by *validation* instead of keying: each entry records
the content hash of every file the preprocessor actually read, and a
lookup whose recorded dependencies no longer hash-match is a miss.

Failures are never fatal: any OS, pickle, or recursion error turns
into a cache miss (or a skipped store) and the caller re-parses. Writes
go through a temp file + :func:`os.replace` so concurrent batch
workers sharing one cache directory can never observe a torn entry,
and every entry carries the checksum frame of
:mod:`repro.perf.integrity`: a damaged entry (bit rot, partial disk
write) is detected before it reaches ``pickle``, evicted, counted in
``integrity_evictions``, and recomputed silently.
"""

from __future__ import annotations

import os
import pickle
import sys
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .fingerprint import SCHEMA_VERSION, combine, file_digest, text_digest
from .integrity import IntegrityError, seal, unseal

#: deep IR/AST object graphs need headroom beyond the default 1000
_PICKLE_RECURSION_LIMIT = 100_000


def _pycparser_version() -> str:
    try:
        import pycparser

        return getattr(pycparser, "__version__", "?")
    except Exception:  # pragma: no cover - pycparser is a hard dep
        return "?"


@dataclass
class CacheEntry:
    """One pickled program plus the inputs it was built from."""

    #: [(path, content-hash)] for every real file the front end read
    deps: List[Tuple[str, str]]
    program_blob: bytes


class IRCache:
    """Directory-backed store of front-ended programs."""

    def __init__(self, directory: str):
        self.directory = os.path.join(directory, "ir")
        self.hits = 0
        self.misses = 0
        self.integrity_evictions = 0

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------

    def key_for_files(
        self,
        paths: Sequence[str],
        include_dirs: Sequence[str],
        defines: Optional[Dict[str, str]],
        verify: bool,
        recover: bool = False,
    ) -> Optional[str]:
        parts = [
            f"schema={SCHEMA_VERSION}",
            f"pycparser={_pycparser_version()}",
            f"include_dirs={tuple(include_dirs)!r}",
            f"defines={sorted((defines or {}).items())!r}",
            f"verify={verify}",
            f"recover={recover}",
        ]
        for path in paths:
            digest = file_digest(path)
            if digest is None:
                return None
            parts.append(f"file={path}:{digest}")
        return combine(parts)

    def key_for_source(
        self,
        text: str,
        filename: str,
        defines: Optional[Dict[str, str]],
        verify: bool,
        recover: bool = False,
    ) -> str:
        return combine([
            f"schema={SCHEMA_VERSION}",
            f"pycparser={_pycparser_version()}",
            f"defines={sorted((defines or {}).items())!r}",
            f"verify={verify}",
            f"recover={recover}",
            f"filename={filename}",
            f"text={text_digest(text)}",
        ])

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.pkl")

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------

    def _evict(self, path: str) -> None:
        """Remove a checksum-failed entry so it is rebuilt, not re-read."""
        self.integrity_evictions += 1
        try:
            os.unlink(path)
        except OSError:
            pass

    def fetch(self, key: Optional[str]):
        """The cached Program for ``key``, or ``None`` on any miss."""
        if key is None:
            self.misses += 1
            return None
        path = self._path(key)
        try:
            with open(path, "rb") as f:
                raw = f.read()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = unseal(raw)
        except IntegrityError:
            # damaged (or pre-checksum legacy) entry: evict + recompute
            self._evict(path)
            self.misses += 1
            return None
        try:
            # fail-open on *anything*: a checksum-valid but schema-
            # skewed entry can raise nearly any exception out of
            # pickle, and a malformed one can fail attribute access /
            # unpacking below
            entry: CacheEntry = pickle.loads(payload)
            stale = any(file_digest(dep_path) != digest
                        for dep_path, digest in entry.deps)
            blob = entry.program_blob
        except Exception:
            self.misses += 1
            return None
        if stale:
            self.misses += 1
            return None
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, _PICKLE_RECURSION_LIMIT))
        try:
            program = pickle.loads(blob)
        except Exception:
            self.misses += 1
            return None
        finally:
            sys.setrecursionlimit(old_limit)
        self.hits += 1
        return program

    def store(self, key: Optional[str], program) -> bool:
        """Pickle ``program`` under ``key``; False when not cacheable."""
        if key is None:
            return False
        deps: List[Tuple[str, str]] = []
        seen = set()
        for unit in program.units:
            for path in getattr(unit.source, "files", []):
                if path in seen or not os.path.isfile(path):
                    continue
                seen.add(path)
                digest = file_digest(path)
                if digest is None:
                    return False
                deps.append((path, digest))
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, _PICKLE_RECURSION_LIMIT))
        try:
            blob = pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        finally:
            sys.setrecursionlimit(old_limit)
        entry = CacheEntry(deps=deps, program_blob=blob)
        try:
            payload = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as f:
                    f.write(seal(payload))
                os.replace(tmp, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        return True
