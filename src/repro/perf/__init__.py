"""Performance layer: content-hashed caching + parallel batch driver.

Three cooperating pieces, all strictly behavior-preserving (every
cached or parallel path renders a report byte-identical to the
sequential cold path):

- :class:`IRCache` — on-disk cache of front-ended programs keyed by
  input content hashes + front-end config (:mod:`repro.perf.ircache`);
- :class:`SummaryStore` — persistent ESP-summary records keyed by
  transitive IR fingerprints, replayed with full validation
  (:mod:`repro.perf.summary_store`);
- :func:`run_batch` — process-parallel fan-out over independent
  programs with crash supervision (:mod:`repro.perf.batch`,
  :mod:`repro.resilience`);
- :func:`seal` / :func:`unseal` — the checksum frame every on-disk
  cache entry carries, so torn or rotted entries are evicted and
  recomputed instead of trusted (:mod:`repro.perf.integrity`);
- :class:`BatchJournal` / :func:`run_journaled` — durable batch
  checkpoint/resume over an append-only, checksum-framed WAL
  (:mod:`repro.perf.journal`).
"""

from .batch import (
    BatchJob,
    BatchOutcome,
    BatchResult,
    resolve_mp_context,
    run_batch,
)
from .fingerprint import (
    SCHEMA_VERSION,
    config_fingerprint,
    file_digest,
    function_fingerprint,
    FlowFingerprints,
    text_digest,
)
from .integrity import IntegrityError, seal, unseal
from .ircache import IRCache
from .journal import BatchJournal, JournalReplay, job_fingerprint, run_journaled
from .summary_store import BodyRecord, BodyRecorder, CellNamer, SummaryStore

__all__ = [
    "BatchJob",
    "BatchJournal",
    "BatchOutcome",
    "BatchResult",
    "BodyRecord",
    "BodyRecorder",
    "CellNamer",
    "FlowFingerprints",
    "IRCache",
    "IntegrityError",
    "JournalReplay",
    "SCHEMA_VERSION",
    "SummaryStore",
    "config_fingerprint",
    "file_digest",
    "function_fingerprint",
    "job_fingerprint",
    "resolve_mp_context",
    "run_batch",
    "run_journaled",
    "seal",
    "text_digest",
    "unseal",
]
