"""Pause the cyclic garbage collector around the analysis pipeline.

The analysis allocates heavily and briefly: IR instructions, interned
taints, compiled-kernel opcode tuples. CPython's generational collector
reacts to that allocation burst by running collections mid-phase, and
on the bench workloads those pauses account for 20-30% of wall time
(they also land unpredictably inside whatever phase happens to be
running, skewing per-phase timings). Almost none of it is garbage: the
IR and the programs stay live until the report is built.

:func:`gc_paused` disables collection for the duration of a pipeline
run and reclaims the cyclic garbage created while paused (IR
functions, blocks and instructions reference each other) once the
*last* active pipeline exits. The guard is re-entrant and thread-safe
— the driver's entry points nest, and the analysis daemon runs
pipelines concurrently. If the embedding application already disabled
gc, the guard leaves it disabled on exit.

Collection on exit is *amortized* for high-request-rate serving: a
full ``gc.collect()`` scans every live object (the interpreter, the
loaded corpus, pycparser's tables) and costs milliseconds even when
the run allocated almost nothing — on the fleet's warm trivial
requests it was ~60% of per-request latency. Because gc stays
disabled while paused, everything a run allocates sits in generation
0, so a generation-0 collection reclaims that run's cyclic garbage at
a cost proportional to the run, not the heap. Cycles whose members
were already promoted (long-lived caches) are rarer and are caught by
a periodic full collection every :data:`FULL_COLLECT_INTERVAL`
seconds. One-shot CLI runs behave as before: the very first exit is
always past the interval, so it performs the full collection.
"""

from __future__ import annotations

import gc
import threading
import time
from contextlib import contextmanager

_LOCK = threading.Lock()
_DEPTH = 0
_WE_DISABLED = False
#: monotonic time of the last full (all-generations) exit collection;
#: 0.0 means "never", so a process's first guarded run collects fully
_LAST_FULL = 0.0

#: seconds between full exit collections; generation-0 collections
#: (proportional to the run's own allocations) cover the gaps
FULL_COLLECT_INTERVAL = 5.0


@contextmanager
def gc_paused(active: bool = True):
    """Context manager: pause gc while any guarded region is active.

    ``active=False`` makes it a no-op, so call sites can pass the
    config knob straight through.
    """
    global _DEPTH, _WE_DISABLED, _LAST_FULL
    if not active:
        yield
        return
    with _LOCK:
        _DEPTH += 1
        if _DEPTH == 1:
            _WE_DISABLED = gc.isenabled()
            if _WE_DISABLED:
                gc.disable()
    try:
        yield
    finally:
        full = False
        with _LOCK:
            _DEPTH -= 1
            reenable = _DEPTH == 0 and _WE_DISABLED
            if reenable:
                _WE_DISABLED = False
                now = time.monotonic()
                if now - _LAST_FULL >= FULL_COLLECT_INTERVAL:
                    _LAST_FULL = now
                    full = True
        if reenable:
            gc.enable()
            if full:
                gc.collect()
            else:
                gc.collect(0)
