"""Pause the cyclic garbage collector around the analysis pipeline.

The analysis allocates heavily and briefly: IR instructions, interned
taints, compiled-kernel opcode tuples. CPython's generational collector
reacts to that allocation burst by running collections mid-phase, and
on the bench workloads those pauses account for 20-30% of wall time
(they also land unpredictably inside whatever phase happens to be
running, skewing per-phase timings). Almost none of it is garbage: the
IR and the programs stay live until the report is built.

:func:`gc_paused` disables collection for the duration of a pipeline
run and does one full collection afterwards to reclaim the cyclic
garbage (IR functions, blocks and instructions reference each other)
created while paused. The guard is re-entrant and thread-safe — the
driver's entry points nest, and the analysis daemon runs pipelines
concurrently — so collection resumes only when the *last* active
pipeline exits. If the embedding application already disabled gc, the
guard leaves it disabled on exit.
"""

from __future__ import annotations

import gc
import threading
from contextlib import contextmanager

_LOCK = threading.Lock()
_DEPTH = 0
_WE_DISABLED = False


@contextmanager
def gc_paused(active: bool = True):
    """Context manager: pause gc while any guarded region is active.

    ``active=False`` makes it a no-op, so call sites can pass the
    config knob straight through.
    """
    global _DEPTH, _WE_DISABLED
    if not active:
        yield
        return
    with _LOCK:
        _DEPTH += 1
        if _DEPTH == 1:
            _WE_DISABLED = gc.isenabled()
            if _WE_DISABLED:
                gc.disable()
    try:
        yield
    finally:
        with _LOCK:
            _DEPTH -= 1
            reenable = _DEPTH == 0 and _WE_DISABLED
            if reenable:
                _WE_DISABLED = False
        if reenable:
            gc.enable()
            gc.collect()
