"""SafeFlow — static analysis to enforce safe value flow in embedded
control systems.

Reproduction of Kowshik, Roşu & Sha, DSN 2006. The package provides:

- :mod:`repro.frontend` — C front end (mini preprocessor, SafeFlow
  annotation extraction, pycparser, AST→IR lowering);
- :mod:`repro.ir` — typed SSA intermediate representation;
- :mod:`repro.callgraph`, :mod:`repro.pointer` — call graph and
  points-to substrates;
- :mod:`repro.shm` — phase 1: shared-memory pointer identification;
- :mod:`repro.restrictions` — phase 2: language rules P1–P3, A1, A2;
- :mod:`repro.valueflow` — phase 3: unsafe value propagation and
  critical-data checking;
- :mod:`repro.core` — the :class:`~repro.core.driver.SafeFlow` facade;
- :mod:`repro.simplex`, :mod:`repro.runtime` — Simplex-architecture
  simulation substrate (plants, controllers, Lyapunov monitors);
- :mod:`repro.corpus` — the three evaluation systems of Table 1.

Quickstart::

    from repro import SafeFlow
    report = SafeFlow().analyze_source(c_source_text)
    for diag in report.diagnostics:
        print(diag)
"""

from .core.config import AnalysisConfig
from .core.driver import SafeFlow
from .core.results import AnalysisReport

__version__ = "1.0.0"

__all__ = ["AnalysisConfig", "AnalysisReport", "SafeFlow", "__version__"]
