"""The Table 1 evaluation corpus and the synthetic program generator."""

from .builder import (
    GeneratedProgram,
    GeneratedProgramFiles,
    generate_core,
    generate_core_files,
)
from .loader import (
    CorpusSystem,
    PaperRow,
    SYSTEM_KEYS,
    SYSTEMS_DIR,
    load_all,
    load_system,
)

__all__ = [
    "CorpusSystem",
    "GeneratedProgram",
    "GeneratedProgramFiles",
    "generate_core",
    "generate_core_files",
    "PaperRow",
    "SYSTEM_KEYS",
    "SYSTEMS_DIR",
    "load_all",
    "load_system",
]
