"""The Table 1 evaluation corpus and the synthetic program generator."""

from .builder import GeneratedProgram, generate_core
from .loader import (
    CorpusSystem,
    PaperRow,
    SYSTEM_KEYS,
    SYSTEMS_DIR,
    load_all,
    load_system,
)

__all__ = [
    "CorpusSystem",
    "GeneratedProgram",
    "generate_core",
    "PaperRow",
    "SYSTEM_KEYS",
    "SYSTEMS_DIR",
    "load_all",
    "load_system",
]
