"""Loader for the three evaluation systems of Table 1.

Each bundled system mirrors one row of the paper's evaluation:

- ``ip`` — the inverted pendulum Simplex controller (the running
  example of Figures 1–3);
- ``generic_simplex`` — the configurable Simplex implementation for
  simple plants;
- ``double_ip`` — the double inverted pendulum controller (newer,
  less mature, extra control modes).

The original UIUC systems are proprietary; these are reimplementations
that exhibit the same five erroneous value dependencies, the same
error *classes* (§4), and the same annotation structure, so the
analysis exercises the code paths the paper describes. The paper's own
Table 1 numbers are carried as :class:`PaperRow` for side-by-side
comparison in ``benchmarks/bench_table1.py``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..core.config import AnalysisConfig
from ..core.driver import SafeFlow, _count_loc
from ..core.results import AnalysisReport
from ..errors import CorpusError

SYSTEMS_DIR = Path(__file__).resolve().parent / "systems"


@dataclass(frozen=True)
class PaperRow:
    """One row of the paper's Table 1."""

    loc_total: int
    loc_core: int
    source_changes_lines: int
    source_changes_diff: int
    source_changes_functions: int
    annotation_lines: int
    init_annotation_lines: int
    error_dependencies: int
    warnings: int
    false_positives: int


@dataclass
class CorpusSystem:
    """A bundled evaluation system."""

    key: str
    title: str
    directory: Path
    core_files: List[Path]
    noncore_files: List[Path]
    original_files: List[Path]
    paper: PaperRow
    #: error classes the paper reports for this system (§4 prose)
    expected_error_classes: List[str] = field(default_factory=list)

    @property
    def all_files(self) -> List[Path]:
        return self.core_files + self.noncore_files

    def loc_core(self) -> int:
        return sum(_count_loc(p.read_text()) for p in self.core_files)

    def loc_total(self) -> int:
        return sum(_count_loc(p.read_text()) for p in self.all_files)

    def analyze(self, config: Optional[AnalysisConfig] = None) -> AnalysisReport:
        """Run SafeFlow on the system's core component."""
        analyzer = SafeFlow(config)
        report = analyzer.analyze_files(
            [str(p) for p in self.core_files], name=self.key
        )
        report.stats.loc_total = self.loc_total()
        return report


_PAPER_ROWS: Dict[str, PaperRow] = {
    "ip": PaperRow(
        loc_total=7079, loc_core=820,
        source_changes_lines=7, source_changes_diff=86,
        source_changes_functions=1,
        annotation_lines=11, init_annotation_lines=9,
        error_dependencies=1, warnings=7, false_positives=2,
    ),
    "generic_simplex": PaperRow(
        loc_total=8057, loc_core=1020,
        source_changes_lines=0, source_changes_diff=0,
        source_changes_functions=0,
        annotation_lines=22, init_annotation_lines=15,
        error_dependencies=2, warnings=7, false_positives=6,
    ),
    "double_ip": PaperRow(
        loc_total=7188, loc_core=929,
        source_changes_lines=7, source_changes_diff=88,
        source_changes_functions=1,
        annotation_lines=23, init_annotation_lines=15,
        error_dependencies=2, warnings=8, false_positives=2,
    ),
}

_TITLES = {
    "ip": "IP (inverted pendulum Simplex controller)",
    "generic_simplex": "Generic Simplex",
    "double_ip": "Double IP",
}

_ERROR_CLASSES = {
    "ip": ["kill-pid"],
    "generic_simplex": ["kill-pid", "feedback-readback"],
    "double_ip": ["kill-pid", "invalid-no-propagation-assumption"],
}

_DIR_NAMES = {
    "ip": "ip_controller",
    "generic_simplex": "generic_simplex",
    "double_ip": "double_ip",
}

SYSTEM_KEYS = tuple(_PAPER_ROWS.keys())


def _collect(directory: Path, sub: str) -> List[Path]:
    base = directory / sub
    if not base.is_dir():
        return []
    return sorted(
        p for p in base.iterdir() if p.suffix in (".c", ".h")
    )


def load_system(key: str) -> CorpusSystem:
    """Load one bundled system by key (``ip`` / ``generic_simplex`` /
    ``double_ip``)."""
    if key not in _PAPER_ROWS:
        raise CorpusError(
            f"unknown corpus system {key!r}; available: {sorted(_PAPER_ROWS)}"
        )
    directory = SYSTEMS_DIR / _DIR_NAMES[key]
    if not directory.is_dir():
        raise CorpusError(f"corpus directory missing: {directory}")
    core = [p for p in _collect(directory, "core") if p.suffix == ".c"]
    if not core:
        raise CorpusError(f"no core sources in {directory}/core")
    return CorpusSystem(
        key=key,
        title=_TITLES[key],
        directory=directory,
        core_files=core,
        noncore_files=[
            p for p in _collect(directory, "noncore") if p.suffix == ".c"
        ],
        original_files=[
            p for p in _collect(directory, "original") if p.suffix == ".c"
        ],
        paper=_PAPER_ROWS[key],
        expected_error_classes=list(_ERROR_CLASSES[key]),
    )


def load_all() -> List[CorpusSystem]:
    return [load_system(key) for key in SYSTEM_KEYS]
