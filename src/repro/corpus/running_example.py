"""The paper's running example (Figures 2 and 3), as analyzable C.

This is the simplified Simplex core controller of §3: the ``decision``
monitoring function, the ``initComm`` initializing function of Figure
3, and the annotated ``main`` loop. §3.3 walks through its analysis:
the ``feedback`` dereference inside the decision chain is reported
unsafe, and the critical ``output`` inherits the dependency.
"""

RUNNING_EXAMPLE = r'''
typedef struct { double control; double feedback; int mode; } SHMData;

SHMData *noncoreCtrl;
SHMData *feedback;

int checkSafety(SHMData *f, SHMData *nc)
/***SafeFlow Annotation
    assume(core(nc, 0, sizeof(SHMData))) /***/
{
    if (nc->control > 5.0 || nc->control < -5.0)
        return 0;
    if (f->feedback > 100.0)
        return 0;
    return 1;
}

double decision(SHMData *f, double safe, SHMData *nc)
/***SafeFlow Annotation
    assume(core(nc, 0, sizeof(SHMData))) /***/
{
    if (checkSafety(f, nc))
        return nc->control;
    else
        return safe;
}

void initComm(void)
/***SafeFlow Annotation shminit /***/
{
    void *shmStart;
    int shmid;
    shmid = shmget(42, 2 * sizeof(SHMData), 0666);
    shmStart = shmat(shmid, 0, 0);
    feedback = (SHMData *) shmStart;
    noncoreCtrl = feedback + 1;
    /***SafeFlow Annotation
       assume(shmvar(feedback, sizeof(SHMData)));
       assume(shmvar(noncoreCtrl, sizeof(SHMData)));
       assume(noncore(noncoreCtrl));
       assume(noncore(feedback)); /***/
}

void sendControl(double v);
void getFeedback(SHMData *f);
void computeSafety(SHMData *f, double *out);

int main(void)
{
    double output;
    double safeControl;
    int i;
    initComm();
    for (i = 0; i < 100; i++) {
        getFeedback(feedback);
        computeSafety(feedback, &safeControl);
        output = decision(feedback, safeControl, noncoreCtrl);
        /***SafeFlow Annotation assert(safe(output)); /***/
        sendControl(output);
    }
    return 0;
}
'''
