"""Synthetic core-component generator for scaling and stress benches.

Generates SafeFlow-ready C core components with a *known* expected
diagnosis: a configurable number of shared regions, monitoring
functions, unmonitored reads that (a) flow into critical data (real
errors), (b) only steer control flow (the §3.4.1 false-positive
class), or (c) feed logging (warnings only) — plus filler computation
functions and call chains to scale code size and context-sensitivity
depth. The benchmarks use it to measure how analysis time grows with
program size and how context-sensitive re-analysis behaves (§3.3's
complexity discussion).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class GeneratedProgram:
    """A synthetic core component plus its expected diagnosis."""

    source: str
    regions: int
    expected_warnings: int
    expected_errors: int
    expected_false_positives: int

    @property
    def loc(self) -> int:
        return len(self.source.splitlines())


@dataclass
class GeneratedProgramFiles:
    """A synthetic core component split over several translation units.

    ``files`` is an ordered list of ``(filename, source)`` pairs: the
    annotated core unit first, then standalone filler units. The filler
    units are deliberately *declaration-free* — plain arithmetic
    functions that reference nothing and are referenced by nothing — so
    an edit inside one exercises the incremental layer's surgical unit
    swap (:mod:`repro.incremental`) and keeps the expected dirty cone
    to exactly the edited functions.
    """

    files: List[Tuple[str, str]] = field(default_factory=list)
    regions: int = 0
    expected_warnings: int = 0
    expected_errors: int = 0
    expected_false_positives: int = 0

    @property
    def loc(self) -> int:
        return sum(len(src.splitlines()) for _, src in self.files)

    def write_to(self, directory: str) -> List[str]:
        """Materialize the units under ``directory``; returns paths."""
        os.makedirs(directory, exist_ok=True)
        paths = []
        for fname, source in self.files:
            path = os.path.join(directory, fname)
            with open(path, "w") as f:
                f.write(source)
            paths.append(path)
        return paths


def _filler_lines(index: int, loops: bool) -> List[str]:
    """One standalone filler function (pure double arithmetic)."""
    lines = [f"double filler{index}(double x)", "{"]
    add = lines.append
    add("    double acc;")
    add("    int i;")
    add("    acc = x;")
    if loops:
        add("    for (i = 0; i < 16; i++) {")
        add(f"        acc = acc * 0.99 + {index + 1}.0 / (i + 2.0);")
        add("        acc = acc + x * 0.5;")
        add("        if (acc > 1000.0) {")
        add("            acc = acc * 0.5;")
        add("        }")
        add("        acc = acc - 0.125;")
        add("    }")
    add(f"    return acc + {index}.5;")
    add("}")
    add("")
    return lines


def generate_core(
    data_error_regions: int = 1,
    control_fp_regions: int = 1,
    benign_read_regions: int = 1,
    monitored_regions: int = 1,
    filler_functions: int = 0,
    chain_depth: int = 0,
    loops: bool = True,
    call_fanout: int = 0,
    pipeline_stages: int = 0,
) -> GeneratedProgram:
    """Build a synthetic core component.

    Region roles (each role gets its own region, reads deduplicate per
    line so expected counts are exact):

    - *data-error* regions: one unmonitored read each, flowing into the
      critical output — one warning + one data error per region;
    - *control-fp* regions: one unmonitored read each steering a branch
      that selects between two safe values — one warning + one
      control-only dependency (candidate false positive) per region;
    - *benign* regions: one unmonitored read each feeding a log value —
      one warning, no dependency;
    - *monitored* regions: read only inside a monitoring function —
      no warnings at all.

    Scaling knobs beyond region roles:

    - ``filler_functions`` / ``chain_depth``: code size and
      context-sensitivity depth (as before);
    - ``call_fanout``: every chain function additionally calls this many
      *shared* pure helpers, widening the call graph (many callers per
      callee — context-budget and memoization stress). No effect on the
      expected counts;
    - ``pipeline_stages``: a chain of stage functions passing a value
      through *core* (unannotated-noncore) shared regions: stage ``k``
      reads region ``k-1`` and writes region ``k``, seeded from one
      extra non-core region (one warning). ``main`` calls the stages in
      *reverse* order, so each outer fixpoint sweep propagates the
      value exactly one stage further — the interprocedural-fixpoint
      stress the sparse engine is built for. Adds one expected warning
      and nothing else.
    """
    n_regions = (data_error_regions + control_fp_regions
                 + benign_read_regions + monitored_regions)
    if n_regions == 0:
        raise ValueError("at least one region is required")

    lines: List[str] = []
    add = lines.append

    add("/* synthetic SafeFlow core component (generated) */")
    add("typedef struct { double v; int flag; double arr[8]; } Region;")
    add("")
    names = [f"shmR{i}" for i in range(n_regions)]
    pipe_names = [f"shmPipe{i}" for i in range(pipeline_stages)]
    pipe_src = "shmPipeSrc" if pipeline_stages else None
    all_names = names + ([pipe_src] if pipe_src else []) + pipe_names
    noncore_names = names + ([pipe_src] if pipe_src else [])
    for name in all_names:
        add(f"Region *{name};")
    add("")
    add("extern void emitOutput(double v);")
    add("extern void emitLog(double v);")
    add("extern double readSensor(void);")
    add("")

    # --- init function -------------------------------------------------
    add("void initShm(void)")
    add("/***SafeFlow Annotation")
    add("    shminit /***/")
    add("{")
    add("    void *base;")
    add("    int shmid;")
    add("    char *cursor;")
    add(f"    shmid = shmget(1234, {n_regions} * sizeof(Region), 0666);")
    add("    base = shmat(shmid, 0, 0);")
    add("    cursor = (char *) base;")
    for name in names:
        add(f"    {name} = (Region *) cursor;")
        add("    cursor = cursor + sizeof(Region);")
    # pipeline regions get one segment each: separate attachments keep
    # their points-to cells distinct, so value flow through the pipeline
    # really crosses one shared cell per stage
    for k, name in enumerate([pipe_src] + pipe_names if pipe_src else []):
        add(f"    shmid = shmget({2000 + k}, sizeof(Region), 0666);")
        add(f"    {name} = (Region *) shmat(shmid, 0, 0);")
    add("    /***SafeFlow Annotation")
    for name in all_names:
        add(f"        assume(shmvar({name}, sizeof(Region)));")
    for i, name in enumerate(noncore_names):
        sep = ";" if i < len(noncore_names) - 1 else " /***/"
        add(f"        assume(noncore({name})){sep}")
    add("}")
    add("")

    # --- filler computation --------------------------------------------
    for i in range(filler_functions):
        lines.extend(_filler_lines(i, loops))

    # --- shared fan-out helpers (call-graph width stress) ---------------
    for j in range(call_fanout):
        add(f"double fan{j}(double x)")
        add("{")
        add(f"    return x * 0.5 + {j}.25;")
        add("}")
        add("")

    # --- call chain (context-sensitivity stress) ------------------------
    for depth in range(chain_depth):
        callee = f"chain{depth + 1}" if depth + 1 < chain_depth else None
        add(f"double chain{depth}(Region *r, double fb)")
        add("/***SafeFlow Annotation")
        add("    assume(core(r, 0, sizeof(Region))) /***/")
        add("{")
        add("    double v;")
        add("    v = r->v;")
        add("    if (v > 100.0 || v < -100.0) {")
        add("        return fb;")
        add("    }")
        for j in range(call_fanout):
            add(f"    fb = fb + fan{j}(v) * 0.000001;")
        if callee is not None:
            add(f"    return {callee}(r, v);")
        else:
            add("    return v;")
        add("}")
        add("")

    # --- monitoring functions -------------------------------------------
    region_index = 0
    monitored = names[region_index: region_index + monitored_regions]
    region_index += monitored_regions
    for i, name in enumerate(monitored):
        add(f"double monitor{i}(Region *r, double fb)")
        add("/***SafeFlow Annotation")
        add("    assume(core(r, 0, sizeof(Region))) /***/")
        add("{")
        add("    double v;")
        add("    int j;")
        add("    if (r->flag == 0) {")
        add("        return fb;")
        add("    }")
        add("    v = r->v;")
        if loops:
            add("    for (j = 0; j < 8; j++) {")
            add("        if (r->arr[j] > 1000.0) {")
            add("            return fb;")
            add("        }")
            add("    }")
        add("    if (v > 10.0 || v < -10.0) {")
        add("        return fb;")
        add("    }")
        add("    return v;")
        add("}")
        add("")

    # --- value pipeline through core regions (fixpoint-depth stress) ----
    # stage k reads region k-1 (the extra non-core source for stage 0)
    # and writes region k; main calls the stages newest-first, so one
    # outer sweep advances the value exactly one stage
    for k in range(pipeline_stages):
        src = pipe_src if k == 0 else pipe_names[k - 1]
        add(f"void stage{k}(void)")
        add("{")
        add("    double v;")
        add(f"    v = {src}->v;")
        add(f"    {pipe_names[k]}->v = v * 0.5 + {k}.0;")
        add("}")
        add("")

    data_regions = names[region_index: region_index + data_error_regions]
    region_index += data_error_regions
    control_regions = names[region_index: region_index + control_fp_regions]
    region_index += control_fp_regions
    benign_regions = names[region_index: region_index + benign_read_regions]

    # --- main -------------------------------------------------------------
    add("int main(void)")
    add("{")
    add("    double output;")
    add("    double safeVal;")
    add("    double logged;")
    add("    double bias;")
    add("    int sel;")
    add("    unsigned int tick;")
    add("    initShm();")
    add("    tick = 0;")
    add("    while (1) {")
    add("        safeVal = readSensor();")
    if chain_depth:
        add(f"        output = chain0({monitored[0] if monitored else names[0]}, safeVal);")
    else:
        add("        output = safeVal;")
    for i, name in enumerate(monitored):
        add(f"        output = output + monitor{i}({name}, safeVal);")
    for name in control_regions:
        add(f"        sel = {name}->flag;")
        add("        if (sel == 1) {")
        add("            output = output * 1.01;")
        add("        } else {")
        add("            output = output * 0.99;")
        add("        }")
    for name in data_regions:
        add(f"        bias = {name}->v;")
        add("        output = output + 0.001 * bias;")
    add("        /***SafeFlow Annotation assert(safe(output)); /***/")
    add("        emitOutput(output);")
    for name in benign_regions:
        add(f"        logged = {name}->v;")
        add("        emitLog(logged);")
    for k in reversed(range(pipeline_stages)):
        add(f"        stage{k}();")
    if pipeline_stages:
        add(f"        emitLog({pipe_names[-1]}->v);")
    add("        tick = tick + 1u;")
    add("    }")
    add("    return 0;")
    add("}")

    expected_warnings = (len(data_regions) + len(control_regions)
                         + len(benign_regions)
                         + (1 if pipeline_stages else 0))
    return GeneratedProgram(
        source="\n".join(lines) + "\n",
        regions=len(all_names),
        expected_warnings=expected_warnings,
        expected_errors=len(data_regions),
        expected_false_positives=len(control_regions),
    )


def generate_core_files(
    filler_units: int = 2,
    fillers_per_unit: int = 4,
    **knobs,
) -> GeneratedProgramFiles:
    """Multi-translation-unit variant of :func:`generate_core`.

    The annotated core program (every ``generate_core`` knob applies)
    becomes ``core.c``; ``filler_units`` additional files carry
    ``fillers_per_unit`` standalone filler functions each, numbered
    after the core's own fillers so names never collide. The expected
    diagnosis is the core's — the filler units cannot contribute
    findings. ``safeflow watch`` benchmarks and the incremental
    edit-type matrix use the filler units as swap targets: editing one
    touches a single declaration-free unit.
    """
    core = generate_core(**knobs)
    loops = knobs.get("loops", True)
    index = knobs.get("filler_functions", 0)
    files: List[Tuple[str, str]] = [("core.c", core.source)]
    for u in range(filler_units):
        lines = [f"/* synthetic SafeFlow filler unit {u} (generated) */", ""]
        for _ in range(fillers_per_unit):
            lines.extend(_filler_lines(index, loops))
            index += 1
        files.append((f"filler_{u:02d}.c", "\n".join(lines) + "\n"))
    return GeneratedProgramFiles(
        files=files,
        regions=core.regions,
        expected_warnings=core.expected_warnings,
        expected_errors=core.expected_errors,
        expected_false_positives=core.expected_false_positives,
    )
