"""Synthetic core-component generator for scaling and stress benches.

Generates SafeFlow-ready C core components with a *known* expected
diagnosis: a configurable number of shared regions, monitoring
functions, unmonitored reads that (a) flow into critical data (real
errors), (b) only steer control flow (the §3.4.1 false-positive
class), or (c) feed logging (warnings only) — plus filler computation
functions and call chains to scale code size and context-sensitivity
depth. The benchmarks use it to measure how analysis time grows with
program size and how context-sensitive re-analysis behaves (§3.3's
complexity discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass
class GeneratedProgram:
    """A synthetic core component plus its expected diagnosis."""

    source: str
    regions: int
    expected_warnings: int
    expected_errors: int
    expected_false_positives: int

    @property
    def loc(self) -> int:
        return len(self.source.splitlines())


def generate_core(
    data_error_regions: int = 1,
    control_fp_regions: int = 1,
    benign_read_regions: int = 1,
    monitored_regions: int = 1,
    filler_functions: int = 0,
    chain_depth: int = 0,
    loops: bool = True,
) -> GeneratedProgram:
    """Build a synthetic core component.

    Region roles (each role gets its own region, reads deduplicate per
    line so expected counts are exact):

    - *data-error* regions: one unmonitored read each, flowing into the
      critical output — one warning + one data error per region;
    - *control-fp* regions: one unmonitored read each steering a branch
      that selects between two safe values — one warning + one
      control-only dependency (candidate false positive) per region;
    - *benign* regions: one unmonitored read each feeding a log value —
      one warning, no dependency;
    - *monitored* regions: read only inside a monitoring function —
      no warnings at all.
    """
    n_regions = (data_error_regions + control_fp_regions
                 + benign_read_regions + monitored_regions)
    if n_regions == 0:
        raise ValueError("at least one region is required")

    lines: List[str] = []
    add = lines.append

    add("/* synthetic SafeFlow core component (generated) */")
    add("typedef struct { double v; int flag; double arr[8]; } Region;")
    add("")
    names = [f"shmR{i}" for i in range(n_regions)]
    for name in names:
        add(f"Region *{name};")
    add("")
    add("extern void emitOutput(double v);")
    add("extern void emitLog(double v);")
    add("extern double readSensor(void);")
    add("")

    # --- init function -------------------------------------------------
    add("void initShm(void)")
    add("/***SafeFlow Annotation")
    add("    shminit /***/")
    add("{")
    add("    void *base;")
    add("    int shmid;")
    add("    char *cursor;")
    add(f"    shmid = shmget(1234, {n_regions} * sizeof(Region), 0666);")
    add("    base = shmat(shmid, 0, 0);")
    add("    cursor = (char *) base;")
    for name in names:
        add(f"    {name} = (Region *) cursor;")
        add("    cursor = cursor + sizeof(Region);")
    add("    /***SafeFlow Annotation")
    for name in names:
        add(f"        assume(shmvar({name}, sizeof(Region)));")
    for i, name in enumerate(names):
        sep = ";" if i < len(names) - 1 else " /***/"
        add(f"        assume(noncore({name})){sep}")
    add("}")
    add("")

    # --- filler computation --------------------------------------------
    for i in range(filler_functions):
        add(f"double filler{i}(double x)")
        add("{")
        add("    double acc;")
        add("    int i;")
        add("    acc = x;")
        if loops:
            add("    for (i = 0; i < 16; i++) {")
            add(f"        acc = acc * 0.99 + {i + 1}.0 / (i + 2.0);")
            add("    }")
        add(f"    return acc + {i}.5;")
        add("}")
        add("")

    # --- call chain (context-sensitivity stress) ------------------------
    for depth in range(chain_depth):
        callee = f"chain{depth + 1}" if depth + 1 < chain_depth else None
        add(f"double chain{depth}(Region *r, double fb)")
        add("/***SafeFlow Annotation")
        add("    assume(core(r, 0, sizeof(Region))) /***/")
        add("{")
        add("    double v;")
        add("    v = r->v;")
        add("    if (v > 100.0 || v < -100.0) {")
        add("        return fb;")
        add("    }")
        if callee is not None:
            add(f"    return {callee}(r, v);")
        else:
            add("    return v;")
        add("}")
        add("")

    # --- monitoring functions -------------------------------------------
    region_index = 0
    monitored = names[region_index: region_index + monitored_regions]
    region_index += monitored_regions
    for i, name in enumerate(monitored):
        add(f"double monitor{i}(Region *r, double fb)")
        add("/***SafeFlow Annotation")
        add("    assume(core(r, 0, sizeof(Region))) /***/")
        add("{")
        add("    double v;")
        add("    int j;")
        add("    if (r->flag == 0) {")
        add("        return fb;")
        add("    }")
        add("    v = r->v;")
        if loops:
            add("    for (j = 0; j < 8; j++) {")
            add("        if (r->arr[j] > 1000.0) {")
            add("            return fb;")
            add("        }")
            add("    }")
        add("    if (v > 10.0 || v < -10.0) {")
        add("        return fb;")
        add("    }")
        add("    return v;")
        add("}")
        add("")

    data_regions = names[region_index: region_index + data_error_regions]
    region_index += data_error_regions
    control_regions = names[region_index: region_index + control_fp_regions]
    region_index += control_fp_regions
    benign_regions = names[region_index: region_index + benign_read_regions]

    # --- main -------------------------------------------------------------
    add("int main(void)")
    add("{")
    add("    double output;")
    add("    double safeVal;")
    add("    double logged;")
    add("    double bias;")
    add("    int sel;")
    add("    unsigned int tick;")
    add("    initShm();")
    add("    tick = 0;")
    add("    while (1) {")
    add("        safeVal = readSensor();")
    if chain_depth:
        add(f"        output = chain0({monitored[0] if monitored else names[0]}, safeVal);")
    else:
        add("        output = safeVal;")
    for i, name in enumerate(monitored):
        add(f"        output = output + monitor{i}({name}, safeVal);")
    for name in control_regions:
        add(f"        sel = {name}->flag;")
        add("        if (sel == 1) {")
        add("            output = output * 1.01;")
        add("        } else {")
        add("            output = output * 0.99;")
        add("        }")
    for name in data_regions:
        add(f"        bias = {name}->v;")
        add("        output = output + 0.001 * bias;")
    add("        /***SafeFlow Annotation assert(safe(output)); /***/")
    add("        emitOutput(output);")
    for name in benign_regions:
        add(f"        logged = {name}->v;")
        add("        emitLog(logged);")
    add("        tick = tick + 1u;")
    add("    }")
    add("    return 0;")
    add("}")

    expected_warnings = (len(data_regions) + len(control_regions)
                         + len(benign_regions))
    return GeneratedProgram(
        source="\n".join(lines) + "\n",
        regions=n_regions,
        expected_warnings=expected_warnings,
        expected_errors=len(data_regions),
        expected_false_positives=len(control_regions),
    )
