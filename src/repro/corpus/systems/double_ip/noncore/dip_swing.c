/*
 * dip_swing.c -- non-core swing-damping controller (controller B) of
 * the double inverted pendulum system. Adds an operator trim knob; the
 * trim is *supposed* to be display-only but is published next to the
 * voltage in DipCommandB, which is exactly the value the core's mode-2
 * path erroneously folds into the actuator output.
 */

#include "../core/dip_types.h"

DipFeedback *dipFb;
DipCommandA *dipCmd1;
DipCommandB *dipCmd2;
DipStatus *dipStatus;
DipConfig *dipConfig;
DipState *dipState;
DipGains *dipGains;

unsigned int seqCounter;

void attachShm(void)
{
    void *base;
    int shmid;
    char *cursor;
    unsigned int total;

    total = sizeof(DipFeedback) + sizeof(DipCommandA)
          + sizeof(DipCommandB) + sizeof(DipStatus)
          + sizeof(DipConfig) + sizeof(DipState) + sizeof(DipGains);
    shmid = shmget(DIP_SHM_KEY, total, 0666);
    base = shmat(shmid, 0, 0);
    cursor = (char *) base;
    dipFb = (DipFeedback *) cursor;
    cursor = cursor + sizeof(DipFeedback);
    dipCmd1 = (DipCommandA *) cursor;
    cursor = cursor + sizeof(DipCommandA);
    dipCmd2 = (DipCommandB *) cursor;
    cursor = cursor + sizeof(DipCommandB);
    dipStatus = (DipStatus *) cursor;
    cursor = cursor + sizeof(DipStatus);
    dipConfig = (DipConfig *) cursor;
    cursor = cursor + sizeof(DipConfig);
    dipState = (DipState *) cursor;
    cursor = cursor + sizeof(DipState);
    dipGains = (DipGains *) cursor;
}

double swingDamping(void)
{
    double energy1;
    double energy2;
    double u;

    energy1 = 0.5 * dipFb->angVel1 * dipFb->angVel1
            + 14.2 * (1.0 - cos(dipFb->angle1));
    energy2 = 0.5 * dipFb->angVel2 * dipFb->angVel2
            + 9.3 * (1.0 - cos(dipFb->angle2));
    u = -3.4 * dipFb->angVel1 * energy1 - 1.9 * dipFb->angVel2 * energy2
      - 2.2 * dipFb->trackVel;
    return u;
}

int main(void)
{
    double u;
    double trim;
    int key;

    attachShm();
    trim = 0.0;
    seqCounter = 0;

    while (1) {
        u = swingDamping();

        key = getchar();
        if (key == '+') {
            trim = trim + 0.05;
        } else if (key == '-') {
            trim = trim - 0.05;
        }

        dipCmd2->voltage = u;
        dipCmd2->trimBias = trim;
        seqCounter = seqCounter + 1;
        dipCmd2->seq = seqCounter;
        dipCmd2->valid = 1;

        hwWaitPeriod(DIP_PERIOD_US * 2);
    }
    return 0;
}
