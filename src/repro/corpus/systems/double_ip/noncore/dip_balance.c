/*
 * dip_balance.c -- non-core balance controller (controller A) of the
 * double inverted pendulum system. Higher-bandwidth state feedback
 * with a disturbance observer; unverified, monitored by the core.
 */

#include "../core/dip_types.h"

DipFeedback *dipFb;
DipCommandA *dipCmd1;
DipCommandB *dipCmd2;
DipStatus *dipStatus;
DipConfig *dipConfig;
DipState *dipState;
DipGains *dipGains;

double distEstimate;
unsigned int seqCounter;

void attachShm(void)
{
    void *base;
    int shmid;
    char *cursor;
    unsigned int total;

    total = sizeof(DipFeedback) + sizeof(DipCommandA)
          + sizeof(DipCommandB) + sizeof(DipStatus)
          + sizeof(DipConfig) + sizeof(DipState) + sizeof(DipGains);
    shmid = shmget(DIP_SHM_KEY, total, 0666);
    base = shmat(shmid, 0, 0);
    cursor = (char *) base;
    dipFb = (DipFeedback *) cursor;
    cursor = cursor + sizeof(DipFeedback);
    dipCmd1 = (DipCommandA *) cursor;
    cursor = cursor + sizeof(DipCommandA);
    dipCmd2 = (DipCommandB *) cursor;
    cursor = cursor + sizeof(DipCommandB);
    dipStatus = (DipStatus *) cursor;
    cursor = cursor + sizeof(DipStatus);
    dipConfig = (DipConfig *) cursor;
    cursor = cursor + sizeof(DipConfig);
    dipState = (DipState *) cursor;
    cursor = cursor + sizeof(DipState);
    dipGains = (DipGains *) cursor;
}

double observerUpdate(double a1, double v1, double u)
{
    double predicted;
    double innovation;

    predicted = v1 + 0.005 * (17.6 * a1 - 3.0 * u + distEstimate);
    innovation = v1 - predicted;
    distEstimate = distEstimate + 2.5 * innovation;
    return distEstimate;
}

double balanceControl(void)
{
    double u;
    double dist;

    u = -(-4.2 * dipFb->trackPos + -6.8 * dipFb->trackVel
        + 81.5 * dipFb->angle1 + 14.7 * dipFb->angVel1
        + -29.3 * dipFb->angle2 + -5.9 * dipFb->angVel2);
    dist = observerUpdate(dipFb->angle1, dipFb->angVel1, u);
    return u - 0.8 * dist;
}

int main(void)
{
    double u;
    unsigned int beat;

    attachShm();
    dipStatus->ncPid = getpid();
    dipStatus->state = 1;
    distEstimate = 0.0;
    seqCounter = 0;
    beat = 0;

    while (1) {
        u = balanceControl();

        dipCmd1->voltage = u;
        seqCounter = seqCounter + 1;
        dipCmd1->seq = seqCounter;
        dipCmd1->valid = 1;

        beat = beat + 1;
        dipStatus->heartbeat = beat;

        hwWaitPeriod(DIP_PERIOD_US);
    }
    return 0;
}
