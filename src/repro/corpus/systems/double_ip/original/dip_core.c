/*
 * dip_core.c -- core controller of the double inverted pendulum system.
 * (original, pre-SafeFlow version: the controller-B decision logic is
 * inlined in the main loop; porting extracted it into monitorCmdB so
 * the assume(core(...)) annotation could be applied.)
 *
 * Keeps both links upright with a 6-state LQR law while either of two
 * non-core controllers (balance / swing-damping) may be dispatched
 * through the decision monitors. This is the newest of the three lab
 * systems and still being refined; SafeFlow found two erroneous value
 * dependencies in it (§4):
 *
 *   - the restart supervisor trusts the pid in the status block;
 *   - the mode-2 path adds the operator trim bias read straight from
 *     the DipCommandB region to the actuator output, under the
 *     (invalid) assumption that the trim "cannot reach the plant".
 */

#include "../core/dip_types.h"

#define WATCHDOG_LIMIT 40
#define SAFE_PERIOD_US DIP_PERIOD_US
#define ENV_LIMIT      1.0
#define TRIM_SCALE     0.1

/* builtin LQR gains for the linearized double pendulum */
#define KD_TRACK   -3.1623
#define KD_TRKVEL  -5.4410
#define KD_ANG1    68.2205
#define KD_AV1     12.0913
#define KD_ANG2   -24.5531
#define KD_AV2     -4.8020

/* Lyapunov envelope weights (diagonal approximation) */
#define PW_TRACK  0.61
#define PW_TRKVEL 0.95
#define PW_ANG1   3.10
#define PW_AV1    0.88
#define PW_ANG2   2.40
#define PW_AV2    0.71

/* shared-memory pointer variables */
DipFeedback *dipFb;
DipCommandA *dipCmd1;
DipCommandB *dipCmd2;
DipStatus *dipStatus;
DipConfig *dipConfig;
DipState *dipState;
DipGains *dipGains;

unsigned int lastHeartbeat;
int missedBeats;
int fallbacks;
unsigned int lastSeqA;
unsigned int lastSeqB;

extern double hwReadTrack(void);
extern double hwReadTrackVel(void);
extern double hwReadAngle1(void);
extern double hwReadAngVel1(void);
extern double hwReadAngle2(void);
extern double hwReadAngVel2(void);
extern void hwWriteVoltage(double v);
extern void hwWaitPeriod(unsigned int usec);

void initShm(void)
{
    void *base;
    int shmid;
    char *cursor;
    unsigned int total;

    total = sizeof(DipFeedback) + sizeof(DipCommandA)
          + sizeof(DipCommandB) + sizeof(DipStatus)
          + sizeof(DipConfig) + sizeof(DipState) + sizeof(DipGains);
    shmid = shmget(DIP_SHM_KEY, total, 0666);
    if (shmid < 0) {
        exit(1);
    }
    base = shmat(shmid, 0, 0);
    cursor = (char *) base;
    dipFb = (DipFeedback *) cursor;
    cursor = cursor + sizeof(DipFeedback);
    dipCmd1 = (DipCommandA *) cursor;
    cursor = cursor + sizeof(DipCommandA);
    dipCmd2 = (DipCommandB *) cursor;
    cursor = cursor + sizeof(DipCommandB);
    dipStatus = (DipStatus *) cursor;
    cursor = cursor + sizeof(DipStatus);
    dipConfig = (DipConfig *) cursor;
    cursor = cursor + sizeof(DipConfig);
    dipState = (DipState *) cursor;
    cursor = cursor + sizeof(DipState);
    dipGains = (DipGains *) cursor;
}

double clampVoltage(double v)
{
    if (v > DIP_MAX_VOLTAGE) {
        return DIP_MAX_VOLTAGE;
    }
    if (v < -DIP_MAX_VOLTAGE) {
        return -DIP_MAX_VOLTAGE;
    }
    return v;
}

void loadDefaultGains(double *out)
{
    out[0] = KD_TRACK;
    out[1] = KD_TRKVEL;
    out[2] = KD_ANG1;
    out[3] = KD_AV1;
    out[4] = KD_ANG2;
    out[5] = KD_AV2;
}

/*
 * Monitoring function for the uploaded gain set (range checks per
 * gain; the region may be treated as core in here).
 */
void monitorGains(DipGains *g, double *out)
{
    int i;
    double v;

    if (g->uploaded == 0) {
        return;
    }
    for (i = 0; i < DIP_NGAINS; i++) {
        v = g->k[i];
        if (v >= -100.0 && v <= 100.0) {
            out[i] = v;
        }
    }
}

void readSensors(DipFeedback *out, unsigned int tick)
{
    out->trackPos = hwReadTrack();
    out->trackVel = hwReadTrackVel();
    out->angle1 = hwReadAngle1();
    out->angVel1 = hwReadAngVel1();
    out->angle2 = hwReadAngle2();
    out->angVel2 = hwReadAngVel2();
    out->tick = tick;

    dipFb->trackPos = out->trackPos;
    dipFb->trackVel = out->trackVel;
    dipFb->angle1 = out->angle1;
    dipFb->angVel1 = out->angVel1;
    dipFb->angle2 = out->angle2;
    dipFb->angVel2 = out->angVel2;
    dipFb->tick = out->tick;
}

double lqr6(DipFeedback *s, double *k)
{
    double u;
    u = k[0] * s->trackPos + k[1] * s->trackVel
      + k[2] * s->angle1 + k[3] * s->angVel1
      + k[4] * s->angle2 + k[5] * s->angVel2;
    return clampVoltage(-u);
}

/* one-step envelope recoverability for a candidate voltage */
int recoverable(DipFeedback *s, double v)
{
    double dt;
    double nTrack;
    double nTrkVel;
    double nA1;
    double nV1;
    double nA2;
    double nV2;
    double lyap;

    dt = DIP_PERIOD_US / 1000000.0;
    nTrack = s->trackPos + dt * s->trackVel;
    nTrkVel = s->trackVel + dt * (1.12 * v - 0.44 * s->angle1);
    nA1 = s->angle1 + dt * s->angVel1;
    nV1 = s->angVel1 + dt * (17.6 * s->angle1 - 6.1 * s->angle2 - 3.0 * v);
    nA2 = s->angle2 + dt * s->angVel2;
    nV2 = s->angVel2 + dt * (21.4 * s->angle2 - 9.7 * s->angle1 + 1.9 * v);

    lyap = PW_TRACK * nTrack * nTrack + PW_TRKVEL * nTrkVel * nTrkVel
         + PW_ANG1 * nA1 * nA1 + PW_AV1 * nV1 * nV1
         + PW_ANG2 * nA2 * nA2 + PW_AV2 * nV2 * nV2;

    if (lyap > ENV_LIMIT) {
        return 0;
    }
    if (nTrack > DIP_TRACK_LIMIT || nTrack < -DIP_TRACK_LIMIT) {
        return 0;
    }
    if (nA1 > DIP_ANGLE_LIMIT || nA1 < -DIP_ANGLE_LIMIT) {
        return 0;
    }
    if (nA2 > DIP_ANGLE_LIMIT || nA2 < -DIP_ANGLE_LIMIT) {
        return 0;
    }
    return 1;
}

/* decision monitor for controller A's command */
double monitorCmdA(DipCommandA *cmd, double fallback, DipFeedback *sense)
{
    double v;
    unsigned int seq;

    if (cmd->valid == 0) {
        return fallback;
    }
    seq = cmd->seq;
    if (seq == lastSeqA) {
        return fallback;
    }
    lastSeqA = seq;
    v = cmd->voltage;
    if (v > DIP_MAX_VOLTAGE || v < -DIP_MAX_VOLTAGE) {
        return fallback;
    }
    if (!recoverable(sense, v)) {
        return fallback;
    }
    return v;
}

int checkWatchdog(void)
{
    unsigned int beat;

    beat = dipStatus->heartbeat;
    if (beat == lastHeartbeat) {
        missedBeats = missedBeats + 1;
    } else {
        missedBeats = 0;
        lastHeartbeat = beat;
    }
    return missedBeats < WATCHDOG_LIMIT;
}

/* BUG: unmonitored pid straight into kill() */
void superviseNoncore(void)
{
    int pid;

    pid = dipStatus->ncPid;
    if (pid > 1) {
        kill(pid, SIGKILL_NUM);
    }
}

/* diagnostic console output */
void logDiag(DipFeedback *s, double u, unsigned int tick)
{
    int rate;
    double a1;
    double a2;
    unsigned int lastA;

    rate = dipConfig->uiRate;
    if (rate > 0 && (tick % 200u) == 0u) {
        a1 = dipFb->angle1;
        a2 = dipFb->angle2;
        lastA = dipCmd1->seq;
        printf("[dip-core] tick=%u a1=%f a2=%f u=%f lastA=%u\n",
               tick, a1, a2, u, lastA);
    }
}

int main(void)
{
    DipFeedback sensors;
    double kvec[DIP_NGAINS];
    double kTrack;
    double safeU;
    double base;
    double trim;
    double vB;
    unsigned int seqB;
    double output;
    unsigned int safePeriod;
    double envLimit;
    unsigned int tick;
    int cmode;
    int alive;

    initShm();
    tick = 0;
    lastHeartbeat = 0;
    missedBeats = 0;
    lastSeqA = 0;
    lastSeqB = 0;
    loadDefaultGains(kvec);
    monitorGains(dipGains, kvec);

    /* sanity checks on the constants the safe controller relies on */
    kTrack = kvec[0];
    safePeriod = SAFE_PERIOD_US;
    envLimit = ENV_LIMIT;

    while (1) {
        readSensors(&sensors, tick);
        safeU = lqr6(&sensors, kvec);

        alive = checkWatchdog();
        if (alive) {
            cmode = dipConfig->ctrlMode;
            if (cmode == 2) {
                /* controller-B decision logic inlined in the loop */
                base = safeU;
                if (dipCmd2->valid != 0) {
                    seqB = dipCmd2->seq;
                    if (seqB != lastSeqB) {
                        lastSeqB = seqB;
                        vB = dipCmd2->voltage;
                        if (vB <= DIP_MAX_VOLTAGE && vB >= -DIP_MAX_VOLTAGE) {
                            if (recoverable(&sensors, vB)) {
                                base = vB;
                            }
                        }
                    }
                }
                trim = dipCmd2->trimBias;
                output = clampVoltage(base + TRIM_SCALE * trim);
            } else {
                output = monitorCmdA(dipCmd1, safeU, &sensors);
            }
            dipState->activeMode = cmode;
        } else {
            superviseNoncore();
            output = safeU;
            fallbacks = fallbacks + 1;
            dipState->fallbackCount = fallbacks;
        }

        hwWriteVoltage(output);
        logDiag(&sensors, output, tick);

        tick = tick + 1u;
        hwWaitPeriod(safePeriod);
    }
    return 0;
}
