/*
 * dip_types.h -- shared-memory layout of the double inverted pendulum
 * control system.
 *
 * Based on the single-pendulum controller, extended with additional
 * control modes: controller A (balance) and controller B (mode 2,
 * swing-damping with operator trim) are separate non-core processes
 * with their own command regions.
 */
#ifndef DIP_TYPES_H
#define DIP_TYPES_H

#define DIP_SHM_KEY     0x4450
#define DIP_MAX_VOLTAGE 8.0
#define DIP_PERIOD_US   5000
#define DIP_TRACK_LIMIT 1.2
#define DIP_ANGLE_LIMIT 0.25
#define DIP_NGAINS      6
#define SIGKILL_NUM     9

/* full double-pendulum state published by the core controller */
typedef struct {
    double trackPos;
    double trackVel;
    double angle1;      /* lower link angle  */
    double angVel1;
    double angle2;      /* upper link angle  */
    double angVel2;
    unsigned int tick;
} DipFeedback;

/* command from non-core controller A (balance) */
typedef struct {
    double voltage;
    unsigned int seq;
    int valid;
} DipCommandA;

/* command from non-core controller B (mode 2, with operator trim) */
typedef struct {
    double voltage;
    double trimBias;    /* operator trim, intended for display only */
    unsigned int seq;
    int valid;
} DipCommandB;

/* non-core process status block */
typedef struct {
    int ncPid;
    unsigned int heartbeat;
    int state;
} DipStatus;

/* control-mode configuration from the operator console */
typedef struct {
    int ctrlMode;       /* 1 = controller A, 2 = controller B      */
    int uiRate;
    int reserved[2];
} DipConfig;

/* mode state machine echo (written by the core for the UI) */
typedef struct {
    int activeMode;
    int fallbackCount;
    unsigned int lastSwitch;
} DipState;

/* gain set uploaded by the tuning tool */
typedef struct {
    double k[DIP_NGAINS];
    int uploaded;
} DipGains;

#endif /* DIP_TYPES_H */
