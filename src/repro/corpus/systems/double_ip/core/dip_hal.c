/*
 * dip_hal.c -- hardware abstraction layer of the double-IP core.
 *
 * Six sensor channels (track position/velocity and two angle pairs)
 * on the faster DAQ card; core-side and trusted.
 */

#include "dip_types.h"

#define CH_TRACK   0
#define CH_TRKVEL  1
#define CH_ANGLE1  2
#define CH_ANGVEL1 3
#define CH_ANGLE2  4
#define CH_ANGVEL2 5
#define CH_MOTOR   0

#define TRACK_SCALE   0.00052
#define TRKVEL_SCALE  0.00131
#define ANGLE_SCALE   0.000095
#define ANGVEL_SCALE  0.00071
#define MOTOR_SCALE   256.0

int dipDaqFd;

extern int daqReadRaw(int fd, int channel);
extern void daqWriteRaw(int fd, int channel, int counts);

int halInit(const char *device)
{
    dipDaqFd = open(device, 2);
    if (dipDaqFd < 0) {
        return -1;
    }
    return 0;
}

double hwReadTrack(void)
{
    return daqReadRaw(dipDaqFd, CH_TRACK) * TRACK_SCALE;
}

double hwReadTrackVel(void)
{
    return daqReadRaw(dipDaqFd, CH_TRKVEL) * TRKVEL_SCALE;
}

double hwReadAngle1(void)
{
    return daqReadRaw(dipDaqFd, CH_ANGLE1) * ANGLE_SCALE;
}

double hwReadAngVel1(void)
{
    return daqReadRaw(dipDaqFd, CH_ANGVEL1) * ANGVEL_SCALE;
}

double hwReadAngle2(void)
{
    return daqReadRaw(dipDaqFd, CH_ANGLE2) * ANGLE_SCALE;
}

double hwReadAngVel2(void)
{
    return daqReadRaw(dipDaqFd, CH_ANGVEL2) * ANGVEL_SCALE;
}

void hwWriteVoltage(double v)
{
    if (v > DIP_MAX_VOLTAGE) {
        v = DIP_MAX_VOLTAGE;
    }
    if (v < -DIP_MAX_VOLTAGE) {
        v = -DIP_MAX_VOLTAGE;
    }
    daqWriteRaw(dipDaqFd, CH_MOTOR, (int) (v * MOTOR_SCALE));
}

void hwWaitPeriod(unsigned int usec)
{
    usleep(usec);
}
