/*
 * gs_core.c -- core controller of the generic Simplex system.
 *
 * A configurable Simplex implementation for simple (first/second
 * order) plants: the safe controller is a PD law with either builtin
 * gains or gains uploaded through shared memory (validated by a
 * monitoring function); the complex controller's command is dispatched
 * only after the recoverability monitor admits it.
 *
 * KNOWN-SUBTLE BUGS this version carries (all found by SafeFlow, §4):
 *   - the safe control law reads the plant feedback back from the
 *     shared FeedbackData region instead of using its local copy; a
 *     non-core component that overwrites the (supposedly read-only)
 *     feedback can rig the recoverability check;
 *   - the restart supervisor passes a pid read from shared memory
 *     straight to kill().
 */

#include "gs_types.h"

#define K_P_BUILTIN  3.20
#define K_D_BUILTIN  1.15
#define K_R_BUILTIN  0.42
#define ENVELOPE_LIM 1.0
#define SUPERVISE_DIV 500u

/* shared-memory pointer variables */
FeedbackData *gsFeedback;
ActuationCmd *gsCmd;
PlantConfig *gsConfig;
ProcStatus *gsStatus;
GainData *gsGains;
ModeData *gsModes;
LimitData *gsLimits;

unsigned int lastSeq;

/* local plant state sampled from the I/O card */
typedef struct {
    double y;
    double ydot;
    double yint;
} PlantState;

extern double hwReadPrimary(void);
extern double hwReadRate(void);
extern void hwWriteActuator(double u);
extern void hwWaitPeriod(unsigned int usec);
extern void hwDisplaySetpoint(double sp);
extern void hwAlarmThreshold(double guard);

/*
 * Shared-memory initialization: seven regions carved out of a single
 * System V segment. Only this function may cast/offset the untyped
 * segment (shminit exemption).
 */
void initShm(void)
/***SafeFlow Annotation
    shminit /***/
{
    void *base;
    int shmid;
    char *cursor;
    unsigned int total;

    total = sizeof(FeedbackData) + sizeof(ActuationCmd)
          + sizeof(PlantConfig) + sizeof(ProcStatus)
          + sizeof(GainData) + sizeof(ModeData) + sizeof(LimitData);
    shmid = shmget(GS_SHM_KEY, total, 0666);
    if (shmid < 0) {
        exit(1);
    }
    base = shmat(shmid, 0, 0);
    cursor = (char *) base;
    gsFeedback = (FeedbackData *) cursor;
    cursor = cursor + sizeof(FeedbackData);
    gsCmd = (ActuationCmd *) cursor;
    cursor = cursor + sizeof(ActuationCmd);
    gsConfig = (PlantConfig *) cursor;
    cursor = cursor + sizeof(PlantConfig);
    gsStatus = (ProcStatus *) cursor;
    cursor = cursor + sizeof(ProcStatus);
    gsGains = (GainData *) cursor;
    cursor = cursor + sizeof(GainData);
    gsModes = (ModeData *) cursor;
    cursor = cursor + sizeof(ModeData);
    gsLimits = (LimitData *) cursor;
    /***SafeFlow Annotation
        assume(shmvar(gsFeedback, sizeof(FeedbackData)));
        assume(shmvar(gsCmd, sizeof(ActuationCmd)));
        assume(shmvar(gsConfig, sizeof(PlantConfig)));
        assume(shmvar(gsStatus, sizeof(ProcStatus)));
        assume(shmvar(gsGains, sizeof(GainData)));
        assume(shmvar(gsModes, sizeof(ModeData)));
        assume(shmvar(gsLimits, sizeof(LimitData)));
        assume(noncore(gsFeedback));
        assume(noncore(gsCmd));
        assume(noncore(gsConfig));
        assume(noncore(gsStatus));
        assume(noncore(gsGains));
        assume(noncore(gsModes));
        assume(noncore(gsLimits)) /***/
}

double clampCmd(double u)
{
    if (u > GS_MAX_CMD) {
        return GS_MAX_CMD;
    }
    if (u < -GS_MAX_CMD) {
        return -GS_MAX_CMD;
    }
    return u;
}

/* sample the plant into a local record and publish it for non-core */
void samplePlant(PlantState *st, unsigned int tick)
{
    st->y = hwReadPrimary();
    st->ydot = hwReadRate();
    st->yint = st->yint + st->y * (GS_PERIOD_BASE / 1000000.0);

    gsFeedback->primary = st->y;
    gsFeedback->secondary = st->ydot;
    gsFeedback->rate = st->ydot;
    gsFeedback->tick = tick;
}

void loadDefaultGains(double *out)
{
    out[0] = K_P_BUILTIN;
    out[1] = K_D_BUILTIN;
    out[2] = K_R_BUILTIN;
    out[3] = 0.0;
}

/*
 * Monitoring function for the uploaded gain set: each gain is range-
 * checked before it may replace a builtin gain. Within this function
 * the GainData region may be treated as core.
 */
void monitorGains(GainData *g, double *out)
/***SafeFlow Annotation
    assume(core(g, 0, sizeof(GainData))) /***/
{
    int i;
    double v;

    if (g->uploaded == 0) {
        return;
    }
    for (i = 0; i < GS_NGAINS; i++) {
        v = g->k[i];
        if (v >= 0.0 && v <= 50.0) {
            out[i] = v;
        }
    }
}

/*
 * Safe control law (PD + reference shaping). BUG: the primary
 * variable is read back from the shared FeedbackData region rather
 * than from the local PlantState sample -- the value flows into the
 * actuator output without monitoring.
 */
double computeSafeControl(PlantState *st, double *gains, double kp)
{
    double y;
    double u;

    y = gsFeedback->primary;
    u = -(kp * y + gains[1] * st->ydot + gains[2] * st->yint);
    return clampCmd(u);
}

/*
 * Monitoring function for the complex controller's command: freshness,
 * validity, range and one-step envelope recoverability.
 */
double monitorCmd(ActuationCmd *cmd, double fallback, PlantState *st)
/***SafeFlow Annotation
    assume(core(cmd, 0, sizeof(ActuationCmd))) /***/
{
    double u;
    double ny;
    double nydot;
    double v;
    unsigned int seq;

    if (cmd->valid == 0) {
        return fallback;
    }
    seq = cmd->seq;
    if (seq == lastSeq) {
        return fallback;
    }
    lastSeq = seq;
    u = cmd->u;
    if (u > GS_MAX_CMD || u < -GS_MAX_CMD) {
        return fallback;
    }
    ny = st->y + 0.02 * st->ydot;
    nydot = st->ydot + 0.02 * (1.4 * u - 0.8 * st->y);
    v = 0.9 * ny * ny + 0.6 * nydot * nydot;
    if (v > ENVELOPE_LIM) {
        return fallback;
    }
    return u;
}

/*
 * Restart supervision. BUG: the pid is an unmonitored non-core value;
 * a corrupted status block turns this into kill(<anything>).
 */
void superviseNoncore(unsigned int tick)
{
    int pid;

    if ((tick % SUPERVISE_DIV) != 0u) {
        return;
    }
    pid = gsStatus->ncPid;
    if (pid > 1) {
        kill(pid, SIGKILL_NUM);
    }
}

int main(void)
{
    PlantState st;
    double gains[GS_NGAINS];
    double gainTrack;
    double safeBase;
    double output;
    double dispSetpoint;
    double travelGuard;
    double boundSum;
    unsigned int period;
    unsigned int tick;
    int pt;
    int om;
    int sel;
    int rd;
    int i;

    initShm();
    st.y = 0.0;
    st.ydot = 0.0;
    st.yint = 0.0;
    tick = 0;
    lastSeq = 0;
    loadDefaultGains(gains);

    while (1) {
        samplePlant(&st, tick);

        /* gain source selection comes from the uploaded configuration */
        pt = gsConfig->plantType;
        if (pt == 1) {
            monitorGains(gsGains, gains);
            gainTrack = gains[0];
        } else {
            loadDefaultGains(gains);
            gainTrack = K_P_BUILTIN;
        }
        /***SafeFlow Annotation assert(safe(gainTrack)); /***/

        safeBase = computeSafeControl(&st, gains, gainTrack);

        /* manual mode bypasses the complex controller entirely */
        om = gsModes->opMode;
        if (om == 0) {
            output = safeBase;
        } else {
            output = monitorCmd(gsCmd, safeBase, &st);
        }
        /***SafeFlow Annotation assert(safe(output)); /***/
        hwWriteActuator(output);

        /* control-rate selection from the configuration region */
        rd = gsConfig->rateDiv;
        if (rd > 1) {
            period = GS_PERIOD_FAST;
        } else {
            period = GS_PERIOD_BASE;
        }
        /***SafeFlow Annotation assert(safe(period)); /***/

        /* operator display: setpoint readout */
        sel = gsModes->setpointSel;
        if (sel == 1) {
            dispSetpoint = GS_SP_ALT;
        } else {
            dispSetpoint = GS_SP_MAIN;
        }
        /***SafeFlow Annotation assert(safe(dispSetpoint)); /***/
        hwDisplaySetpoint(dispSetpoint);

        /* alarm guard band selection from the uploaded travel limits */
        boundSum = 0.0;
        for (i = 0; i < GS_NBOUNDS; i++) {
            boundSum = boundSum + gsLimits->bound[i];
        }
        if (boundSum > 2.0) {
            travelGuard = GS_GUARD_TIGHT;
        } else {
            travelGuard = GS_GUARD_WIDE;
        }
        /***SafeFlow Annotation assert(safe(travelGuard)); /***/
        hwAlarmThreshold(travelGuard);

        superviseNoncore(tick);

        tick = tick + 1u;
        hwWaitPeriod(period);
    }
    return 0;
}
