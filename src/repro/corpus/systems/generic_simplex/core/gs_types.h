/*
 * gs_types.h -- shared-memory layout of the generic Simplex system.
 *
 * Generic Simplex is a configurable core/complex controller pair for
 * simple plants: the plant model, gains, operating modes and limits
 * are all supplied through shared memory by non-core configuration
 * tools, which is why this system has many more shared regions (and,
 * as the paper reports, many more control-dependence false positives)
 * than the pendulum controllers.
 */
#ifndef GS_TYPES_H
#define GS_TYPES_H

#define GS_SHM_KEY     0x4753
#define GS_MAX_CMD     10.0
#define GS_PERIOD_BASE 20000
#define GS_PERIOD_FAST 5000
#define GS_SP_MAIN     0.0
#define GS_SP_ALT      0.25
#define GS_GUARD_WIDE  0.9
#define GS_GUARD_TIGHT 0.45
#define GS_NGAINS      4
#define GS_NBOUNDS     4
#define SIGKILL_NUM    9

/* plant feedback published by the core controller */
typedef struct {
    double primary;      /* primary controlled variable           */
    double secondary;    /* secondary (rate) variable             */
    double rate;         /* filtered derivative                   */
    unsigned int tick;
} FeedbackData;

/* actuation command computed by the complex controller */
typedef struct {
    double u;
    unsigned int seq;
    int valid;
} ActuationCmd;

/* plant configuration uploaded by the configuration tool */
typedef struct {
    int plantType;       /* 0 = builtin model, 1 = uploaded gains  */
    int rateDiv;         /* control-rate divider                   */
    int logLevel;
    double refGain;
} PlantConfig;

/* non-core process status */
typedef struct {
    int ncPid;
    unsigned int heartbeat;
    int state;
} ProcStatus;

/* gain set uploaded by the tuning tool */
typedef struct {
    double k[GS_NGAINS];
    int uploaded;
} GainData;

/* operating modes selected at the operator console */
typedef struct {
    int opMode;          /* 0 = manual (safe controller only)      */
    int setpointSel;     /* display setpoint selector              */
    int reserved;
} ModeData;

/* travel limits uploaded by the configuration tool */
typedef struct {
    double bound[GS_NBOUNDS];
    int sel;
} LimitData;

#endif /* GS_TYPES_H */
