/*
 * gs_hal.c -- hardware abstraction layer of the generic Simplex core.
 *
 * Generic Simplex drives whatever plant the lab wires to the analog
 * I/O card; the HAL only does calibration and saturation. Core-side
 * and trusted.
 */

#include "gs_types.h"

#define AIO_PRIMARY  0
#define AIO_RATE     1
#define AIO_ACTUATE  0
#define AIO_DISPLAY  1
#define AIO_ALARM    2

#define PRIMARY_SCALE 0.00061
#define RATE_SCALE    0.00153
#define CMD_SCALE     204.8

int aioFd;

extern int aioReadRaw(int fd, int channel);
extern void aioWriteRaw(int fd, int channel, int counts);

int halInit(const char *device)
{
    aioFd = open(device, 2);
    if (aioFd < 0) {
        return -1;
    }
    return 0;
}

double hwReadPrimary(void)
{
    int counts;
    counts = aioReadRaw(aioFd, AIO_PRIMARY);
    return counts * PRIMARY_SCALE;
}

double hwReadRate(void)
{
    int counts;
    counts = aioReadRaw(aioFd, AIO_RATE);
    return counts * RATE_SCALE;
}

void hwWriteActuator(double u)
{
    if (u > GS_MAX_CMD) {
        u = GS_MAX_CMD;
    }
    if (u < -GS_MAX_CMD) {
        u = -GS_MAX_CMD;
    }
    aioWriteRaw(aioFd, AIO_ACTUATE, (int) (u * CMD_SCALE));
}

void hwDisplaySetpoint(double sp)
{
    aioWriteRaw(aioFd, AIO_DISPLAY, (int) (sp * CMD_SCALE));
}

void hwAlarmThreshold(double guard)
{
    aioWriteRaw(aioFd, AIO_ALARM, (int) (guard * CMD_SCALE));
}

void hwWaitPeriod(unsigned int usec)
{
    usleep(usec);
}
