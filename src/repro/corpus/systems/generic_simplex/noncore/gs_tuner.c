/*
 * gs_tuner.c -- non-core configuration/tuning tool of the generic
 * Simplex system. Parses a plant description file and uploads plant
 * type, gains, rate, modes, and travel limits into shared memory.
 */

#include "../core/gs_types.h"

FeedbackData *gsFeedback;
ActuationCmd *gsCmd;
PlantConfig *gsConfig;
ProcStatus *gsStatus;
GainData *gsGains;
ModeData *gsModes;
LimitData *gsLimits;

void attachShm(void)
{
    void *base;
    int shmid;
    char *cursor;
    unsigned int total;

    total = sizeof(FeedbackData) + sizeof(ActuationCmd)
          + sizeof(PlantConfig) + sizeof(ProcStatus)
          + sizeof(GainData) + sizeof(ModeData) + sizeof(LimitData);
    shmid = shmget(GS_SHM_KEY, total, 0666);
    base = shmat(shmid, 0, 0);
    cursor = (char *) base;
    gsFeedback = (FeedbackData *) cursor;
    cursor = cursor + sizeof(FeedbackData);
    gsCmd = (ActuationCmd *) cursor;
    cursor = cursor + sizeof(ActuationCmd);
    gsConfig = (PlantConfig *) cursor;
    cursor = cursor + sizeof(PlantConfig);
    gsStatus = (ProcStatus *) cursor;
    cursor = cursor + sizeof(ProcStatus);
    gsGains = (GainData *) cursor;
    cursor = cursor + sizeof(GainData);
    gsModes = (ModeData *) cursor;
    cursor = cursor + sizeof(ModeData);
    gsLimits = (LimitData *) cursor;
}

int parsePlantFile(const char *path, double *gains, double *bounds,
                   int *plantType, int *rateDiv)
{
    FILE *fp;
    char line[128];
    double value;
    int field;

    fp = fopen(path, "r");
    if (fp == 0) {
        return -1;
    }
    field = 0;
    while (fgets(line, 128, fp) != 0) {
        if (line[0] == '#') {
            continue;
        }
        value = atof(line);
        if (field < GS_NGAINS) {
            gains[field] = value;
        } else if (field < GS_NGAINS + GS_NBOUNDS) {
            bounds[field - GS_NGAINS] = value;
        } else if (field == GS_NGAINS + GS_NBOUNDS) {
            *plantType = (int) value;
        } else if (field == GS_NGAINS + GS_NBOUNDS + 1) {
            *rateDiv = (int) value;
        }
        field = field + 1;
    }
    fclose(fp);
    return field;
}

int main(void)
{
    double gains[GS_NGAINS];
    double bounds[GS_NBOUNDS];
    int plantType;
    int rateDiv;
    int parsed;
    int i;

    attachShm();
    plantType = 0;
    rateDiv = 1;
    parsed = parsePlantFile("plant.cfg", gains, bounds, &plantType, &rateDiv);
    if (parsed < 0) {
        printf("gs-tuner: no plant.cfg, leaving builtin configuration\n");
        return 1;
    }

    for (i = 0; i < GS_NGAINS; i++) {
        gsGains->k[i] = gains[i];
    }
    gsGains->uploaded = 1;
    for (i = 0; i < GS_NBOUNDS; i++) {
        gsLimits->bound[i] = bounds[i];
    }
    gsLimits->sel = 0;
    gsConfig->plantType = plantType;
    gsConfig->rateDiv = rateDiv;
    gsConfig->logLevel = 1;
    gsConfig->refGain = 1.0;
    gsModes->opMode = 1;
    gsModes->setpointSel = 0;

    printf("gs-tuner: uploaded %d fields\n", parsed);
    return 0;
}
