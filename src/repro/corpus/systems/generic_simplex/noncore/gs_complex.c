/*
 * gs_complex.c -- non-core complex controller of the generic Simplex
 * system. Runs an adaptive PID whose gains drift with the observed
 * plant response; not verified, not trusted, monitored by the core.
 */

#include "../core/gs_types.h"

FeedbackData *gsFeedback;
ActuationCmd *gsCmd;
PlantConfig *gsConfig;
ProcStatus *gsStatus;
GainData *gsGains;
ModeData *gsModes;
LimitData *gsLimits;

double adaptKp;
double adaptKd;
double adaptKi;
double integ;
double prevErr;
unsigned int seqCounter;

void attachShm(void)
{
    void *base;
    int shmid;
    char *cursor;
    unsigned int total;

    total = sizeof(FeedbackData) + sizeof(ActuationCmd)
          + sizeof(PlantConfig) + sizeof(ProcStatus)
          + sizeof(GainData) + sizeof(ModeData) + sizeof(LimitData);
    shmid = shmget(GS_SHM_KEY, total, 0666);
    base = shmat(shmid, 0, 0);
    cursor = (char *) base;
    gsFeedback = (FeedbackData *) cursor;
    cursor = cursor + sizeof(FeedbackData);
    gsCmd = (ActuationCmd *) cursor;
    cursor = cursor + sizeof(ActuationCmd);
    gsConfig = (PlantConfig *) cursor;
    cursor = cursor + sizeof(PlantConfig);
    gsStatus = (ProcStatus *) cursor;
    cursor = cursor + sizeof(ProcStatus);
    gsGains = (GainData *) cursor;
    cursor = cursor + sizeof(GainData);
    gsModes = (ModeData *) cursor;
    cursor = cursor + sizeof(ModeData);
    gsLimits = (LimitData *) cursor;
}

double adaptiveControl(double y, double ydot)
{
    double err;
    double derr;
    double u;

    err = 0.0 - y;
    derr = (err - prevErr) / 0.02;
    integ = integ + err * 0.02;
    if (integ > 4.0) {
        integ = 4.0;
    }
    if (integ < -4.0) {
        integ = -4.0;
    }
    u = adaptKp * err + adaptKd * derr + adaptKi * integ;

    /* crude gain adaptation on the tracking error */
    if (err * err > 0.04) {
        adaptKp = adaptKp + 0.002;
    } else {
        adaptKp = adaptKp - 0.0005;
        if (adaptKp < 1.0) {
            adaptKp = 1.0;
        }
    }
    prevErr = err;
    return u;
}

int main(void)
{
    double y;
    double ydot;
    double u;
    unsigned int beat;

    attachShm();
    gsStatus->ncPid = getpid();
    gsStatus->state = 1;
    adaptKp = 2.0;
    adaptKd = 0.8;
    adaptKi = 0.1;
    integ = 0.0;
    prevErr = 0.0;
    seqCounter = 0;
    beat = 0;

    while (1) {
        y = gsFeedback->primary;
        ydot = gsFeedback->secondary;
        u = adaptiveControl(y, ydot);

        gsCmd->u = u;
        seqCounter = seqCounter + 1;
        gsCmd->seq = seqCounter;
        gsCmd->valid = 1;

        beat = beat + 1;
        gsStatus->heartbeat = beat;

        hwWaitPeriod(GS_PERIOD_BASE);
    }
    return 0;
}
