/*
 * ip_types.h -- shared-memory layout of the inverted pendulum Simplex
 * system (core controller <-> complex controller <-> operator UI).
 *
 * The core controller publishes sensor feedback in SensorData and
 * reads the complex (non-core) controller's output from CommandData.
 * StatusData and ConfigData are written by the non-core side (process
 * status / operator interface configuration).
 */
#ifndef IP_TYPES_H
#define IP_TYPES_H

#define IP_SHM_KEY      0x5350
#define IP_MAX_VOLTAGE  5.0
#define IP_PERIOD_US    10000
#define IP_TRACK_LIMIT  0.95
#define IP_ANGLE_LIMIT  0.35
#define SIGKILL_NUM     9

/* sensor feedback published by the core controller each period */
typedef struct {
    double trackPos;     /* cart position on the track [m]        */
    double trackVel;     /* cart velocity [m/s]                   */
    double angle;        /* pendulum angle from vertical [rad]    */
    double angVel;       /* pendulum angular velocity [rad/s]     */
    unsigned int tick;   /* period counter                        */
} SensorData;

/* control command computed by the non-core complex controller */
typedef struct {
    double voltage;      /* requested actuator voltage [-5V, +5V] */
    unsigned int seq;    /* sequence number for freshness         */
    int valid;           /* self-reported validity flag           */
} CommandData;

/* non-core process status block (written by the non-core side) */
typedef struct {
    int ncPid;           /* pid of the complex controller process */
    unsigned int heartbeat;
    double cpuLoad;
    int state;
} StatusData;

/* operator interface configuration (written by the UI process) */
typedef struct {
    int mode;            /* 0 = LQR baseline, 1 = energy shaping  */
    int verbosity;       /* 0 = quiet, 1 = periodic status prints */
    int uiRate;          /* UI refresh divider                    */
    int reserved[5];
} ConfigData;

#endif /* IP_TYPES_H */
