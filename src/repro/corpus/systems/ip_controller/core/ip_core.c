/*
 * ip_core.c -- core controller of the inverted pendulum Simplex system.
 *
 * The core controller keeps the pendulum upright no matter what the
 * non-core side does. Each period it:
 *
 *   1. samples the track/angle sensors and publishes them in shared
 *      memory for the complex controller and the operator UI;
 *   2. computes its own safe control output (LQR baseline, with an
 *      energy-shaping alternative selectable from the operator UI);
 *   3. runs the decision module: the complex controller's output is
 *      dispatched only if the run-time monitor can verify that the
 *      system stays inside the recoverable region (Simplex stability
 *      envelope), otherwise the safe output is used;
 *   4. supervises the non-core process through a heartbeat watchdog.
 *
 * SafeFlow annotations mark the shared-memory initialization, the
 * monitoring function, and the critical actuator output.
 */

#include "ip_types.h"

#define WATCHDOG_LIMIT 25
#define FILTER_ALPHA   0.15

/* LQR state-feedback gains for the linearized pendulum (from dlqr on
 * the cart-pole model; see the lab notebook for the derivation). */
#define K_TRACK   -2.4495
#define K_TRKVEL  -4.0931
#define K_ANGLE   31.9271
#define K_ANGVEL   5.9630

/* Lyapunov envelope P matrix (upper triangle), scaled so that
 * V(x) <= 1.0 is the verified recoverable region. */
#define P_00 0.82
#define P_01 0.31
#define P_11 1.74
#define P_22 2.45
#define P_23 0.52
#define P_33 0.91

/* shared-memory pointer variables (bound in initShm) */
SensorData *sensorBox;
CommandData *ncCmd;
StatusData *ncStatus;
ConfigData *uiConfig;

/* watchdog bookkeeping */
unsigned int lastHeartbeat;
int missedBeats;
unsigned int lastSeq;

/* filtered sensor state */
double filtTrackVel;
double filtAngVel;

/* hardware access (memory-mapped sensor/actuator, trusted library) */
extern double hwReadTrack(void);
extern double hwReadTrackVel(void);
extern double hwReadAngle(void);
extern double hwReadAngVel(void);
extern void hwWriteVoltage(double v);
extern void hwWaitPeriod(unsigned int usec);

/*
 * Shared-memory initialization. System V shared memory is untyped, so
 * the casts and pointer arithmetic below are only legal here: the
 * shminit annotation exempts this function from rules P2/P3 and the
 * shmvar post-conditions declare each region and its extent.
 */
void initShm(void)
/***SafeFlow Annotation
    shminit /***/
{
    void *base;
    int shmid;
    char *cursor;
    unsigned int total;

    total = sizeof(SensorData) + sizeof(CommandData)
          + sizeof(StatusData) + sizeof(ConfigData);
    shmid = shmget(IP_SHM_KEY, total, 0666);
    if (shmid < 0) {
        exit(1);
    }
    base = shmat(shmid, 0, 0);
    cursor = (char *) base;
    sensorBox = (SensorData *) cursor;
    cursor = cursor + sizeof(SensorData);
    ncCmd = (CommandData *) cursor;
    cursor = cursor + sizeof(CommandData);
    ncStatus = (StatusData *) cursor;
    cursor = cursor + sizeof(StatusData);
    uiConfig = (ConfigData *) cursor;
    /***SafeFlow Annotation
        assume(shmvar(sensorBox, sizeof(SensorData)));
        assume(shmvar(ncCmd, sizeof(CommandData)));
        assume(shmvar(ncStatus, sizeof(StatusData)));
        assume(shmvar(uiConfig, sizeof(ConfigData)));
        assume(noncore(sensorBox));
        assume(noncore(ncCmd));
        assume(noncore(ncStatus));
        assume(noncore(uiConfig)) /***/
}

/* first-order low-pass filter used on the velocity channels */
double lowpass(double state, double sample)
{
    return state + FILTER_ALPHA * (sample - state);
}

double clampVoltage(double v)
{
    if (v > IP_MAX_VOLTAGE) {
        return IP_MAX_VOLTAGE;
    }
    if (v < -IP_MAX_VOLTAGE) {
        return -IP_MAX_VOLTAGE;
    }
    return v;
}

/*
 * Sample the sensors into a local record and publish a copy in shared
 * memory for the non-core components. Publishing is write-only: the
 * core controller never trusts what comes back from this region.
 */
void readSensors(SensorData *out, unsigned int tick)
{
    out->trackPos = hwReadTrack();
    out->trackVel = lowpass(filtTrackVel, hwReadTrackVel());
    out->angle = hwReadAngle();
    out->angVel = lowpass(filtAngVel, hwReadAngVel());
    out->tick = tick;
    filtTrackVel = out->trackVel;
    filtAngVel = out->angVel;

    sensorBox->trackPos = out->trackPos;
    sensorBox->trackVel = out->trackVel;
    sensorBox->angle = out->angle;
    sensorBox->angVel = out->angVel;
    sensorBox->tick = out->tick;
}

/* baseline LQR state feedback: provably stabilizing, always available */
double lqrControl(SensorData *s)
{
    double u;
    u = K_TRACK * s->trackPos + K_TRKVEL * s->trackVel
      + K_ANGLE * s->angle + K_ANGVEL * s->angVel;
    return clampVoltage(-u);
}

/* energy-shaping controller: smoother near the upright equilibrium */
double energyControl(SensorData *s)
{
    double energy;
    double u;
    energy = 0.5 * s->angVel * s->angVel + 9.81 * (1.0 - cos(s->angle));
    u = K_ANGLE * s->angle + K_ANGVEL * s->angVel
      + 1.8 * energy * s->angVel * cos(s->angle);
    u = u + K_TRACK * s->trackPos;
    return clampVoltage(-u);
}

/*
 * Lyapunov recoverability check: would applying voltage v keep the
 * predicted next state inside the verified stability envelope
 * V(x) <= 1.0?  (One-step Euler prediction of the linearized model.)
 */
int recoverable(SensorData *s, double v)
{
    double dt;
    double nTrack;
    double nTrkVel;
    double nAngle;
    double nAngVel;
    double lyap;

    dt = IP_PERIOD_US / 1000000.0;
    nTrack = s->trackPos + dt * s->trackVel;
    nTrkVel = s->trackVel + dt * (0.98 * v - 0.31 * s->angle);
    nAngle = s->angle + dt * s->angVel;
    nAngVel = s->angVel + dt * (11.2 * s->angle - 2.68 * v);

    lyap = P_00 * nTrack * nTrack + 2.0 * P_01 * nTrack * nTrkVel
         + P_11 * nTrkVel * nTrkVel + P_22 * nAngle * nAngle
         + 2.0 * P_23 * nAngle * nAngVel + P_33 * nAngVel * nAngVel;

    if (lyap > 1.0) {
        return 0;
    }
    if (nTrack > IP_TRACK_LIMIT || nTrack < -IP_TRACK_LIMIT) {
        return 0;
    }
    if (nAngle > IP_ANGLE_LIMIT || nAngle < -IP_ANGLE_LIMIT) {
        return 0;
    }
    return 1;
}

/*
 * Decision module (monitoring function). Within this function the
 * command region may be treated as core: every value read from it is
 * checked for freshness, validity, range, and recoverability before
 * it can escape through the return value.
 */
double monitorCommand(CommandData *cmd, SensorData *sense, double fallback)
/***SafeFlow Annotation
    assume(core(cmd, 0, sizeof(CommandData))) /***/
{
    double v;
    unsigned int seq;

    if (cmd->valid == 0) {
        return fallback;
    }
    seq = cmd->seq;
    if (seq == lastSeq) {
        /* the complex controller missed its deadline: stale output */
        return fallback;
    }
    lastSeq = seq;
    v = cmd->voltage;
    if (v > IP_MAX_VOLTAGE || v < -IP_MAX_VOLTAGE) {
        return fallback;
    }
    if (!recoverable(sense, v)) {
        return fallback;
    }
    return v;
}

/*
 * Heartbeat watchdog over the complex controller process. NOTE: the
 * heartbeat is an unmonitored non-core value -- SafeFlow reports the
 * read; manual inspection classifies the resulting control dependence
 * of the actuator output as acceptable (the fallback path is safe).
 */
int checkWatchdog(void)
{
    unsigned int beat;

    beat = ncStatus->heartbeat;
    if (beat == lastHeartbeat) {
        missedBeats = missedBeats + 1;
    } else {
        missedBeats = 0;
        lastHeartbeat = beat;
    }
    return missedBeats < WATCHDOG_LIMIT;
}

/*
 * Restart supervision: when the watchdog trips, the core controller
 * kills the complex controller so the init scripts can restart it.
 * BUG (found by SafeFlow): the pid comes straight from shared memory
 * without monitoring -- a corrupted status block can make the core
 * component kill an arbitrary process, including itself.
 */
void superviseNoncore(void)
{
    int pid;

    pid = ncStatus->ncPid;
    if (pid > 1) {
        kill(pid, SIGKILL_NUM);
    }
}

/* periodic status output on the operator console */
void logStatus(SensorData *s, double u, unsigned int tick)
{
    int chatty;
    double shmAngle;
    double shmTrack;
    double load;

    chatty = uiConfig->verbosity;
    if (chatty > 0 && (tick % 100u) == 0u) {
        shmAngle = sensorBox->angle;
        shmTrack = sensorBox->trackPos;
        load = ncStatus->cpuLoad;
        printf("[ip-core] tick=%u angle=%f track=%f u=%f load=%f\n",
               tick, shmAngle, shmTrack, u, load);
    }
}

int main(void)
{
    SensorData sensors;
    double safeLqr;
    double safeEnergy;
    double safeCmd;
    double output;
    int mode;
    int alive;
    unsigned int tick;

    initShm();
    tick = 0;
    lastHeartbeat = 0;
    missedBeats = 0;
    lastSeq = 0;
    filtTrackVel = 0.0;
    filtAngVel = 0.0;

    while (1) {
        readSensors(&sensors, tick);

        /* both safe controllers are always computed so the switch is
         * glitch-free; the selection comes from the operator UI */
        safeLqr = lqrControl(&sensors);
        safeEnergy = energyControl(&sensors);
        mode = uiConfig->mode;
        if (mode == 1) {
            safeCmd = safeEnergy;
        } else {
            safeCmd = safeLqr;
        }

        alive = checkWatchdog();
        if (alive) {
            output = monitorCommand(ncCmd, &sensors, safeCmd);
        } else {
            superviseNoncore();
            output = safeCmd;
        }

        /***SafeFlow Annotation assert(safe(output)); /***/
        hwWriteVoltage(output);
        logStatus(&sensors, output, tick);

        tick = tick + 1u;
        hwWaitPeriod(IP_PERIOD_US);
    }
    return 0;
}
