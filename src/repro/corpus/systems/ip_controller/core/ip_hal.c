/*
 * ip_hal.c -- hardware abstraction layer of the IP core controller.
 *
 * Talks to the sensor/actuator card through the character device
 * exposed by the lab's PCI DAQ driver. Everything here is core-side
 * and trusted: the raw channels are calibrated, range-limited, and
 * converted to SI units before the control code sees them.
 */

#include "ip_types.h"

#define DAQ_READ_CHANNEL  0x4401
#define DAQ_WRITE_CHANNEL 0x4402

#define CH_TRACK   0
#define CH_TRKVEL  1
#define CH_ANGLE   2
#define CH_ANGVEL  3
#define CH_MOTOR   0

/* calibration from the rig's commissioning sheet */
#define TRACK_SCALE   0.00048   /* counts -> m     */
#define TRKVEL_SCALE  0.00122   /* counts -> m/s   */
#define ANGLE_SCALE   0.00015   /* counts -> rad   */
#define ANGVEL_SCALE  0.00084   /* counts -> rad/s */
#define MOTOR_SCALE   409.6     /* volts -> counts */

int daqFd;
int halFaultCount;

extern int daqReadRaw(int fd, int channel);
extern void daqWriteRaw(int fd, int channel, int counts);

int halInit(const char *device)
{
    daqFd = open(device, 2);
    if (daqFd < 0) {
        return -1;
    }
    ioctl(daqFd, DAQ_READ_CHANNEL, 0);
    halFaultCount = 0;
    return 0;
}

double halScale(int counts, double scale, double limit)
{
    double value;
    value = counts * scale;
    if (value > limit) {
        halFaultCount = halFaultCount + 1;
        return limit;
    }
    if (value < -limit) {
        halFaultCount = halFaultCount + 1;
        return -limit;
    }
    return value;
}

double hwReadTrack(void)
{
    return halScale(daqReadRaw(daqFd, CH_TRACK), TRACK_SCALE, 1.2);
}

double hwReadTrackVel(void)
{
    return halScale(daqReadRaw(daqFd, CH_TRKVEL), TRKVEL_SCALE, 3.0);
}

double hwReadAngle(void)
{
    return halScale(daqReadRaw(daqFd, CH_ANGLE), ANGLE_SCALE, 3.2);
}

double hwReadAngVel(void)
{
    return halScale(daqReadRaw(daqFd, CH_ANGVEL), ANGVEL_SCALE, 12.0);
}

void hwWriteVoltage(double v)
{
    int counts;
    if (v > IP_MAX_VOLTAGE) {
        v = IP_MAX_VOLTAGE;
    }
    if (v < -IP_MAX_VOLTAGE) {
        v = -IP_MAX_VOLTAGE;
    }
    counts = (int) (v * MOTOR_SCALE);
    daqWriteRaw(daqFd, CH_MOTOR, counts);
}

void hwWaitPeriod(unsigned int usec)
{
    usleep(usec);
}
