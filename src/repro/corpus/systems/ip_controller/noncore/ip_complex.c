/*
 * ip_complex.c -- non-core complex controller of the IP Simplex system.
 *
 * Computes a jitter-minimizing control output using a model-predictive
 * sweep over candidate voltages, publishes it in shared memory, and
 * maintains the heartbeat/status block. This component is NOT part of
 * the core subsystem: it is not analyzed by SafeFlow and the core
 * controller never trusts its output without monitoring.
 */

#include "../core/ip_types.h"

#define MPC_HORIZON 12
#define MPC_CANDIDATES 21

SensorData *sensorBox;
CommandData *ncCmd;
StatusData *ncStatus;
ConfigData *uiConfig;

unsigned int seqCounter;

void attachShm(void)
{
    void *base;
    int shmid;
    char *cursor;
    unsigned int total;

    total = sizeof(SensorData) + sizeof(CommandData)
          + sizeof(StatusData) + sizeof(ConfigData);
    shmid = shmget(IP_SHM_KEY, total, 0666);
    base = shmat(shmid, 0, 0);
    cursor = (char *) base;
    sensorBox = (SensorData *) cursor;
    cursor = cursor + sizeof(SensorData);
    ncCmd = (CommandData *) cursor;
    cursor = cursor + sizeof(CommandData);
    ncStatus = (StatusData *) cursor;
    cursor = cursor + sizeof(StatusData);
    uiConfig = (ConfigData *) cursor;
}

/* one-step cart-pole prediction used by the rollout */
void predict(double state[4], double v, double out[4])
{
    double dt;
    dt = IP_PERIOD_US / 1000000.0;
    out[0] = state[0] + dt * state[1];
    out[1] = state[1] + dt * (0.98 * v - 0.31 * state[2]);
    out[2] = state[2] + dt * state[3];
    out[3] = state[3] + dt * (11.2 * state[2] - 2.68 * v);
}

double rolloutCost(double state[4], double v)
{
    double cur[4];
    double nxt[4];
    double cost;
    int step;
    int i;

    for (i = 0; i < 4; i++) {
        cur[i] = state[i];
    }
    cost = 0.0;
    for (step = 0; step < MPC_HORIZON; step++) {
        predict(cur, v, nxt);
        cost = cost + 8.0 * nxt[2] * nxt[2] + 0.9 * nxt[3] * nxt[3]
             + 0.5 * nxt[0] * nxt[0] + 0.05 * v * v;
        for (i = 0; i < 4; i++) {
            cur[i] = nxt[i];
        }
    }
    return cost;
}

double mpcControl(double state[4])
{
    double best;
    double bestCost;
    double v;
    double cost;
    int k;

    best = 0.0;
    bestCost = 1.0e18;
    for (k = 0; k < MPC_CANDIDATES; k++) {
        v = -IP_MAX_VOLTAGE + k * (2.0 * IP_MAX_VOLTAGE / (MPC_CANDIDATES - 1));
        cost = rolloutCost(state, v);
        if (cost < bestCost) {
            bestCost = cost;
            best = v;
        }
    }
    return best;
}

int main(void)
{
    double state[4];
    double u;
    unsigned int beat;

    attachShm();
    ncStatus->ncPid = getpid();
    ncStatus->state = 1;
    beat = 0;
    seqCounter = 0;

    while (1) {
        state[0] = sensorBox->trackPos;
        state[1] = sensorBox->trackVel;
        state[2] = sensorBox->angle;
        state[3] = sensorBox->angVel;

        u = mpcControl(state);

        ncCmd->voltage = u;
        seqCounter = seqCounter + 1;
        ncCmd->seq = seqCounter;
        ncCmd->valid = 1;

        beat = beat + 1;
        ncStatus->heartbeat = beat;
        ncStatus->cpuLoad = 0.42;

        hwWaitPeriod(IP_PERIOD_US);
    }
    return 0;
}
