/*
 * ip_ui.c -- operator interface of the IP Simplex system (non-core).
 *
 * Displays the pendulum state from shared memory and lets the operator
 * flip the safe-controller mode and verbosity. Writes only to the
 * ConfigData region; everything else is read-only for display.
 */

#include "../core/ip_types.h"

SensorData *sensorBox;
CommandData *ncCmd;
StatusData *ncStatus;
ConfigData *uiConfig;

void attachShm(void)
{
    void *base;
    int shmid;
    char *cursor;
    unsigned int total;

    total = sizeof(SensorData) + sizeof(CommandData)
          + sizeof(StatusData) + sizeof(ConfigData);
    shmid = shmget(IP_SHM_KEY, total, 0666);
    base = shmat(shmid, 0, 0);
    cursor = (char *) base;
    sensorBox = (SensorData *) cursor;
    cursor = cursor + sizeof(SensorData);
    ncCmd = (CommandData *) cursor;
    cursor = cursor + sizeof(CommandData);
    ncStatus = (StatusData *) cursor;
    cursor = cursor + sizeof(StatusData);
    uiConfig = (ConfigData *) cursor;
}

void drawGauge(double value, double limit)
{
    int cols;
    int mid;
    int pos;
    int i;

    cols = 41;
    mid = cols / 2;
    pos = mid + (int) (value / limit * mid);
    if (pos < 0) {
        pos = 0;
    }
    if (pos >= cols) {
        pos = cols - 1;
    }
    for (i = 0; i < cols; i++) {
        if (i == pos) {
            printf("#");
        } else if (i == mid) {
            printf("|");
        } else {
            printf("-");
        }
    }
    printf("\n");
}

int main(void)
{
    int key;

    attachShm();
    uiConfig->mode = 0;
    uiConfig->verbosity = 1;
    uiConfig->uiRate = 10;

    while (1) {
        printf("angle  ");
        drawGauge(sensorBox->angle, IP_ANGLE_LIMIT);
        printf("track  ");
        drawGauge(sensorBox->trackPos, IP_TRACK_LIMIT);
        printf("cmd=%f seq=%u beat=%u\n",
               ncCmd->voltage, ncCmd->seq, ncStatus->heartbeat);

        key = getchar();
        if (key == 'm') {
            uiConfig->mode = 1 - uiConfig->mode;
        } else if (key == 'v') {
            uiConfig->verbosity = 1 - uiConfig->verbosity;
        } else if (key == 'q') {
            break;
        }
    }
    return 0;
}
