/*
 * ip_core.c -- core controller of the inverted pendulum Simplex system.
 * (original, pre-SafeFlow version: the decision logic is inlined in the
 * main loop. Porting to SafeFlow separated it into a monitoring
 * function so the assume(core(...)) annotation could be applied at
 * function granularity -- see core/ip_core.c.)
 */

#include "../core/ip_types.h"

#define WATCHDOG_LIMIT 25
#define FILTER_ALPHA   0.15

#define K_TRACK   -2.4495
#define K_TRKVEL  -4.0931
#define K_ANGLE   31.9271
#define K_ANGVEL   5.9630

#define P_00 0.82
#define P_01 0.31
#define P_11 1.74
#define P_22 2.45
#define P_23 0.52
#define P_33 0.91

SensorData *sensorBox;
CommandData *ncCmd;
StatusData *ncStatus;
ConfigData *uiConfig;

unsigned int lastHeartbeat;
int missedBeats;
unsigned int lastSeq;

double filtTrackVel;
double filtAngVel;

extern double hwReadTrack(void);
extern double hwReadTrackVel(void);
extern double hwReadAngle(void);
extern double hwReadAngVel(void);
extern void hwWriteVoltage(double v);
extern void hwWaitPeriod(unsigned int usec);

void initShm(void)
{
    void *base;
    int shmid;
    char *cursor;
    unsigned int total;

    total = sizeof(SensorData) + sizeof(CommandData)
          + sizeof(StatusData) + sizeof(ConfigData);
    shmid = shmget(IP_SHM_KEY, total, 0666);
    if (shmid < 0) {
        exit(1);
    }
    base = shmat(shmid, 0, 0);
    cursor = (char *) base;
    sensorBox = (SensorData *) cursor;
    cursor = cursor + sizeof(SensorData);
    ncCmd = (CommandData *) cursor;
    cursor = cursor + sizeof(CommandData);
    ncStatus = (StatusData *) cursor;
    cursor = cursor + sizeof(StatusData);
    uiConfig = (ConfigData *) cursor;
}

double lowpass(double state, double sample)
{
    return state + FILTER_ALPHA * (sample - state);
}

double clampVoltage(double v)
{
    if (v > IP_MAX_VOLTAGE) {
        return IP_MAX_VOLTAGE;
    }
    if (v < -IP_MAX_VOLTAGE) {
        return -IP_MAX_VOLTAGE;
    }
    return v;
}

void readSensors(SensorData *out, unsigned int tick)
{
    out->trackPos = hwReadTrack();
    out->trackVel = lowpass(filtTrackVel, hwReadTrackVel());
    out->angle = hwReadAngle();
    out->angVel = lowpass(filtAngVel, hwReadAngVel());
    out->tick = tick;
    filtTrackVel = out->trackVel;
    filtAngVel = out->angVel;

    sensorBox->trackPos = out->trackPos;
    sensorBox->trackVel = out->trackVel;
    sensorBox->angle = out->angle;
    sensorBox->angVel = out->angVel;
    sensorBox->tick = out->tick;
}

double lqrControl(SensorData *s)
{
    double u;
    u = K_TRACK * s->trackPos + K_TRKVEL * s->trackVel
      + K_ANGLE * s->angle + K_ANGVEL * s->angVel;
    return clampVoltage(-u);
}

double energyControl(SensorData *s)
{
    double energy;
    double u;
    energy = 0.5 * s->angVel * s->angVel + 9.81 * (1.0 - cos(s->angle));
    u = K_ANGLE * s->angle + K_ANGVEL * s->angVel
      + 1.8 * energy * s->angVel * cos(s->angle);
    u = u + K_TRACK * s->trackPos;
    return clampVoltage(-u);
}

int recoverable(SensorData *s, double v)
{
    double dt;
    double nTrack;
    double nTrkVel;
    double nAngle;
    double nAngVel;
    double lyap;

    dt = IP_PERIOD_US / 1000000.0;
    nTrack = s->trackPos + dt * s->trackVel;
    nTrkVel = s->trackVel + dt * (0.98 * v - 0.31 * s->angle);
    nAngle = s->angle + dt * s->angVel;
    nAngVel = s->angVel + dt * (11.2 * s->angle - 2.68 * v);

    lyap = P_00 * nTrack * nTrack + 2.0 * P_01 * nTrack * nTrkVel
         + P_11 * nTrkVel * nTrkVel + P_22 * nAngle * nAngle
         + 2.0 * P_23 * nAngle * nAngVel + P_33 * nAngVel * nAngVel;

    if (lyap > 1.0) {
        return 0;
    }
    if (nTrack > IP_TRACK_LIMIT || nTrack < -IP_TRACK_LIMIT) {
        return 0;
    }
    if (nAngle > IP_ANGLE_LIMIT || nAngle < -IP_ANGLE_LIMIT) {
        return 0;
    }
    return 1;
}

int checkWatchdog(void)
{
    unsigned int beat;

    beat = ncStatus->heartbeat;
    if (beat == lastHeartbeat) {
        missedBeats = missedBeats + 1;
    } else {
        missedBeats = 0;
        lastHeartbeat = beat;
    }
    return missedBeats < WATCHDOG_LIMIT;
}

void superviseNoncore(void)
{
    int pid;

    pid = ncStatus->ncPid;
    if (pid > 1) {
        kill(pid, SIGKILL_NUM);
    }
}

void logStatus(SensorData *s, double u, unsigned int tick)
{
    int chatty;
    double shmAngle;
    double shmTrack;
    double load;

    chatty = uiConfig->verbosity;
    if (chatty > 0 && (tick % 100u) == 0u) {
        shmAngle = sensorBox->angle;
        shmTrack = sensorBox->trackPos;
        load = ncStatus->cpuLoad;
        printf("[ip-core] tick=%u angle=%f track=%f u=%f load=%f\n",
               tick, shmAngle, shmTrack, u, load);
    }
}

int main(void)
{
    SensorData sensors;
    double safeLqr;
    double safeEnergy;
    double safeCmd;
    double output;
    double v;
    unsigned int seq;
    int mode;
    int alive;
    unsigned int tick;

    initShm();
    tick = 0;
    lastHeartbeat = 0;
    missedBeats = 0;
    lastSeq = 0;
    filtTrackVel = 0.0;
    filtAngVel = 0.0;

    while (1) {
        readSensors(&sensors, tick);

        safeLqr = lqrControl(&sensors);
        safeEnergy = energyControl(&sensors);
        mode = uiConfig->mode;
        if (mode == 1) {
            safeCmd = safeEnergy;
        } else {
            safeCmd = safeLqr;
        }

        alive = checkWatchdog();
        if (alive) {
            /* decision logic inlined in the control loop */
            output = safeCmd;
            if (ncCmd->valid != 0) {
                seq = ncCmd->seq;
                if (seq != lastSeq) {
                    lastSeq = seq;
                    v = ncCmd->voltage;
                    if (v <= IP_MAX_VOLTAGE && v >= -IP_MAX_VOLTAGE) {
                        if (recoverable(&sensors, v)) {
                            output = v;
                        }
                    }
                }
            }
        } else {
            superviseNoncore();
            output = safeCmd;
        }

        hwWriteVoltage(output);
        logStatus(&sensors, output, tick);

        tick = tick + 1u;
        hwWaitPeriod(IP_PERIOD_US);
    }
    return 0;
}
