"""Frontend recovery ladder: tiered parse/preprocess salvage.

Real embedded control C rarely parses under the strict mini-
preprocessor + pycparser pipeline: it carries GNU attributes, inline
asm, ``#include <stdint.h>``, vendor pragmas.  PR 5's degraded mode can
only record such a unit as *lost* — every unresolved external then
smears top taint program-wide.  This module turns "unit lost" into
"unit salvaged with audited provenance" via an ordered ladder of
recovery tiers, each attempted only after the previous one fails:

1. ``strict``  — today's path, byte-identical, no rewrites;
2. ``gnu``     — token-level normalization of GNU dialect
   (``__attribute__((...))``, ``__extension__``, ``typeof``, inline
   asm, statement expressions).  When the optional ``wild`` extra
   (pycparserext) is installed, its ``GnuCParser`` also replaces the
   strict parser from this tier on, tolerating residual GNU syntax;
3. ``prelude`` — ``#include <...>`` of common libc/embedded headers
   resolves against the bundled declaration stubs of
   :mod:`repro.frontend.fakelibc`; missing local includes are skipped
   and recorded; compat typedefs the unit uses but never defines are
   injected as extra prelude lines;
4. ``cleanup`` — heuristic source cleanup (PCD-SVD-style): unknown
   directives and ``#error``/``#warning`` lines blanked, CR/CRLF
   normalized, non-ASCII bytes spaced out;
5. ``salvage`` — per-function salvage: the definition enclosing the
   parse error is dropped to a declaration (recorded as a degraded
   function), bounded retries.

Fail-closed discipline (the whole point):

- every rewrite is **line-count preserving**, so the preprocessor line
  map stays valid and diagnostics remain line-accurate;
- a salvaged unit gets one ``KIND_RECOVERED`` record carrying the tier
  name and the exact edits, and *every function the unit defines* is
  degraded — the value-flow engine treats calls into them as
  unmonitored non-core flow, so relative to strict mode a verdict can
  only go ``pass → degraded``, never ``degraded → pass``;
- the enabled-tier set, the tier format version and the active GNU
  parser strategy fold into ``config_fingerprint`` and the IR-cache
  keys, so caches/summary stores/incremental segments never replay
  across recovery-config changes;
- a tier that *crashes* (including injected
  :func:`repro.resilience.faults.on_recovery_tier` chaos faults)
  counts as that tier failing, never as a driver error.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import pycparser

from ..degrade import KIND_FUNCTION, KIND_RECOVERED, KIND_UNIT, DegradedUnit
from ..errors import ParseError, PreprocessorError
from ..ir.source import SourceLocation
from ..resilience.faults import on_recovery_tier
from .fakelibc import COMPAT_TYPEDEFS
from .parser import (
    BUILTIN_PRELUDE,
    PRELUDE_LINES,
    ParsedUnit,
    PlyParseError,
    parse_preprocessed,
)
from .preprocessor import PreprocessedSource, Preprocessor, _skip_string

__all__ = [
    "RECOVERY_FORMAT_VERSION",
    "TIER_STRICT",
    "TIER_GNU",
    "TIER_PRELUDE",
    "TIER_CLEANUP",
    "TIER_SALVAGE",
    "TIER_ORDER",
    "DEFAULT_TIERS",
    "RecoveredUnit",
    "frontend_unit",
    "normalize_tiers",
    "recovery_fingerprint",
    "gnu_parser_class",
    "normalize_gnu",
    "cleanup_source",
]

#: bump whenever a tier's rewrite rules change observably — folded into
#: config_fingerprint and the IR-cache keys so recovered programs built
#: under one rule set are never replayed under another
RECOVERY_FORMAT_VERSION = 1

TIER_STRICT = "strict"
TIER_GNU = "gnu"
TIER_PRELUDE = "prelude"
TIER_CLEANUP = "cleanup"
TIER_SALVAGE = "salvage"

#: ladder order; ``strict`` is always attempted first and is never part
#: of a tier spec
TIER_ORDER = (TIER_GNU, TIER_PRELUDE, TIER_CLEANUP, TIER_SALVAGE)

#: what ``--recover`` (no argument) enables
DEFAULT_TIERS = TIER_ORDER

#: per-unit cap on salvage rounds (each round drops one definition)
MAX_SALVAGE_ROUNDS = 25

#: cap on the edits recorded in one unit's provenance record
MAX_RECORDED_EDITS = 8

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


# ----------------------------------------------------------------------
# tier spec handling
# ----------------------------------------------------------------------

def normalize_tiers(spec) -> Tuple[str, ...]:
    """Canonical tier tuple from a spec (iterable or comma string).

    ``"all"`` (or ``True``) means every tier; unknown names raise
    ``ValueError``. The result is in ladder order regardless of the
    input order, so two configs enabling the same set fingerprint
    identically.
    """
    if not spec:
        return ()
    if spec is True or spec == "all":
        return DEFAULT_TIERS
    if isinstance(spec, str):
        names = [s.strip() for s in spec.split(",") if s.strip()]
    else:
        names = [str(s).strip() for s in spec if str(s).strip()]
    chosen = set()
    for name in names:
        if name == "all":
            chosen.update(TIER_ORDER)
            continue
        if name not in TIER_ORDER:
            raise ValueError(
                f"unknown recovery tier {name!r} "
                f"(expected one of: {', '.join(TIER_ORDER)}, all)"
            )
        chosen.add(name)
    return tuple(t for t in TIER_ORDER if t in chosen)


_GNU_PARSER_CLASS = None
_GNU_PARSER_PROBED = False


def gnu_parser_class():
    """pycparserext's ``GnuCParser`` when the ``wild`` extra is
    installed, else ``None`` (the token-level rewriter carries the GNU
    tier alone)."""
    global _GNU_PARSER_CLASS, _GNU_PARSER_PROBED
    if not _GNU_PARSER_PROBED:
        _GNU_PARSER_PROBED = True
        try:  # pragma: no cover - exercised only with the wild extra
            from pycparserext.ext_c_parser import GnuCParser

            _GNU_PARSER_CLASS = GnuCParser
        except Exception:
            _GNU_PARSER_CLASS = None
    return _GNU_PARSER_CLASS


def gnu_strategy() -> str:
    """Active GNU-tier parser strategy (part of every recovery key)."""
    return "ext" if gnu_parser_class() is not None else "tokenstrip"


def recovery_fingerprint(tiers: Sequence[str]) -> str:
    """Cache-key component for an enabled-tier set.

    Folds the tier format version and the GNU parser strategy in:
    flipping any of the three gives caches, summary stores and
    incremental segments a fresh namespace.
    """
    order = tuple(t for t in TIER_ORDER if t in tuple(tiers))
    if not order:
        return ""
    return (f"v{RECOVERY_FORMAT_VERSION}:"
            + ",".join(order) + f":gnu={gnu_strategy()}")


# ----------------------------------------------------------------------
# tier 2: GNU dialect normalization (token level, line preserving)
# ----------------------------------------------------------------------

_GNU_DROP = {"__extension__", "__restrict__", "__restrict", "_Noreturn"}
_GNU_REWRITE = {
    "__inline__": "inline",
    "__inline": "inline",
    "__signed__": "signed",
    "__const__": "const",
    "__volatile__": "volatile",
}
_GNU_ATTR = {"__attribute__", "__attribute", "__declspec"}
_GNU_ASM = {"asm", "__asm__", "__asm"}
_GNU_TYPEOF = {"typeof", "__typeof__", "__typeof"}
_GNU_ASM_QUALS = {"volatile", "__volatile__", "goto", "inline"}


def _match_pair(text: str, i: int, open_ch: str, close_ch: str
                ) -> Optional[int]:
    """Index of the ``close_ch`` matching ``text[i] == open_ch``,
    skipping string/char literals and comments; ``None`` if unbalanced.
    """
    depth = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in "\"'":
            i = _skip_string(text, i)
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            i = n if j < 0 else j + 2
            continue
        if ch == open_ch:
            depth += 1
        elif ch == close_ch:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return None


def _skip_layout(text: str, i: int) -> int:
    """Index of the next non-whitespace character at or after ``i``."""
    n = len(text)
    while i < n and text[i] in " \t\n":
        i += 1
    return i


def _split_top_comma(s: str) -> Tuple[str, Optional[str]]:
    """Split at the first bracket-level-0 comma (strings opaque)."""
    depth = 0
    i = 0
    n = len(s)
    while i < n:
        ch = s[i]
        if ch in "\"'":
            i = _skip_string(s, i)
            continue
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif ch == "," and depth == 0:
            return s[:i], s[i + 1:]
        i += 1
    return s, None


def normalize_gnu(text: str) -> Tuple[str, List[Tuple[int, str]]]:
    """Strip/rewrite GNU-dialect constructs, preserving line counts.

    Returns ``(new_text, edits)`` where each edit is
    ``(1-based source line, description)``.  String/char literals and
    comments (hence SafeFlow annotations) are never touched.
    """
    out: List[str] = []
    edits: List[Tuple[int, str]] = []
    i = 0
    n = len(text)
    line = 1

    def emit_span(span: str, replacement: str, desc: str) -> None:
        nonlocal line
        newlines = span.count("\n")
        out.append(replacement + "\n" * newlines)
        edits.append((line, desc))
        line += newlines

    while i < n:
        ch = text[i]
        if ch == "\n":
            out.append(ch)
            line += 1
            i += 1
            continue
        if ch in "\"'":
            j = _skip_string(text, i)
            out.append(text[i:j])
            line += text.count("\n", i, j)
            i = j
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(text[i:j])
            i = j
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append(text[i:j])
            line += text.count("\n", i, j)
            i = j
            continue
        if ch == "(":
            # GNU statement expression: ({ stmts; value; })
            k = _skip_layout(text, i + 1)
            if k < n and text[k] == "{":
                close = _match_pair(text, k, "{", "}")
                if close is not None:
                    m2 = _skip_layout(text, close + 1)
                    if m2 < n and text[m2] == ")":
                        emit_span(text[i:m2 + 1], "(0)",
                                  "statement expression rewritten to (0)")
                        i = m2 + 1
                        continue
            out.append(ch)
            i += 1
            continue
        if ch.isalpha() or ch == "_":
            m = _IDENT_RE.match(text, i)
            word = m.group()
            end = m.end()
            if word in _GNU_DROP:
                emit_span(word, "", f"stripped {word}")
                i = end
                continue
            if word in _GNU_REWRITE:
                emit_span(word, _GNU_REWRITE[word],
                          f"{word} rewritten to {_GNU_REWRITE[word]}")
                i = end
                continue
            if word in _GNU_ATTR:
                k = _skip_layout(text, end)
                if k < n and text[k] == "(":
                    close = _match_pair(text, k, "(", ")")
                    if close is not None:
                        emit_span(text[i:close + 1], "",
                                  f"stripped {word}((...))")
                        i = close + 1
                        continue
                emit_span(word, "", f"stripped {word}")
                i = end
                continue
            if word in _GNU_TYPEOF:
                k = _skip_layout(text, end)
                if k < n and text[k] == "(":
                    close = _match_pair(text, k, "(", ")")
                    if close is not None:
                        emit_span(text[i:close + 1], "int",
                                  f"{word}(...) rewritten to int")
                        i = close + 1
                        continue
                out.append(word)
                i = end
                continue
            if word in _GNU_ASM:
                k = _skip_layout(text, end)
                while k < n:
                    q = _IDENT_RE.match(text, k)
                    if q is not None and q.group() in _GNU_ASM_QUALS:
                        k = _skip_layout(text, q.end())
                        continue
                    break
                if k < n and text[k] == "(":
                    close = _match_pair(text, k, "(", ")")
                    if close is not None:
                        emit_span(text[i:close + 1], "",
                                  "stripped inline asm")
                        i = close + 1
                        continue
                if k < n and text[k] == "{":
                    close = _match_pair(text, k, "{", "}")
                    if close is not None:
                        emit_span(text[i:close + 1], ";",
                                  "stripped asm block")
                        i = close + 1
                        continue
                out.append(word)
                i = end
                continue
            if word == "__builtin_expect":
                k = _skip_layout(text, end)
                if k < n and text[k] == "(":
                    close = _match_pair(text, k, "(", ")")
                    if close is not None:
                        inner = text[k + 1:close]
                        first, second = _split_top_comma(inner)
                        if second is not None:
                            span = text[i:close + 1]
                            repl = "(" + first.strip() + ")"
                            pad = span.count("\n") - repl.count("\n")
                            out.append(repl + "\n" * max(0, pad))
                            edits.append((
                                line,
                                "__builtin_expect(e, c) rewritten to (e)",
                            ))
                            line += span.count("\n")
                            i = close + 1
                            continue
                out.append(word)
                i = end
                continue
            if word in ("__builtin_unreachable", "__builtin_trap"):
                k = _skip_layout(text, end)
                if k < n and text[k] == "(":
                    close = _match_pair(text, k, "(", ")")
                    if close is not None:
                        emit_span(text[i:close + 1], "0",
                                  f"{word}() rewritten to 0")
                        i = close + 1
                        continue
                out.append(word)
                i = end
                continue
            out.append(word)
            i = end
            continue
        out.append(ch)
        i += 1
    return "".join(out), edits


# ----------------------------------------------------------------------
# tier 4: heuristic source cleanup (PCD-SVD-style)
# ----------------------------------------------------------------------

#: directives the mini preprocessor understands and that must survive
_KEEP_DIRECTIVES = frozenset({
    "include", "define", "undef", "if", "ifdef", "ifndef",
    "elif", "else", "endif", "pragma", "line",
})

_DIRECTIVE_RE = re.compile(r"\s*#\s*([A-Za-z_][A-Za-z0-9_]*)")


def _comment_state(line: str, in_comment: bool) -> bool:
    """Whether a block comment is still open after ``line``."""
    i = 0
    n = len(line)
    while i < n:
        if in_comment:
            j = line.find("*/", i)
            if j < 0:
                return True
            in_comment = False
            i = j + 2
            continue
        ch = line[i]
        if ch in "\"'":
            i = _skip_string(line, i)
            continue
        if ch == "/" and i + 1 < n and line[i + 1] == "/":
            return False
        if ch == "/" and i + 1 < n and line[i + 1] == "*":
            in_comment = True
            i += 2
            continue
        i += 1
    return in_comment


def cleanup_source(text: str) -> Tuple[str, List[Tuple[int, str]]]:
    """Last-resort regex cleanup, line-count preserving.

    Blanks directives the mini preprocessor cannot process (and
    ``#error``/``#warning``, which it can only fail on), normalizes
    CR/CRLF line endings, and spaces out non-ASCII bytes.  Lines inside
    block comments are never touched, so annotations survive intact.
    """
    edits: List[Tuple[int, str]] = []
    if "\r" in text:
        text = text.replace("\r\n", "\n").replace("\r", "\n")
        edits.append((0, "normalized CR/CRLF line endings"))
    lines = text.split("\n")
    out_lines: List[str] = []
    in_comment = False
    nonascii_lines = 0
    for idx, ln in enumerate(lines, start=1):
        if not in_comment:
            m = _DIRECTIVE_RE.match(ln)
            if m is not None and m.group(1) not in _KEEP_DIRECTIVES:
                edits.append((idx, f"blanked directive #{m.group(1)}"))
                out_lines.append("")
                continue
        new = "".join(ch if ord(ch) < 128 else " " for ch in ln)
        if new != ln:
            nonascii_lines += 1
        out_lines.append(new)
        in_comment = _comment_state(new, in_comment)
    if nonascii_lines:
        edits.append((0, f"spaced out non-ASCII bytes on "
                         f"{nonascii_lines} line(s)"))
    return "\n".join(out_lines), edits


# ----------------------------------------------------------------------
# the ladder driver
# ----------------------------------------------------------------------

@dataclass
class RecoveredUnit:
    """Per-unit outcome of the recovery ladder.

    ``unit`` is ``None`` when every tier failed (the unit is lost,
    exactly as in plain degraded mode).  ``tier`` names the winning
    tier (``"strict"`` for a clean parse with the ladder enabled,
    ``None`` with the ladder disabled or when the unit is lost).
    ``attempts``/``successes`` count per-tier outcomes and are only
    populated while the ladder is enabled.
    """

    unit: Optional[ParsedUnit]
    annotations: List = field(default_factory=list)
    degraded: List[DegradedUnit] = field(default_factory=list)
    tier: Optional[str] = None
    attempts: Dict[str, int] = field(default_factory=dict)
    successes: Dict[str, int] = field(default_factory=dict)


def _unit_lost(path: str, exc: BaseException) -> DegradedUnit:
    if isinstance(exc, RecursionError):
        cause = "recursion limit exceeded while front-ending the unit"
        location = SourceLocation(path, 0)
    else:
        cause = getattr(exc, "message", None) or str(exc)
        location = getattr(exc, "location", None) or SourceLocation(path, 0)
    return DegradedUnit(
        kind=KIND_UNIT, name=path, cause=cause, location=location,
    )


def _fmt_edits(entries: List[Tuple[int, str]]) -> List[str]:
    out = []
    for line, desc in entries:
        out.append(f"{desc} at line {line}" if line else desc)
    return out


def _cap_edits(edits: List[str]) -> Tuple[str, ...]:
    if len(edits) <= MAX_RECORDED_EDITS:
        return tuple(edits)
    extra = len(edits) - MAX_RECORDED_EDITS
    return tuple(edits[:MAX_RECORDED_EDITS] + [f"... {extra} more edits"])


def _compat_prelude(pp_text: str) -> List[Tuple[str, str]]:
    """Compat typedefs for names the unit uses but never defines.

    Names already declared by the builtin prelude are excluded; the
    textual ``typedef`` scan is heuristic, which is acceptable because
    the unit is analyzed fail-closed regardless.
    """
    chosen: List[Tuple[str, str]] = []
    for name in sorted(COMPAT_TYPEDEFS):
        if re.search(rf"\btypedef\b[^;\n]*\b{name}\b", BUILTIN_PRELUDE):
            continue
        if not re.search(rf"\b{name}\b", pp_text):
            continue
        if re.search(rf"\btypedef\b[^;\n]*\b{name}\b\s*;", pp_text):
            continue
        chosen.append((name, COMPAT_TYPEDEFS[name]))
    return chosen


def _preprocess(text, filename, include_dirs, defines, *,
                fake_headers, missing_ok):
    """One preprocessor run plus the prelude-tier provenance notes."""
    pp = Preprocessor(
        include_dirs=list(include_dirs),
        predefined=dict(defines or {}),
        recover=True,
        fake_headers=fake_headers,
        ignore_missing_includes=missing_ok,
    )
    source = pp.process_text(text, filename=filename)
    notes: List[str] = []
    extra_prelude = ""
    if fake_headers:
        for name in dict.fromkeys(source.fake_included):
            notes.append(
                f"resolved #include <{name}> against bundled declarations")
        for name in dict.fromkeys(source.skipped_includes):
            notes.append(f'skipped missing #include "{name}"')
        compat = _compat_prelude(source.text)
        if compat:
            extra_prelude = "\n".join(decl for _, decl in compat) + "\n"
            names = ", ".join(name for name, _ in compat)
            notes.append(f"injected compat typedefs: {names}")
    return source, extra_prelude, notes


def _error_output_line(message: str) -> int:
    """Absolute (prelude-inclusive) line of a pycparser error message."""
    for part in message.split(":"):
        if part.strip().isdigit():
            return int(part.strip())
    return -1


def _function_spans(work: str) -> List[Tuple[str, int, int, int]]:
    """Top-level function-definition spans in preprocessed text.

    Returns ``(name, name_index, brace_index, close_index)`` per
    definition. The scan is brace-depth based and string-aware; the
    input has no comments (the preprocessor stripped them).
    """
    spans: List[Tuple[str, int, int, int]] = []
    i = 0
    n = len(work)
    depth = 0
    while i < n:
        ch = work[i]
        if ch in "\"'":
            i = _skip_string(work, i)
            continue
        if ch == "{":
            depth += 1
            i += 1
            continue
        if ch == "}":
            depth = max(0, depth - 1)
            i += 1
            continue
        if ch == "(" and depth == 0:
            close = _match_pair(work, i, "(", ")")
            if close is None:
                return spans
            j = i - 1
            while j >= 0 and work[j] in " \t\n":
                j -= 1
            end_id = j
            while j >= 0 and (work[j].isalnum() or work[j] == "_"):
                j -= 1
            name = work[j + 1:end_id + 1]
            k = _skip_layout(work, close + 1)
            if name and name[0].isidentifier() and k < n and work[k] == "{":
                body_close = _match_pair(work, k, "{", "}")
                if body_close is None:
                    return spans
                spans.append((name, j + 1, k, body_close))
                i = body_close + 1
                continue
            i = close + 1
            continue
        i += 1
    return spans


def _salvage(text, filename, include_dirs, defines, *,
             fake_headers, missing_ok, parser_factory):
    """Tier 5: drop offending definitions to declarations, retry."""
    source, extra_prelude, notes = _preprocess(
        text, filename, include_dirs, defines,
        fake_headers=fake_headers, missing_ok=missing_ok,
    )
    extra_lines = extra_prelude.count("\n")
    work = source.text
    records: List[DegradedUnit] = []
    for _ in range(MAX_SALVAGE_ROUNDS):
        full = BUILTIN_PRELUDE + extra_prelude + work
        parser = (parser_factory() if parser_factory is not None
                  else pycparser.CParser())
        try:
            ast = parser.parse(full, filename=filename)
        except PlyParseError as exc:
            absolute = _error_output_line(str(exc))
            out_line = absolute - PRELUDE_LINES - extra_lines
            if out_line <= 0:
                raise ParseError(
                    f"salvage tier: parse error outside the unit text: "
                    f"{exc}", SourceLocation(filename, 0))
            err_idx_line = out_line  # 1-based line into ``work``
            span = None
            for name, name_idx, brace_idx, close_idx in _function_spans(work):
                start_line = work.count("\n", 0, name_idx) + 1
                end_line = work.count("\n", 0, close_idx) + 1
                if start_line <= err_idx_line <= end_line:
                    span = (name, name_idx, brace_idx, close_idx,
                            start_line)
                    break
            if span is None:
                raise ParseError(
                    f"salvage tier: parse error at output line "
                    f"{out_line} is not inside a function definition: "
                    f"{exc}",
                    source.origin(out_line))
            name, name_idx, brace_idx, close_idx, start_line = span
            body = work[brace_idx:close_idx + 1]
            work = (work[:brace_idx] + ";" + "\n" * body.count("\n")
                    + work[close_idx + 1:])
            loc = source.origin(start_line)
            records.append(DegradedUnit(
                kind=KIND_FUNCTION,
                name=name,
                cause=("definition dropped to a declaration by the "
                       "salvage tier (parse failure inside it)"),
                location=loc,
                function=name,
                tier=TIER_SALVAGE,
            ))
            notes = notes + [f"dropped definition of {name}() "
                             f"to a declaration"]
            continue
        except RecursionError:
            raise ParseError(
                "salvage tier: parser recursion limit exceeded",
                SourceLocation(filename, 0))
        source.text = work
        unit = ParsedUnit(ast, source, filename,
                          extra_prelude_lines=extra_lines)
        return unit, source, records, notes
    raise ParseError(
        f"salvage tier: more than {MAX_SALVAGE_ROUNDS} definitions "
        f"would need dropping", SourceLocation(filename, 0))


def _attempt(text, filename, include_dirs, defines, *,
             fake_headers, missing_ok, parser_factory):
    """Preprocess + parse one accumulated ladder state."""
    source, extra_prelude, notes = _preprocess(
        text, filename, include_dirs, defines,
        fake_headers=fake_headers, missing_ok=missing_ok,
    )
    unit = parse_preprocessed(
        source, name=filename, extra_prelude=extra_prelude,
        parser_factory=parser_factory,
    )
    return unit, source, [], notes


def frontend_unit(
    text: str,
    filename: str,
    include_dirs: Sequence[str] = (),
    defines: Optional[Dict[str, str]] = None,
    recover: bool = False,
    tiers: Sequence[str] = (),
) -> RecoveredUnit:
    """Front-end one translation unit through the recovery ladder.

    With no enabled tiers this is byte-identical to the historical
    path: strict preprocess + parse, exceptions propagating when
    ``recover`` is off and a lost-unit record when it is on.
    """
    order = [t for t in TIER_ORDER if t in tuple(tiers)]
    attempts: Dict[str, int] = {}
    successes: Dict[str, int] = {}
    counting = bool(order)

    if counting:
        attempts[TIER_STRICT] = 1
    strict_exc: Optional[BaseException] = None
    try:
        on_recovery_tier(TIER_STRICT)
        pp = Preprocessor(
            include_dirs=list(include_dirs),
            predefined=dict(defines or {}),
            recover=recover,
        )
        source = pp.process_text(text, filename=filename)
        unit = parse_preprocessed(source, name=filename)
    except (PreprocessorError, ParseError, RecursionError) as exc:
        strict_exc = exc
    except Exception as exc:
        if not order:  # no ladder: exactly the historical behavior
            raise
        strict_exc = exc
    if strict_exc is None:
        if counting:
            successes[TIER_STRICT] = 1
        return RecoveredUnit(
            unit=unit, annotations=source.annotations,
            degraded=list(source.degraded),
            tier=TIER_STRICT if counting else None,
            attempts=attempts, successes=successes,
        )

    strict_cause = getattr(strict_exc, "message", None) or str(strict_exc)
    strict_loc = (getattr(strict_exc, "location", None)
                  or SourceLocation(filename, 0))

    state_text = text
    cum_edits: List[str] = []
    fake_headers = False
    missing_ok = False
    parser_factory = None
    for tier in order:
        attempts[tier] = 1
        try:
            on_recovery_tier(tier)
            if tier == TIER_GNU:
                new_text, edits = normalize_gnu(state_text)
                factory = gnu_parser_class()
                if not edits and factory is None:
                    raise ParseError(
                        "gnu tier: no GNU constructs to normalize",
                        SourceLocation(filename, 0))
                state_text = new_text
                cum_edits.extend(_fmt_edits(edits))
                parser_factory = factory
                unit, source, extra_records, notes = _attempt(
                    state_text, filename, include_dirs, defines,
                    fake_headers=fake_headers, missing_ok=missing_ok,
                    parser_factory=parser_factory,
                )
                if parser_factory is not None:
                    notes = notes + ["parsed with pycparserext GnuCParser"]
            elif tier == TIER_PRELUDE:
                fake_headers = True
                missing_ok = True
                unit, source, extra_records, notes = _attempt(
                    state_text, filename, include_dirs, defines,
                    fake_headers=fake_headers, missing_ok=missing_ok,
                    parser_factory=parser_factory,
                )
            elif tier == TIER_CLEANUP:
                new_text, edits = cleanup_source(state_text)
                if not edits:
                    raise ParseError(
                        "cleanup tier: nothing to clean up",
                        SourceLocation(filename, 0))
                state_text = new_text
                cum_edits.extend(_fmt_edits(edits))
                unit, source, extra_records, notes = _attempt(
                    state_text, filename, include_dirs, defines,
                    fake_headers=fake_headers, missing_ok=missing_ok,
                    parser_factory=parser_factory,
                )
            else:  # TIER_SALVAGE
                unit, source, extra_records, notes = _salvage(
                    state_text, filename, include_dirs, defines,
                    fake_headers=fake_headers, missing_ok=missing_ok,
                    parser_factory=parser_factory,
                )
        except Exception:
            # any failure — parse error, preprocessor error, or an
            # injected/real crash — counts as this tier failing and the
            # ladder falls through to the next tier
            continue
        successes[tier] = 1
        records = list(source.degraded) + list(extra_records)
        records.append(DegradedUnit(
            kind=KIND_RECOVERED,
            name=filename,
            cause=(f"unit salvaged by the recovery ladder "
                   f"(strict front end failed: {strict_cause})"),
            location=strict_loc,
            tier=tier,
            edits=_cap_edits(cum_edits + notes),
        ))
        return RecoveredUnit(
            unit=unit, annotations=source.annotations, degraded=records,
            tier=tier, attempts=attempts, successes=successes,
        )

    if not recover:
        raise strict_exc
    return RecoveredUnit(
        unit=None, annotations=[], degraded=[_unit_lost(filename, strict_exc)],
        tier=None, attempts=attempts, successes=successes,
    )
