"""pycparser wrapper: builtin prelude, parsing, coordinate translation.

System headers are *not* textually included (the mini preprocessor
skips ``#include <...>``); instead a builtin prelude declares the
library functions embedded control code uses — notably the System V
shared-memory calls the paper's initialization analysis recognizes
(``shmget``/``shmat``/``shmdt``), ``kill`` (whose pid argument is
critical data, §3.1), and the socket calls of the §3.4.3 extension.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import pycparser
from pycparser import c_ast
try:  # pycparser < 3 keeps ParseError in plyparser; >= 3 in c_parser
    from pycparser.plyparser import ParseError as PlyParseError
except ImportError:  # pragma: no cover - depends on installed version
    from pycparser.c_parser import ParseError as PlyParseError

from ..errors import ParseError
from ..ir.source import SourceLocation
from .preprocessor import PreprocessedSource

BUILTIN_PRELUDE = """
typedef unsigned int size_t;
typedef int ssize_t;
typedef int pid_t;
typedef int key_t;
typedef long time_t;
typedef long off_t;
typedef unsigned int mode_t;
typedef struct __sf_file FILE;
extern FILE *stdin;
extern FILE *stdout;
extern FILE *stderr;

extern int shmget(key_t key, size_t size, int shmflg);
extern void *shmat(int shmid, const void *shmaddr, int shmflg);
extern int shmdt(const void *shmaddr);
extern int shmctl(int shmid, int cmd, void *buf);

extern int semget(key_t key, int nsems, int semflg);
extern int semop(int semid, void *sops, size_t nsops);
extern int semctl(int semid, int semnum, int cmd, int arg);

extern int kill(pid_t pid, int sig);
extern pid_t getpid(void);
extern pid_t fork(void);
extern void exit(int status);
extern void abort(void);
extern unsigned int sleep(unsigned int seconds);
extern int usleep(unsigned int usec);

extern int printf(const char *format, ...);
extern int fprintf(FILE *stream, const char *format, ...);
extern int sprintf(char *str, const char *format, ...);
extern int snprintf(char *str, size_t size, const char *format, ...);
extern int scanf(const char *format, ...);
extern int fscanf(FILE *stream, const char *format, ...);
extern int sscanf(const char *str, const char *format, ...);
extern FILE *fopen(const char *path, const char *mode);
extern int fclose(FILE *stream);
extern char *fgets(char *s, int size, FILE *stream);
extern int fflush(FILE *stream);
extern int puts(const char *s);
extern int getchar(void);

extern void *malloc(size_t size);
extern void *calloc(size_t nmemb, size_t size);
extern void free(void *ptr);
extern int atoi(const char *nptr);
extern double atof(const char *nptr);
extern long strtol(const char *nptr, char **endptr, int base);
extern void *memcpy(void *dest, const void *src, size_t n);
extern void *memset(void *s, int c, size_t n);
extern int memcmp(const void *s1, const void *s2, size_t n);
extern char *strcpy(char *dest, const char *src);
extern char *strncpy(char *dest, const char *src, size_t n);
extern int strcmp(const char *s1, const char *s2);
extern int strncmp(const char *s1, const char *s2, size_t n);
extern size_t strlen(const char *s);
extern char *strcat(char *dest, const char *src);
extern int abs(int j);
extern int rand(void);
extern void srand(unsigned int seed);

extern double fabs(double x);
extern float fabsf(float x);
extern double sqrt(double x);
extern double sin(double x);
extern double cos(double x);
extern double tan(double x);
extern double atan(double x);
extern double atan2(double y, double x);
extern double exp(double x);
extern double log(double x);
extern double pow(double x, double y);
extern double floor(double x);
extern double ceil(double x);
extern double fmod(double x, double y);

extern int socket(int domain, int type, int protocol);
extern ssize_t recv(int sockfd, void *buf, size_t len, int flags);
extern ssize_t send(int sockfd, const void *buf, size_t len, int flags);
extern int close(int fd);
extern ssize_t read(int fd, void *buf, size_t count);
extern ssize_t write(int fd, const void *buf, size_t count);
extern int open(const char *pathname, int flags, ...);
extern int ioctl(int fd, unsigned long request, ...);

extern time_t time(time_t *t);
extern int gettimeofday(void *tv, void *tz);

extern void __safeflow_assert_safe();
extern void __safeflow_init_check();
"""

PRELUDE_LINES = BUILTIN_PRELUDE.count("\n")

#: library functions declared by the prelude (treated as externals by
#: the call graph; their names never appear as analysis targets).
BUILTIN_FUNCTIONS = frozenset(
    line.split("(")[0].split()[-1].lstrip("*")
    for line in BUILTIN_PRELUDE.splitlines()
    if line.startswith("extern") and "(" in line
)

#: functions that deallocate/detach shared memory (rule P1)
SHM_DEALLOCATORS = frozenset({"shmdt", "shmctl"})

#: functions whose return value is a fresh shared-memory mapping
SHM_ALLOCATORS = frozenset({"shmat"})


class ParsedUnit:
    """A parsed translation unit plus its line-provenance map.

    ``extra_prelude_lines`` counts prelude lines injected *beyond* the
    builtin prelude (the recovery ladder's prelude tier prepends compat
    typedefs); coordinate translation subtracts both, so diagnostics
    stay line-accurate however much the prelude grew.
    """

    def __init__(
        self,
        ast: c_ast.FileAST,
        source: PreprocessedSource,
        name: str = "<unit>",
        extra_prelude_lines: int = 0,
    ):
        self.ast = ast
        self.source = source
        self.name = name
        self.extra_prelude_lines = extra_prelude_lines

    def origin(self, coord) -> SourceLocation:
        """Translate a pycparser coord into an original source location."""
        if coord is None:
            return SourceLocation(self.name, 0)
        extra = getattr(self, "extra_prelude_lines", 0)
        line = coord.line - PRELUDE_LINES - extra
        if line <= 0:
            return SourceLocation("<builtin>", coord.line)
        loc = self.source.origin(line)
        return SourceLocation(loc.filename, loc.line, getattr(coord, "column", 0))


def parse_preprocessed(
    source: PreprocessedSource,
    name: str = "<unit>",
    extra_prelude: str = "",
    parser_factory=None,
) -> ParsedUnit:
    """Parse preprocessed C (with the builtin prelude prepended).

    ``extra_prelude`` is additional declaration text the recovery
    ladder injects between the builtin prelude and the unit; it must be
    newline-terminated. ``parser_factory`` overrides the parser class
    (the GNU recovery tier substitutes pycparserext's ``GnuCParser``
    when the ``wild`` extra is installed).
    """
    if extra_prelude and not extra_prelude.endswith("\n"):
        extra_prelude += "\n"
    extra_lines = extra_prelude.count("\n")
    full_text = BUILTIN_PRELUDE + extra_prelude + source.text
    parser = parser_factory() if parser_factory is not None else (
        pycparser.CParser())
    try:
        ast = parser.parse(full_text, filename=name)
    except PlyParseError as exc:
        message = str(exc)
        location = _location_from_message(message, source, name, extra_lines)
        raise ParseError(f"C parse error: {message}", location)
    except RecursionError:
        raise ParseError(
            "C parse error: expression nesting exceeds the parser's "
            "recursion limit",
            SourceLocation(name, 0),
        )
    except Exception as exc:  # pycparser internals (lexer asserts, ...)
        raise ParseError(
            f"C parse error: parser failure: {exc}",
            SourceLocation(name, 0),
        )
    return ParsedUnit(ast, source, name, extra_prelude_lines=extra_lines)


def _location_from_message(
    message: str, source: PreprocessedSource, name: str,
    extra_prelude_lines: int = 0,
) -> Optional[SourceLocation]:
    # pycparser errors look like "<file>:LINE:COL: before: tok"
    parts = message.split(":")
    for i, part in enumerate(parts):
        if part.strip().isdigit():
            line = int(part.strip()) - PRELUDE_LINES - extra_prelude_lines
            if line > 0:
                return source.origin(line)
            return SourceLocation("<builtin>", int(part.strip()))
    return SourceLocation(name, 0)


def parse_files(
    paths: List[str],
    include_dirs: Tuple[str, ...] = (),
    predefined=None,
) -> List[ParsedUnit]:
    """Preprocess and parse several C files as one program."""
    from .preprocessor import Preprocessor

    units = []
    for path in paths:
        pp = Preprocessor(include_dirs=list(include_dirs), predefined=dict(predefined or {}))
        source = pp.process_file(path)
        units.append(parse_preprocessed(source, name=path))
    return units
