"""Lowering from the pycparser AST to the SSA IR.

The lowering covers the C subset the paper's restricted language
targets (§3.2): functions, globals, structs/unions/enums, pointers,
fixed-size arrays, the full expression grammar including short-circuit
logicals and the conditional operator, and structured control flow
(``if``/``while``/``do``/``for``/``switch``/``break``/``continue``).
``goto`` is outside the subset and is rejected with a clear error.

Every local starts as an ``alloca``; :func:`repro.ir.ssa.build_ssa`
then promotes scalars whose address never escapes, which recovers the
flow-sensitivity the value-flow phase relies on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from pycparser import c_ast

from ..degrade import KIND_CONSTRUCT, KIND_FUNCTION, DegradedUnit
from ..errors import IRError, LoweringError
from ..ir import (
    Alloca,
    Argument,
    ArrayType,
    BinOp,
    BasicBlock,
    Call,
    Cast,
    Cmp,
    CondBranch,
    Constant,
    CType,
    FieldAddr,
    FloatType,
    Function,
    FunctionType,
    GlobalVariable,
    IndexAddr,
    Instruction,
    IntType,
    Jump,
    Load,
    Module,
    PointerType,
    Ret,
    Store,
    StructType,
    UnaryOp,
    UndefValue,
    Value,
    VoidType,
    build_ssa,
)
from ..ir import types as T
from ..ir.source import SourceLocation
from .parser import ParsedUnit

_PRIMITIVES: Dict[Tuple[str, ...], CType] = {}


def _register_primitives() -> None:
    entries = [
        (("void",), T.VOID),
        (("_Bool",), T.BOOL),
        (("char",), T.CHAR),
        (("signed", "char"), T.CHAR),
        (("unsigned", "char"), T.UCHAR),
        (("short",), T.SHORT),
        (("short", "int"), T.SHORT),
        (("signed", "short"), T.SHORT),
        (("signed", "short", "int"), T.SHORT),
        (("unsigned", "short"), T.USHORT),
        (("unsigned", "short", "int"), T.USHORT),
        (("int",), T.INT),
        (("signed",), T.INT),
        (("signed", "int"), T.INT),
        (("unsigned",), T.UINT),
        (("unsigned", "int"), T.UINT),
        (("long",), T.LONG),
        (("long", "int"), T.LONG),
        (("signed", "long"), T.LONG),
        (("signed", "long", "int"), T.LONG),
        (("unsigned", "long"), T.ULONG),
        (("unsigned", "long", "int"), T.ULONG),
        (("long", "long"), T.LONGLONG),
        (("long", "long", "int"), T.LONGLONG),
        (("signed", "long", "long"), T.LONGLONG),
        (("unsigned", "long", "long"), T.ULONGLONG),
        (("unsigned", "long", "long", "int"), T.ULONGLONG),
        (("float",), T.FLOAT),
        (("double",), T.DOUBLE),
        (("long", "double"), T.LONGDOUBLE),
    ]
    for names, type_ in entries:
        _PRIMITIVES[tuple(sorted(names))] = type_


_register_primitives()


class TypeBuilder:
    """Builds IR types from pycparser declaration nodes."""

    def __init__(self, module: Module, unit: ParsedUnit):
        self.module = module
        self.unit = unit
        self.typedefs: Dict[str, CType] = {}
        self.enum_constants: Dict[str, int] = {}
        self._anon_counter = 0

    def sizeof_name(self, type_name: str) -> int:
        """Resolve ``sizeof(name)`` for annotation size expressions."""
        name = type_name.strip()
        if name.endswith("*"):
            return 4
        for prefix in ("struct ", "union "):
            if name.startswith(prefix):
                tag = name[len(prefix):].strip()
                key = prefix + tag
                struct = self.module.structs.get(key)
                if struct is None:
                    raise LoweringError(f"unknown type in sizeof: {name!r}")
                return struct.sizeof()
        if name in self.typedefs:
            return self.typedefs[name].sizeof()
        primitive = _PRIMITIVES.get(tuple(sorted(name.split())))
        if primitive is not None:
            return primitive.sizeof()
        struct = self.module.structs.get("struct " + name)
        if struct is not None:
            return struct.sizeof()
        raise LoweringError(f"unknown type in sizeof: {name!r}")

    # ------------------------------------------------------------------

    def from_node(self, node) -> CType:
        if isinstance(node, c_ast.TypeDecl):
            return self.from_node(node.type)
        if isinstance(node, c_ast.IdentifierType):
            return self._identifier_type(node)
        if isinstance(node, c_ast.PtrDecl):
            return PointerType(self.from_node(node.type))
        if isinstance(node, c_ast.ArrayDecl):
            elem = self.from_node(node.type)
            count = None
            if node.dim is not None:
                count = self.eval_const(node.dim)
            return ArrayType(elem, count)
        if isinstance(node, (c_ast.Struct, c_ast.Union)):
            return self._struct_type(node)
        if isinstance(node, c_ast.Enum):
            self._register_enum(node)
            return T.INT
        if isinstance(node, c_ast.FuncDecl):
            return self._function_type(node)
        if isinstance(node, c_ast.Typename):
            return self.from_node(node.type)
        raise LoweringError(
            f"unsupported type construct {type(node).__name__}",
            self.unit.origin(getattr(node, "coord", None)),
        )

    def _identifier_type(self, node: c_ast.IdentifierType) -> CType:
        names = tuple(sorted(node.names))
        if names in _PRIMITIVES:
            return _PRIMITIVES[names]
        if len(node.names) == 1 and node.names[0] in self.typedefs:
            return self.typedefs[node.names[0]]
        raise LoweringError(
            f"unknown type name {' '.join(node.names)!r}",
            self.unit.origin(node.coord),
        )

    def _struct_type(self, node) -> StructType:
        is_union = isinstance(node, c_ast.Union)
        tag = node.name
        if tag is None:
            self._anon_counter += 1
            tag = f"__anon{self._anon_counter}"
        struct = self.module.get_struct(tag, is_union)
        if node.decls is not None and not struct.is_complete:
            fields = []
            for decl in node.decls:
                ftype = self.from_node(decl.type)
                fields.append((decl.name or f"__pad{len(fields)}", ftype))
            struct.set_fields(fields)
        return struct

    def _register_enum(self, node: c_ast.Enum) -> None:
        if node.values is None:
            return
        next_value = 0
        for enumerator in node.values.enumerators:
            if enumerator.value is not None:
                next_value = self.eval_const(enumerator.value)
            self.enum_constants[enumerator.name] = next_value
            next_value += 1

    def _function_type(self, node: c_ast.FuncDecl) -> FunctionType:
        ret = self.from_node(node.type)
        params: List[CType] = []
        varargs = False
        if node.args is None:
            return FunctionType(ret, [], varargs=True)  # K&R empty list
        for param in node.args.params:
            if isinstance(param, c_ast.EllipsisParam):
                varargs = True
                continue
            ptype = self.from_node(param.type)
            if isinstance(ptype, VoidType):
                continue  # f(void)
            if isinstance(ptype, ArrayType):
                ptype = PointerType(ptype.element)  # parameter decay
            if isinstance(ptype, FunctionType):
                ptype = PointerType(ptype)
            params.append(ptype)
        return FunctionType(ret, params, varargs)

    # ------------------------------------------------------------------

    def eval_const(self, node) -> int:
        """Evaluate an integer constant expression (array dims, cases)."""
        if isinstance(node, c_ast.Constant):
            if node.type in ("int", "long int", "unsigned int", "long long int"):
                return _parse_int_literal(node.value)
            if node.type == "char":
                return _parse_char_literal(node.value)
            raise LoweringError(
                f"non-integer constant {node.value!r} in constant expression",
                self.unit.origin(node.coord),
            )
        if isinstance(node, c_ast.ID):
            if node.name in self.enum_constants:
                return self.enum_constants[node.name]
            raise LoweringError(
                f"{node.name!r} is not a constant", self.unit.origin(node.coord)
            )
        if isinstance(node, c_ast.UnaryOp):
            if node.op == "-":
                return -self.eval_const(node.expr)
            if node.op == "+":
                return self.eval_const(node.expr)
            if node.op == "~":
                return ~self.eval_const(node.expr)
            if node.op == "!":
                return int(not self.eval_const(node.expr))
            if node.op == "sizeof":
                return self.from_node(node.expr.type if isinstance(
                    node.expr, c_ast.Typename) else node.expr).sizeof()
        if isinstance(node, c_ast.BinaryOp):
            left = self.eval_const(node.left)
            right = self.eval_const(node.right)
            ops = {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: left // right if right else 0,
                "%": lambda: left % right if right else 0,
                "<<": lambda: left << right,
                ">>": lambda: left >> right,
                "&": lambda: left & right,
                "|": lambda: left | right,
                "^": lambda: left ^ right,
                "==": lambda: int(left == right),
                "!=": lambda: int(left != right),
                "<": lambda: int(left < right),
                ">": lambda: int(left > right),
                "<=": lambda: int(left <= right),
                ">=": lambda: int(left >= right),
            }
            if node.op in ops:
                return ops[node.op]()
        if isinstance(node, c_ast.Cast):
            return self.eval_const(node.expr)
        raise LoweringError(
            f"unsupported constant expression {type(node).__name__}",
            self.unit.origin(getattr(node, "coord", None)),
        )


def _parse_int_literal(text: str) -> int:
    cleaned = text.rstrip("uUlL")
    lowered = cleaned.lower()
    if lowered.startswith(("0x", "0b")):
        return int(cleaned, 0)
    if cleaned.startswith("0") and len(cleaned) > 1:
        return int(cleaned, 8)  # C octal literal
    return int(cleaned, 10)


def _parse_char_literal(text: str) -> int:
    body = text[1:-1]
    escapes = {
        "\\n": "\n", "\\t": "\t", "\\r": "\r", "\\0": "\0",
        "\\\\": "\\", "\\'": "'", '\\"': '"',
    }
    if body in escapes:
        return ord(escapes[body])
    if body.startswith("\\x"):
        return int(body[2:], 16)
    if body.startswith("\\") and body[1:].isdigit():
        return int(body[1:], 8)
    return ord(body[0]) if body else 0


class _LoopContext:
    __slots__ = ("break_block", "continue_block")

    def __init__(self, break_block: BasicBlock, continue_block: Optional[BasicBlock]):
        self.break_block = break_block
        self.continue_block = continue_block


class ModuleLowerer:
    """Lowers one or more parsed units into a single IR module."""

    def __init__(self, module_name: str = "program", run_ssa: bool = True,
                 recover: bool = False, module: Optional[Module] = None):
        #: lowering into an existing module (``module=``) is the
        #: incremental front end's surgical unit swap: the edited
        #: unit's new functions bind call targets against the live
        #: function objects of every other (unchanged) unit
        self.module = module if module is not None else Module(module_name)
        self.run_ssa = run_ssa
        #: function name → start SourceLocation, used for annotation
        #: attachment by the front-end driver
        self.function_starts: Dict[str, SourceLocation] = {}
        #: per-function/per-construct failures isolated in recover mode
        #: (degraded-mode analysis) instead of aborting the whole unit
        self.recover = recover
        self.degraded: List[DegradedUnit] = []
        self._shared_typedefs: Dict[str, CType] = {}
        self._shared_enums: Dict[str, int] = {}
        self._types: Optional[TypeBuilder] = None

    def sizeof_name(self, type_name: str) -> int:
        """Resolve ``sizeof`` in annotation size expressions."""
        if self._types is None:
            raise LoweringError("no unit lowered yet")
        return self._types.sizeof_name(type_name)

    def lower_unit(self, unit: ParsedUnit) -> Module:
        types = TypeBuilder(self.module, unit)
        types.typedefs = self._shared_typedefs
        types.enum_constants = self._shared_enums
        self._types = types
        # first sweep: typedefs and type definitions so later sizes work
        for ext in unit.ast.ext:
            if isinstance(ext, c_ast.Typedef):
                types.typedefs[ext.name] = types.from_node(ext.type)
            elif isinstance(ext, c_ast.Decl) and isinstance(
                ext.type, (c_ast.Struct, c_ast.Union, c_ast.Enum)
            ) and ext.name is None:
                types.from_node(ext.type)

        for ext in unit.ast.ext:
            if isinstance(ext, c_ast.Typedef):
                continue
            if isinstance(ext, c_ast.FuncDef):
                if self.recover:
                    self._lower_funcdef_recover(ext, types, unit)
                else:
                    self._lower_funcdef(ext, types, unit)
            elif isinstance(ext, c_ast.Decl):
                try:
                    self._lower_global_decl(ext, types, unit)
                except (LoweringError, IRError) as exc:
                    if not self.recover:
                        raise
                    self.degraded.append(DegradedUnit(
                        kind=KIND_CONSTRUCT,
                        name=ext.name or "<anonymous>",
                        cause=exc.message,
                        location=unit.origin(getattr(ext, "coord", None)),
                    ))
            elif isinstance(ext, c_ast.Pragma):
                continue
            elif self.recover:
                self.degraded.append(DegradedUnit(
                    kind=KIND_CONSTRUCT,
                    name=type(ext).__name__,
                    cause=f"unsupported top-level construct "
                          f"{type(ext).__name__}",
                    location=unit.origin(getattr(ext, "coord", None)),
                ))
            else:
                raise LoweringError(
                    f"unsupported top-level construct {type(ext).__name__}",
                    unit.origin(getattr(ext, "coord", None)),
                )
        if unit.name not in self.module.source_files:
            self.module.source_files.append(unit.name)
        return self.module

    # ------------------------------------------------------------------

    def _lower_global_decl(self, decl: c_ast.Decl, types: TypeBuilder,
                           unit: ParsedUnit) -> None:
        if decl.name is None:
            types.from_node(decl.type)  # bare struct/enum definition
            return
        dtype = types.from_node(decl.type)
        if isinstance(dtype, FunctionType):
            func = self.module.get_function(decl.name)
            if func is None:
                self.module.add_function(Function(decl.name, dtype))
            return
        initializer = None
        if decl.init is not None:
            initializer = self._const_initializer(decl.init, types)
        gv = GlobalVariable(
            decl.name, dtype, initializer, unit.origin(decl.coord)
        )
        self.module.add_global(gv)

    def _const_initializer(self, node, types: TypeBuilder):
        try:
            if isinstance(node, c_ast.InitList):
                return [self._const_initializer(e, types) for e in node.exprs]
            if isinstance(node, c_ast.Constant) and node.type in ("float", "double"):
                return float(node.value.rstrip("fFlL"))
            if isinstance(node, c_ast.Constant) and node.type == "string":
                return node.value.strip('"')
            return types.eval_const(node)
        except LoweringError:
            return None

    def _lower_funcdef(self, funcdef: c_ast.FuncDef, types: TypeBuilder,
                       unit: ParsedUnit) -> None:
        decl = funcdef.decl
        ftype = types.from_node(decl.type)
        assert isinstance(ftype, FunctionType)
        func = self.module.get_function(decl.name)
        if func is None or not func.is_declaration:
            func = Function(decl.name, ftype)
            self.module.add_function(func)
        else:
            func.ftype = ftype
            func.type = ftype
        func.location = unit.origin(funcdef.coord)
        self.function_starts[decl.name] = func.location

        param_decls = []
        fdecl = decl.type
        if fdecl.args is not None:
            for param in fdecl.args.params:
                if isinstance(param, c_ast.EllipsisParam):
                    continue
                ptype = types.from_node(param.type)
                if isinstance(ptype, VoidType):
                    continue
                param_decls.append(param)

        lowerer = FunctionLowerer(self, func, types, unit)
        lowerer.lower_body(param_decls, funcdef.body)
        if self.run_ssa:
            build_ssa(func)

    def _lower_funcdef_recover(self, funcdef: c_ast.FuncDef,
                               types: TypeBuilder, unit: ParsedUnit) -> None:
        """Lower one function, demoting it to a declaration on failure.

        A function whose body cannot be lowered (unsupported construct,
        SSA failure, runaway recursion) keeps its symbol in the module
        so call sites still resolve, but loses its blocks —
        ``is_declaration`` becomes true, the value-flow engine treats
        calls to it as unmonitored non-core flow, and a
        :class:`DegradedUnit` records the cause.
        """
        name = getattr(funcdef.decl, "name", None) or "<unknown>"
        try:
            self._lower_funcdef(funcdef, types, unit)
        except (LoweringError, IRError, RecursionError) as exc:
            cause = getattr(exc, "message", None) or (
                "function nesting exceeds the lowering recursion limit"
                if isinstance(exc, RecursionError) else str(exc)
            )
            location = getattr(exc, "location", None) or unit.origin(
                getattr(funcdef, "coord", None))
            func = self.module.get_function(name)
            if func is not None:
                func.blocks = []
            self.degraded.append(DegradedUnit(
                kind=KIND_FUNCTION,
                name=name,
                cause=cause,
                location=location,
                function=name,
            ))


class FunctionLowerer:
    """Lowers one function body."""

    def __init__(self, parent: ModuleLowerer, func: Function,
                 types: TypeBuilder, unit: ParsedUnit):
        self.parent = parent
        self.module = parent.module
        self.func = func
        self.types = types
        self.unit = unit
        self.scopes: List[Dict[str, Value]] = [{}]
        self.block: Optional[BasicBlock] = None
        self.loops: List[_LoopContext] = []
        self.current_loc: Optional[SourceLocation] = None

    # -- plumbing ------------------------------------------------------

    def error(self, message: str, node=None) -> LoweringError:
        loc = self.unit.origin(getattr(node, "coord", None)) if node is not None \
            else self.current_loc
        return LoweringError(message, loc)

    def emit(self, inst: Instruction) -> Instruction:
        if self.block is None:
            # unreachable code (after return/break); park it in a fresh
            # block which dead-block removal will discard.
            self.block = self.func.new_block("dead")
        inst.location = self.current_loc
        self.block.append(inst)
        return inst

    def set_block(self, block: Optional[BasicBlock]) -> None:
        self.block = block

    def terminate(self, inst: Instruction) -> None:
        if self.block is not None and not self.block.is_terminated:
            inst.location = self.current_loc
            self.block.append(inst)
        self.block = None

    def lookup(self, name: str) -> Optional[Value]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        if name in self.module.globals:
            return self.module.globals[name]
        func = self.module.get_function(name)
        if func is not None:
            return func
        return None

    def declare_local(self, name: str, type_: CType) -> Alloca:
        alloca = Alloca(type_, name)
        alloca.location = self.current_loc
        entry = self.func.entry
        insert_at = 0
        for i, inst in enumerate(entry.instructions):
            if isinstance(inst, Alloca):
                insert_at = i + 1
            else:
                break
        alloca.parent = entry
        entry.instructions.insert(insert_at, alloca)
        self.scopes[-1][name] = alloca
        return alloca

    # -- body ----------------------------------------------------------

    def lower_body(self, param_decls, body: c_ast.Compound) -> None:
        entry = self.func.new_block("entry")
        self.set_block(entry)
        for i, param in enumerate(param_decls):
            ptype = self.func.ftype.params[i] if i < len(self.func.ftype.params) \
                else T.INT
            name = param.name or f"arg{i}"
            arg = self.func.add_argument(ptype, name)
            slot = self.declare_local(name, ptype)
            self.emit(Store(arg, slot))
        self.lower_stmt(body)
        # close any dangling fall-off-the-end path
        if self.block is not None and not self.block.is_terminated:
            ret_type = self.func.return_type
            if isinstance(ret_type, VoidType):
                self.terminate(Ret())
            else:
                self.terminate(Ret(_zero_of(ret_type)))
        self.func.remove_unreachable_blocks()

    # -- statements ------------------------------------------------------

    def lower_stmt(self, node) -> None:
        if node is None:
            return
        self.current_loc = self.unit.origin(getattr(node, "coord", None)) or \
            self.current_loc
        method = getattr(self, f"_stmt_{type(node).__name__}", None)
        if method is None:
            raise self.error(
                f"unsupported statement {type(node).__name__}", node
            )
        method(node)

    def _stmt_Compound(self, node: c_ast.Compound) -> None:
        self.scopes.append({})
        for item in node.block_items or []:
            self.lower_stmt(item)
        self.scopes.pop()

    def _stmt_Decl(self, node: c_ast.Decl) -> None:
        if node.name is None:
            self.types.from_node(node.type)
            return
        dtype = self.types.from_node(node.type)
        if isinstance(dtype, FunctionType):
            if self.module.get_function(node.name) is None:
                self.module.add_function(Function(node.name, dtype))
            return
        slot = self.declare_local(node.name, dtype)
        if node.init is not None:
            self._lower_initializer(slot, dtype, node.init)

    def _stmt_DeclList(self, node: c_ast.DeclList) -> None:
        for decl in node.decls:
            self.lower_stmt(decl)

    def _lower_initializer(self, ptr: Value, dtype: CType, init) -> None:
        if isinstance(init, c_ast.InitList):
            if isinstance(dtype, ArrayType):
                for i, expr in enumerate(init.exprs):
                    addr = self.emit(IndexAddr(ptr, Constant(T.INT, i)))
                    self._lower_initializer(addr, dtype.element, expr)
            elif isinstance(dtype, StructType) and dtype.fields is not None:
                for field, expr in zip(dtype.fields, init.exprs):
                    addr = self.emit(FieldAddr(ptr, field.name))
                    self._lower_initializer(addr, field.type, expr)
            return
        value = self.rvalue(init)
        self.emit(Store(self.coerce(value, dtype), ptr))

    def _stmt_If(self, node: c_ast.If) -> None:
        cond = self.to_bool(self.rvalue(node.cond))
        then_block = self.func.new_block("if.then")
        merge_block = self.func.new_block("if.end")
        else_block = self.func.new_block("if.else") if node.iffalse else merge_block
        self.terminate(CondBranch(cond, then_block, else_block))
        self.set_block(then_block)
        self.lower_stmt(node.iftrue)
        self.terminate(Jump(merge_block))
        if node.iffalse is not None:
            self.set_block(else_block)
            self.lower_stmt(node.iffalse)
            self.terminate(Jump(merge_block))
        self.set_block(merge_block)

    def _stmt_While(self, node: c_ast.While) -> None:
        cond_block = self.func.new_block("while.cond")
        body_block = self.func.new_block("while.body")
        exit_block = self.func.new_block("while.end")
        self.terminate(Jump(cond_block))
        self.set_block(cond_block)
        cond = self.to_bool(self.rvalue(node.cond))
        self.terminate(CondBranch(cond, body_block, exit_block))
        self.loops.append(_LoopContext(exit_block, cond_block))
        self.set_block(body_block)
        self.lower_stmt(node.stmt)
        self.terminate(Jump(cond_block))
        self.loops.pop()
        self.set_block(exit_block)

    def _stmt_DoWhile(self, node: c_ast.DoWhile) -> None:
        body_block = self.func.new_block("do.body")
        cond_block = self.func.new_block("do.cond")
        exit_block = self.func.new_block("do.end")
        self.terminate(Jump(body_block))
        self.loops.append(_LoopContext(exit_block, cond_block))
        self.set_block(body_block)
        self.lower_stmt(node.stmt)
        self.terminate(Jump(cond_block))
        self.loops.pop()
        self.set_block(cond_block)
        cond = self.to_bool(self.rvalue(node.cond))
        self.terminate(CondBranch(cond, body_block, exit_block))
        self.set_block(exit_block)

    def _stmt_For(self, node: c_ast.For) -> None:
        self.scopes.append({})
        if node.init is not None:
            self.lower_stmt(node.init)
        cond_block = self.func.new_block("for.cond")
        body_block = self.func.new_block("for.body")
        step_block = self.func.new_block("for.step")
        exit_block = self.func.new_block("for.end")
        self.terminate(Jump(cond_block))
        self.set_block(cond_block)
        if node.cond is not None:
            cond = self.to_bool(self.rvalue(node.cond))
            self.terminate(CondBranch(cond, body_block, exit_block))
        else:
            self.terminate(Jump(body_block))
        self.loops.append(_LoopContext(exit_block, step_block))
        self.set_block(body_block)
        self.lower_stmt(node.stmt)
        self.terminate(Jump(step_block))
        self.loops.pop()
        self.set_block(step_block)
        if node.next is not None:
            self.rvalue_or_void(node.next)
        self.terminate(Jump(cond_block))
        self.set_block(exit_block)
        self.scopes.pop()

    def _stmt_Break(self, node: c_ast.Break) -> None:
        if not self.loops:
            raise self.error("break outside loop or switch", node)
        self.terminate(Jump(self.loops[-1].break_block))

    def _stmt_Continue(self, node: c_ast.Continue) -> None:
        for ctx in reversed(self.loops):
            if ctx.continue_block is not None:
                self.terminate(Jump(ctx.continue_block))
                return
        raise self.error("continue outside loop", node)

    def _stmt_Return(self, node: c_ast.Return) -> None:
        if node.expr is None:
            self.terminate(Ret())
            return
        value = self.rvalue(node.expr)
        self.terminate(Ret(self.coerce(value, self.func.return_type)))

    def _stmt_Switch(self, node: c_ast.Switch) -> None:
        scrutinee = self.rvalue(node.cond)
        exit_block = self.func.new_block("switch.end")
        body = node.stmt
        items = body.block_items or [] if isinstance(body, c_ast.Compound) else [body]
        cases: List[Tuple[Optional[int], List, BasicBlock]] = []
        for item in items:
            if isinstance(item, c_ast.Case):
                value = self.types.eval_const(item.expr)
                cases.append((value, list(item.stmts or []),
                              self.func.new_block(f"case.{value}")))
            elif isinstance(item, c_ast.Default):
                cases.append((None, list(item.stmts or []),
                              self.func.new_block("case.default")))
            else:
                if not cases:
                    raise self.error("statement before first case label", item)
                cases[-1][1].append(item)

        # dispatch chain
        default_block = next((blk for val, _, blk in cases if val is None),
                             exit_block)
        for value, _, blk in cases:
            if value is None:
                continue
            cmp = self.emit(Cmp("==", scrutinee, Constant(T.INT, value), T.INT))
            next_test = self.func.new_block("switch.test")
            self.terminate(CondBranch(cmp, blk, next_test))
            self.set_block(next_test)
        self.terminate(Jump(default_block))

        # case bodies with fallthrough
        self.loops.append(_LoopContext(exit_block, None))
        for i, (_, stmts, blk) in enumerate(cases):
            self.set_block(blk)
            for stmt in stmts:
                self.lower_stmt(stmt)
            fall = cases[i + 1][2] if i + 1 < len(cases) else exit_block
            self.terminate(Jump(fall))
        self.loops.pop()
        self.set_block(exit_block)

    def _stmt_EmptyStatement(self, node) -> None:
        pass

    def _stmt_Assignment(self, node: c_ast.Assignment) -> None:
        self.rvalue(node)

    def _stmt_UnaryOp(self, node: c_ast.UnaryOp) -> None:
        self.rvalue(node)

    def _stmt_FuncCall(self, node: c_ast.FuncCall) -> None:
        self.rvalue_or_void(node)

    def _stmt_ExprList(self, node: c_ast.ExprList) -> None:
        for expr in node.exprs:
            self.rvalue_or_void(expr)

    def _stmt_Cast(self, node: c_ast.Cast) -> None:
        self.rvalue(node)

    def _stmt_BinaryOp(self, node) -> None:
        self.rvalue(node)

    def _stmt_TernaryOp(self, node) -> None:
        self.rvalue(node)

    def _stmt_ID(self, node) -> None:
        pass  # expression statement with no effect

    def _stmt_Constant(self, node) -> None:
        pass

    def _stmt_Goto(self, node) -> None:
        raise self.error(
            "goto is outside the SafeFlow restricted language subset", node
        )

    def _stmt_Label(self, node) -> None:
        raise self.error(
            "labels are outside the SafeFlow restricted language subset", node
        )

    # -- expressions -----------------------------------------------------

    def rvalue_or_void(self, node) -> Optional[Value]:
        """Evaluate an expression whose value may be discarded."""
        if isinstance(node, c_ast.FuncCall):
            return self._lower_call(node, want_value=False)
        return self.rvalue(node)

    def rvalue(self, node) -> Value:
        self.current_loc = self.unit.origin(getattr(node, "coord", None)) or \
            self.current_loc
        handler = getattr(self, f"_rv_{type(node).__name__}", None)
        if handler is None:
            raise self.error(
                f"unsupported expression {type(node).__name__}", node
            )
        return handler(node)

    def _rv_Constant(self, node: c_ast.Constant) -> Value:
        if node.type in ("int", "long int", "long long int",
                         "unsigned int", "unsigned long int"):
            return Constant(T.INT, _parse_int_literal(node.value))
        if node.type in ("float", "double", "long double"):
            text = node.value.rstrip("fFlL")
            type_ = T.FLOAT if node.value.rstrip("lL").endswith(("f", "F")) \
                else T.DOUBLE
            return Constant(type_, float(text))
        if node.type == "char":
            return Constant(T.CHAR, _parse_char_literal(node.value))
        if node.type == "string":
            return Constant(PointerType(T.CHAR), node.value[1:-1])
        raise self.error(f"unsupported literal type {node.type!r}", node)

    def _rv_ID(self, node: c_ast.ID) -> Value:
        if node.name in self.types.enum_constants:
            return Constant(T.INT, self.types.enum_constants[node.name])
        target = self.lookup(node.name)
        if target is None:
            raise self.error(f"use of undeclared identifier {node.name!r}", node)
        if isinstance(target, Function):
            return target
        declared = _declared_type(target)
        if isinstance(declared, ArrayType):
            return self.emit(IndexAddr(target, Constant(T.INT, 0)))  # decay
        return self.emit(Load(target, self.func.temp_name(node.name)))

    def lvalue(self, node) -> Value:
        """Address of an assignable expression."""
        self.current_loc = self.unit.origin(getattr(node, "coord", None)) or \
            self.current_loc
        if isinstance(node, c_ast.ID):
            target = self.lookup(node.name)
            if target is None:
                raise self.error(
                    f"use of undeclared identifier {node.name!r}", node
                )
            if isinstance(target, Function):
                raise self.error(f"cannot assign to function {node.name!r}", node)
            return target
        if isinstance(node, c_ast.UnaryOp) and node.op == "*":
            return self.rvalue(node.expr)
        if isinstance(node, c_ast.StructRef):
            return self._struct_member_addr(node)
        if isinstance(node, c_ast.ArrayRef):
            return self._array_elem_addr(node)
        if isinstance(node, c_ast.Cast):
            # (T*)expr used as lvalue target — lower the cast of the address
            inner = self.lvalue(node.expr)
            to_type = self.types.from_node(node.to_type)
            return self.emit(Cast(inner, PointerType(to_type)))
        raise self.error(
            f"expression {type(node).__name__} is not an lvalue", node
        )

    def _struct_member_addr(self, node: c_ast.StructRef) -> Value:
        if node.type == "->":
            base = self.rvalue(node.name)
        else:
            base = self.lvalue(node.name)
        btype = base.type
        if not isinstance(btype, PointerType):
            raise self.error("member access on non-pointer base", node)
        if not isinstance(btype.pointee, StructType):
            raise self.error(
                f"member access on non-struct type {btype.pointee!r}", node
            )
        try:
            return self.emit(FieldAddr(base, node.field.name))
        except KeyError as exc:
            raise self.error(str(exc.args[0]) if exc.args else str(exc),
                             node)

    def _array_elem_addr(self, node: c_ast.ArrayRef) -> Value:
        name_type = self._static_type(node.name)
        if isinstance(name_type, ArrayType):
            base = self.lvalue(node.name)
        else:
            base = self.rvalue(node.name)
        index = self.rvalue(node.subscript)
        return self.emit(IndexAddr(base, index))

    def _static_type(self, node) -> Optional[CType]:
        """Best-effort static type of an expression (for array decay)."""
        if isinstance(node, c_ast.ID):
            target = self.lookup(node.name)
            if target is not None:
                return _declared_type(target)
        if isinstance(node, c_ast.StructRef):
            try:
                base = self._static_type(node.name)
            except LoweringError:
                return None
            if node.type == "->" and isinstance(base, PointerType):
                base = base.pointee
            if isinstance(base, StructType) and base.is_complete:
                try:
                    return base.field(node.field.name).type
                except KeyError:
                    return None
        if isinstance(node, c_ast.ArrayRef):
            base = self._static_type(node.name)
            if isinstance(base, ArrayType):
                return base.element
            if isinstance(base, PointerType):
                return base.pointee
        return None

    def _rv_StructRef(self, node: c_ast.StructRef) -> Value:
        addr = self._struct_member_addr(node)
        pointee = addr.type.pointee  # type: ignore[attr-defined]
        if isinstance(pointee, ArrayType):
            return self.emit(IndexAddr(addr, Constant(T.INT, 0)))
        return self.emit(Load(addr))

    def _rv_ArrayRef(self, node: c_ast.ArrayRef) -> Value:
        addr = self._array_elem_addr(node)
        pointee = addr.type.pointee  # type: ignore[attr-defined]
        if isinstance(pointee, ArrayType):
            return self.emit(IndexAddr(addr, Constant(T.INT, 0)))
        return self.emit(Load(addr))

    def _rv_UnaryOp(self, node: c_ast.UnaryOp) -> Value:
        op = node.op
        if op == "&":
            inner = node.expr
            if isinstance(inner, c_ast.ID):
                target = self.lookup(inner.name)
                if isinstance(target, Function):
                    return target
            return self.lvalue(inner)
        if op == "*":
            ptr = self.rvalue(node.expr)
            if not isinstance(ptr.type, PointerType):
                raise self.error("dereference of non-pointer", node)
            if isinstance(ptr.type.pointee, ArrayType):
                return self.emit(IndexAddr(ptr, Constant(T.INT, 0)))
            return self.emit(Load(ptr))
        if op == "sizeof":
            if isinstance(node.expr, c_ast.Typename):
                return Constant(T.UINT, self.types.from_node(node.expr).sizeof())
            stype = self._static_type(node.expr)
            if stype is not None:
                return Constant(T.UINT, stype.sizeof())
            value = self.rvalue(node.expr)
            return Constant(T.UINT, value.type.sizeof())
        if op in ("++", "--", "p++", "p--"):
            return self._incdec(node)
        if op == "!":
            value = self.to_bool(self.rvalue(node.expr))
            return self.emit(UnaryOp("!", value, T.INT))
        if op in ("-", "+", "~"):
            value = self.rvalue(node.expr)
            if isinstance(value, Constant) and isinstance(
                value.value, (int, float)
            ):
                folded = {"-": lambda v: -v, "+": lambda v: v,
                          "~": lambda v: ~int(v)}[op](value.value)
                return Constant(value.type, folded)
            return self.emit(UnaryOp(op, value, value.type))
        raise self.error(f"unsupported unary operator {op!r}", node)

    def _incdec(self, node: c_ast.UnaryOp) -> Value:
        addr = self.lvalue(node.expr)
        old = self.emit(Load(addr))
        delta = Constant(T.INT, 1)
        op = "+" if "++" in node.op else "-"
        if isinstance(old.type, PointerType):
            index = delta if op == "+" else self.emit(
                UnaryOp("-", delta, T.INT))
            new = self.emit(IndexAddr(old, index))
        else:
            new = self.emit(BinOp(op, old, self.coerce(delta, old.type),
                                  old.type))
        self.emit(Store(new, addr))
        return old if node.op.startswith("p") else new

    def _rv_BinaryOp(self, node: c_ast.BinaryOp) -> Value:
        op = node.op
        if op in ("&&", "||"):
            return self._short_circuit(node)
        left = self.rvalue(node.left)
        right = self.rvalue(node.right)
        if op in Cmp.OPS:
            left, right = self._usual_conversions(left, right)
            return self.emit(Cmp(op, left, right, T.INT))
        if op in ("+", "-") and isinstance(left.type, PointerType) \
                and not isinstance(right.type, PointerType):
            index = right if op == "+" else self.emit(
                UnaryOp("-", right, right.type))
            return self.emit(IndexAddr(left, index))
        if op == "+" and isinstance(right.type, PointerType):
            return self.emit(IndexAddr(right, left))
        if op == "-" and isinstance(left.type, PointerType) \
                and isinstance(right.type, PointerType):
            li = self.emit(Cast(left, T.INT))
            ri = self.emit(Cast(right, T.INT))
            return self.emit(BinOp("-", li, ri, T.INT))
        left, right = self._usual_conversions(left, right)
        return self.emit(BinOp(op, left, right, left.type))

    def _usual_conversions(self, left: Value, right: Value) -> Tuple[Value, Value]:
        lt, rt = left.type, right.type
        if lt == rt or lt.is_pointer or rt.is_pointer:
            return left, right
        target = _common_type(lt, rt)
        if lt != target:
            left = self.emit(Cast(left, target))
        if rt != target:
            right = self.emit(Cast(right, target))
        return left, right

    def _short_circuit(self, node: c_ast.BinaryOp) -> Value:
        result = self.declare_local(self.func.temp_name("sc"), T.INT)
        rhs_block = self.func.new_block("sc.rhs")
        merge_block = self.func.new_block("sc.end")
        left = self.to_bool(self.rvalue(node.left))
        self.emit(Store(left, result))
        if node.op == "&&":
            self.terminate(CondBranch(left, rhs_block, merge_block))
        else:
            self.terminate(CondBranch(left, merge_block, rhs_block))
        self.set_block(rhs_block)
        right = self.to_bool(self.rvalue(node.right))
        self.emit(Store(right, result))
        self.terminate(Jump(merge_block))
        self.set_block(merge_block)
        return self.emit(Load(result))

    def _rv_TernaryOp(self, node: c_ast.TernaryOp) -> Value:
        then_block = self.func.new_block("sel.then")
        else_block = self.func.new_block("sel.else")
        merge_block = self.func.new_block("sel.end")
        cond = self.to_bool(self.rvalue(node.cond))
        self.terminate(CondBranch(cond, then_block, else_block))

        self.set_block(then_block)
        tval = self.rvalue(node.iftrue)
        slot = self.declare_local(self.func.temp_name("sel"), tval.type)
        self.emit(Store(tval, slot))
        self.terminate(Jump(merge_block))

        self.set_block(else_block)
        fval = self.rvalue(node.iffalse)
        self.emit(Store(self.coerce(fval, tval.type), slot))
        self.terminate(Jump(merge_block))

        self.set_block(merge_block)
        return self.emit(Load(slot))

    def _rv_Assignment(self, node: c_ast.Assignment) -> Value:
        addr = self.lvalue(node.lvalue)
        target_type = addr.type.pointee if isinstance(addr.type, PointerType) \
            else T.INT
        if node.op == "=":
            if isinstance(target_type, (StructType,)):
                src = self.lvalue(node.rvalue)
                value = self.emit(Load(src))
                self.emit(Store(value, addr))
                return value
            value = self.coerce(self.rvalue(node.rvalue), target_type)
            self.emit(Store(value, addr))
            return value
        binop = node.op[:-1]
        old = self.emit(Load(addr))
        rhs = self.rvalue(node.rvalue)
        if isinstance(old.type, PointerType) and binop in ("+", "-"):
            index = rhs if binop == "+" else self.emit(
                UnaryOp("-", rhs, rhs.type))
            new: Value = self.emit(IndexAddr(old, index))
        else:
            new = self.emit(
                BinOp(binop, old, self.coerce(rhs, old.type), old.type)
            )
        self.emit(Store(new, addr))
        return new

    def _rv_Cast(self, node: c_ast.Cast) -> Value:
        to_type = self.types.from_node(node.to_type)
        value = self.rvalue(node.expr)
        if value.type == to_type:
            return value
        if isinstance(to_type, VoidType):
            return value
        if isinstance(value, Constant) and value.value == 0 and to_type.is_pointer:
            return Constant(to_type, 0)
        return self.emit(Cast(value, to_type))

    def _rv_FuncCall(self, node: c_ast.FuncCall) -> Value:
        value = self._lower_call(node, want_value=True)
        assert value is not None
        return value

    def _lower_call(self, node: c_ast.FuncCall, want_value: bool) -> Optional[Value]:
        callee: object
        ftype: Optional[FunctionType] = None
        if isinstance(node.name, c_ast.ID):
            target = self.lookup(node.name.name)
            if isinstance(target, Function):
                callee = target
                ftype = target.ftype
            elif target is None:
                # C90 implicit declaration: int f();
                implicit = Function(
                    node.name.name, FunctionType(T.INT, [], varargs=True)
                )
                self.module.add_function(implicit)
                callee = implicit
                ftype = implicit.ftype
            else:
                callee = self.emit(Load(target))
                ct = callee.type
                if isinstance(ct, PointerType) and isinstance(ct.pointee,
                                                              FunctionType):
                    ftype = ct.pointee
        else:
            callee = self.rvalue(node.name)
            ct = callee.type
            if isinstance(ct, PointerType) and isinstance(ct.pointee,
                                                          FunctionType):
                ftype = ct.pointee

        args: List[Value] = []
        exprs = list(node.args.exprs) if node.args is not None else []
        for i, expr in enumerate(exprs):
            value = self.rvalue(expr)
            if ftype is not None and i < len(ftype.params):
                value = self.coerce(value, ftype.params[i])
            args.append(value)

        ret_type = ftype.ret if ftype is not None else T.INT
        call = Call(callee, args, ret_type)
        self.emit(call)
        if want_value and not isinstance(ret_type, VoidType):
            return call
        return call if isinstance(ret_type, VoidType) else call

    def _rv_ExprList(self, node: c_ast.ExprList) -> Value:
        value: Optional[Value] = None
        for expr in node.exprs:
            value = self.rvalue_or_void(expr)
        if value is None:
            raise self.error("empty expression list", node)
        return value

    # -- conversions -----------------------------------------------------

    def to_bool(self, value: Value) -> Value:
        if isinstance(value, (Cmp,)):
            return value
        if isinstance(value, UnaryOp) and value.op == "!":
            return value
        if isinstance(value.type, PointerType):
            return self.emit(Cmp("!=", value, Constant(value.type, 0), T.INT))
        zero = Constant(value.type, 0 if value.type.is_integer else 0.0)
        return self.emit(Cmp("!=", value, zero, T.INT))

    def coerce(self, value: Value, target: CType) -> Value:
        if value.type == target or isinstance(target, VoidType):
            return value
        if isinstance(target, PointerType):
            if isinstance(value, Constant) and value.value == 0:
                return Constant(target, 0)
            if isinstance(value.type, PointerType):
                return self.emit(Cast(value, target))
            if value.type.is_integer:
                return self.emit(Cast(value, target))
            return value
        if isinstance(value.type, PointerType) and target.is_integer:
            return self.emit(Cast(value, target))
        if (value.type.is_integer or value.type.is_float) and (
            target.is_integer or target.is_float
        ):
            if isinstance(value, Constant):
                if target.is_integer:
                    return Constant(target, int(value.value))
                return Constant(target, float(value.value))
            return self.emit(Cast(value, target))
        return value


def _declared_type(target: Value) -> CType:
    if isinstance(target, GlobalVariable):
        return target.declared_type
    if isinstance(target, Alloca):
        return target.allocated_type
    if isinstance(target.type, PointerType):
        return target.type.pointee
    return target.type


def _common_type(a: CType, b: CType) -> CType:
    for candidate in (T.LONGDOUBLE, T.DOUBLE, T.FLOAT):
        if a == candidate or b == candidate:
            return candidate
    if a.is_integer and b.is_integer:
        return a if a.sizeof() >= b.sizeof() else b
    return a


def _zero_of(type_: CType) -> Value:
    if type_.is_float:
        return Constant(type_, 0.0)
    if type_.is_pointer:
        return Constant(type_, 0)
    return Constant(type_, 0)


def lower_units(units: List[ParsedUnit], module_name: str = "program",
                run_ssa: bool = True,
                recover: bool = False) -> Tuple[Module, ModuleLowerer]:
    """Lower several parsed units into one module; returns (module, lowerer)."""
    lowerer = ModuleLowerer(module_name, run_ssa=run_ssa, recover=recover)
    for unit in units:
        lowerer.lower_unit(unit)
    return lowerer.module, lowerer
