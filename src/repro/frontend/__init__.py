"""C front end: preprocessing, annotation extraction, parsing, lowering."""

from .attach import annotation_line_count, attach_annotations
from .driver import Program, load_files, load_source
from .lower import ModuleLowerer, TypeBuilder, lower_units
from .parser import (
    BUILTIN_FUNCTIONS,
    BUILTIN_PRELUDE,
    SHM_ALLOCATORS,
    SHM_DEALLOCATORS,
    ParsedUnit,
    parse_files,
    parse_preprocessed,
)
from .preprocessor import (
    ANNOTATION_TAG,
    ExtractedAnnotation,
    Macro,
    PreprocessedSource,
    Preprocessor,
)
from .recovery import (
    DEFAULT_TIERS,
    RECOVERY_FORMAT_VERSION,
    TIER_ORDER,
    RecoveredUnit,
    frontend_unit,
    normalize_tiers,
    recovery_fingerprint,
)

__all__ = [
    "DEFAULT_TIERS",
    "RECOVERY_FORMAT_VERSION",
    "RecoveredUnit",
    "TIER_ORDER",
    "frontend_unit",
    "normalize_tiers",
    "recovery_fingerprint",
    "ANNOTATION_TAG",
    "BUILTIN_FUNCTIONS",
    "BUILTIN_PRELUDE",
    "ExtractedAnnotation",
    "Macro",
    "ModuleLowerer",
    "ParsedUnit",
    "PreprocessedSource",
    "Preprocessor",
    "Program",
    "SHM_ALLOCATORS",
    "SHM_DEALLOCATORS",
    "TypeBuilder",
    "annotation_line_count",
    "attach_annotations",
    "load_files",
    "load_source",
    "lower_units",
    "parse_files",
    "parse_preprocessed",
]
