"""Bundled fake system headers for the recovery ladder's prelude tier.

The strict front end *skips* ``#include <...>`` entirely and relies on
the builtin prelude in :mod:`repro.frontend.parser` to declare the
handful of library calls the paper's corpus uses.  Real embedded code
includes ``<stdint.h>``/``<string.h>``/friends and then *uses* what
they declare — ``uint8_t`` typedefs, ``UINT16_MAX`` macros — so the
unit fails to parse even though nothing about it is exotic.

Tier 3 of the recovery ladder (:mod:`repro.frontend.recovery`)
resolves those includes against the declaration stubs below, in the
spirit of pycparser's ``fake_libc_include`` directory (and of
``pycparser_fake_libc``, which this repo deliberately does not depend
on): just enough typedefs, ``#define``\\ s and prototypes for the code
to parse.  The stubs are processed *as include text by the mini
preprocessor*, so their macros participate in expansion and every
declaration they contribute carries a ``<fake:NAME>`` filename in the
line map — diagnostics never point at a line the author wrote when the
declaration came from a stub.

These are parsing aids, not semantic models: any unit that needed them
is analyzed fail-closed (every function it defines is degraded), so a
wrong constant here can widen but never weaken a verdict.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["FAKE_HEADERS", "fake_header", "COMPAT_TYPEDEFS"]

_STDINT = """
typedef signed char int8_t;
typedef short int16_t;
typedef int int32_t;
typedef long long int64_t;
typedef unsigned char uint8_t;
typedef unsigned short uint16_t;
typedef unsigned int uint32_t;
typedef unsigned long long uint64_t;
typedef long intptr_t;
typedef unsigned long uintptr_t;
typedef long long intmax_t;
typedef unsigned long long uintmax_t;
#define INT8_MIN (-128)
#define INT8_MAX 127
#define INT16_MIN (-32768)
#define INT16_MAX 32767
#define INT32_MIN (-2147483648)
#define INT32_MAX 2147483647
#define UINT8_MAX 255
#define UINT16_MAX 65535
#define UINT32_MAX 4294967295U
#define INT64_MAX 9223372036854775807LL
#define SIZE_MAX 4294967295U
"""

_STDBOOL = """
typedef int _Bool_fake;
#define bool _Bool_fake
#define true 1
#define false 0
#define __bool_true_false_are_defined 1
"""

_STDDEF = """
#define NULL 0
#define offsetof(t, m) 0
typedef long ptrdiff_t;
typedef unsigned short wchar_t;
"""

_LIMITS = """
#define CHAR_BIT 8
#define SCHAR_MIN (-128)
#define SCHAR_MAX 127
#define UCHAR_MAX 255
#define CHAR_MIN (-128)
#define CHAR_MAX 127
#define SHRT_MIN (-32768)
#define SHRT_MAX 32767
#define USHRT_MAX 65535
#define INT_MIN (-2147483648)
#define INT_MAX 2147483647
#define UINT_MAX 4294967295U
#define LONG_MIN (-2147483647L)
#define LONG_MAX 2147483647L
#define ULONG_MAX 4294967295UL
"""

_STDLIB = """
#define EXIT_SUCCESS 0
#define EXIT_FAILURE 1
#define RAND_MAX 2147483647
extern void *realloc(void *ptr, size_t size);
extern long labs(long j);
extern void qsort(void *base, size_t nmemb, size_t size,
                  int (*compar)(const void *, const void *));
"""

_STDIO = """
#define EOF (-1)
#define SEEK_SET 0
#define SEEK_CUR 1
#define SEEK_END 2
#define BUFSIZ 512
extern int fputs(const char *s, FILE *stream);
extern int fputc(int c, FILE *stream);
extern int fgetc(FILE *stream);
extern int putchar(int c);
extern size_t fread(void *ptr, size_t size, size_t nmemb, FILE *stream);
extern size_t fwrite(const void *ptr, size_t size, size_t nmemb, FILE *stream);
extern int fseek(FILE *stream, long offset, int whence);
extern long ftell(FILE *stream);
extern void perror(const char *s);
"""

_STRING = """
extern char *strchr(const char *s, int c);
extern char *strrchr(const char *s, int c);
extern char *strstr(const char *haystack, const char *needle);
extern char *strncat(char *dest, const char *src, size_t n);
extern void *memmove(void *dest, const void *src, size_t n);
extern void *memchr(const void *s, int c, size_t n);
extern char *strerror(int errnum);
"""

_ERRNO = """
extern int errno;
#define EINTR 4
#define EIO 5
#define EAGAIN 11
#define ENOMEM 12
#define EACCES 13
#define EBUSY 16
#define EINVAL 22
#define ERANGE 34
#define ETIMEDOUT 110
"""

_SIGNAL = """
typedef int sig_atomic_t;
typedef void (*sighandler_t)(int);
#define SIGHUP 1
#define SIGINT 2
#define SIGQUIT 3
#define SIGKILL 9
#define SIGUSR1 10
#define SIGUSR2 12
#define SIGALRM 14
#define SIGTERM 15
#define SIG_DFL ((sighandler_t)0)
#define SIG_IGN ((sighandler_t)1)
extern sighandler_t signal(int signum, sighandler_t handler);
extern unsigned int alarm(unsigned int seconds);
extern int raise(int sig);
"""

_UNISTD = """
#define STDIN_FILENO 0
#define STDOUT_FILENO 1
#define STDERR_FILENO 2
extern int pause(void);
extern long sysconf(int name);
extern int isatty(int fd);
"""

_FCNTL = """
#define O_RDONLY 0
#define O_WRONLY 1
#define O_RDWR 2
#define O_CREAT 64
#define O_EXCL 128
#define O_TRUNC 512
#define O_APPEND 1024
#define O_NONBLOCK 2048
"""

_SYS_TYPES = """
typedef unsigned int uid_t;
typedef unsigned int gid_t;
typedef unsigned long dev_t;
typedef unsigned long ino_t;
typedef unsigned int useconds_t;
"""

_SYS_SHM = """
#define IPC_CREAT 01000
#define IPC_EXCL 02000
#define IPC_NOWAIT 04000
#define IPC_RMID 0
#define IPC_SET 1
#define IPC_STAT 2
#define IPC_PRIVATE ((key_t)0)
#define SHM_RDONLY 010000
#define SHM_RND 020000
extern key_t ftok(const char *pathname, int proj_id);
"""

_SYS_SOCKET = """
#define AF_UNIX 1
#define AF_INET 2
#define SOCK_STREAM 1
#define SOCK_DGRAM 2
#define MSG_DONTWAIT 64
typedef unsigned int socklen_t;
typedef unsigned short sa_family_t;
struct sockaddr { sa_family_t sa_family; char sa_data[14]; };
extern int bind(int sockfd, const struct sockaddr *addr, socklen_t addrlen);
extern int listen(int sockfd, int backlog);
extern int accept(int sockfd, struct sockaddr *addr, socklen_t *addrlen);
extern int connect(int sockfd, const struct sockaddr *addr, socklen_t addrlen);
extern int setsockopt(int sockfd, int level, int optname,
                      const void *optval, socklen_t optlen);
"""

_ASSERT = """
#define assert(x) ((void)0)
"""

_CTYPE = """
extern int isdigit(int c);
extern int isalpha(int c);
extern int isalnum(int c);
extern int isspace(int c);
extern int isupper(int c);
extern int islower(int c);
extern int toupper(int c);
extern int tolower(int c);
"""

_MATH = """
#define M_PI 3.14159265358979323846
#define M_E 2.7182818284590452354
#define HUGE_VAL 1e308
extern double round(double x);
extern float sqrtf(float x);
extern float sinf(float x);
extern float cosf(float x);
extern double fmin(double x, double y);
extern double fmax(double x, double y);
extern double hypot(double x, double y);
"""

_STDARG = """
typedef char *va_list;
#define va_start(ap, last) ((void)0)
#define va_end(ap) ((void)0)
#define va_arg(ap, type) (*(type *)0)
#define va_copy(d, s) ((void)0)
"""

#: header basename (as written between ``<...>``) → stub text.
#: Aliases share one stub so ``<sys/shm.h>`` and ``<sys/ipc.h>`` both
#: resolve, matching how real code splits those includes.
FAKE_HEADERS: Dict[str, str] = {
    "stdint.h": _STDINT,
    "inttypes.h": _STDINT,
    "stdbool.h": _STDBOOL,
    "stddef.h": _STDDEF,
    "limits.h": _LIMITS,
    "stdlib.h": _STDLIB,
    "stdio.h": _STDIO,
    "string.h": _STRING,
    "errno.h": _ERRNO,
    "signal.h": _SIGNAL,
    "unistd.h": _UNISTD,
    "fcntl.h": _FCNTL,
    "assert.h": _ASSERT,
    "ctype.h": _CTYPE,
    "math.h": _MATH,
    "stdarg.h": _STDARG,
    "time.h": "",     # time_t/time()/gettimeofday() are in the prelude
    "sys/types.h": _SYS_TYPES,
    "sys/time.h": "",
    "sys/stat.h": "",
    "sys/ipc.h": _SYS_SHM,
    "sys/shm.h": _SYS_SHM,
    "sys/sem.h": _SYS_SHM,
    "sys/socket.h": _SYS_SOCKET,
    "netinet/in.h": _SYS_SOCKET,
    "sys/ioctl.h": "",
    "sys/wait.h": "",
}

#: embedded-style integer typedef shorthands → the declaration the
#: compat prelude injects when the unit *uses* the name but never
#: defines it (tier 3; scanned textually, so this is heuristic — which
#: is fine, the unit is fail-closed anyway)
COMPAT_TYPEDEFS: Dict[str, str] = {
    "u8": "typedef unsigned char u8;",
    "u16": "typedef unsigned short u16;",
    "u32": "typedef unsigned int u32;",
    "u64": "typedef unsigned long long u64;",
    "s8": "typedef signed char s8;",
    "s16": "typedef short s16;",
    "s32": "typedef int s32;",
    "s64": "typedef long long s64;",
    "BYTE": "typedef unsigned char BYTE;",
    "WORD": "typedef unsigned short WORD;",
    "DWORD": "typedef unsigned long DWORD;",
    "BOOL": "typedef int BOOL;",
    # stdint names used without the include (common in pasted snippets)
    "int8_t": "typedef signed char int8_t;",
    "int16_t": "typedef short int16_t;",
    "int32_t": "typedef int int32_t;",
    "int64_t": "typedef long long int64_t;",
    "uint8_t": "typedef unsigned char uint8_t;",
    "uint16_t": "typedef unsigned short uint16_t;",
    "uint32_t": "typedef unsigned int uint32_t;",
    "uint64_t": "typedef unsigned long long uint64_t;",
    "uintptr_t": "typedef unsigned long uintptr_t;",
    "bool": "typedef int bool;",
    "float32_t": "typedef float float32_t;",
    "float64_t": "typedef double float64_t;",
}

def fake_header(name: str) -> Optional[str]:
    """Stub text for ``#include <name>``, or ``None`` when unbundled.

    Lookup is by the exact path written in the include, then by
    basename (``<avr/pgmspace.h>`` has no stub, but ``<foo/stdint.h>``
    still resolves to the stdint stub).
    """
    name = name.strip()
    if name in FAKE_HEADERS:
        return FAKE_HEADERS[name]
    base = name.rsplit("/", 1)[-1]
    return FAKE_HEADERS.get(base)
