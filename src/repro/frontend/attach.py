"""Attachment of function-level annotations to IR functions.

``assert(safe(x))`` annotations were rewritten into dummy calls by the
preprocessor and therefore already sit at precise program points. The
remaining, function-level items (``assume(core/noncore/shmvar)`` and
``shminit``) attach to the function whose definition encloses or
immediately precedes them — matching the paper's placement rules:
monitor/initializer annotations are written inside the function, just
below its signature (Figure 2) or as post-conditions at its end
(Figure 3).

In recover mode (degraded-mode analysis) an annotation that cannot be
attached — no owning function definition, or a duplicate of an item
already attached to the same function — becomes a
:class:`repro.degrade.DegradedUnit` instead of an error, and the
owning function (when known) is marked degraded so the value-flow
engine fails closed around it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..annotations.lang import AnnotationItem, AssertSafe
from ..degrade import KIND_ANNOTATION, DegradedUnit
from ..errors import AnnotationError
from ..ir import Function, Module
from .preprocessor import ExtractedAnnotation


def attach_annotations(
    module: Module,
    annotations: Sequence[ExtractedAnnotation],
    function_starts: Dict[str, object],
    recover: bool = False,
    degraded: Optional[List[DegradedUnit]] = None,
) -> Dict[str, List[AnnotationItem]]:
    """Build ``module.function_annotations`` from extracted comments.

    ``function_starts`` maps function name → SourceLocation of its
    definition (from the lowerer). With ``recover`` set, attachment
    failures append to ``degraded`` instead of raising.
    """
    # index function start positions per file
    per_file: Dict[str, List[Tuple[int, str]]] = {}
    for name, loc in function_starts.items():
        per_file.setdefault(loc.filename, []).append((loc.line, name))
    for starts in per_file.values():
        starts.sort()

    attached: Dict[str, List[AnnotationItem]] = {}
    for annotation in annotations:
        items = [i for i in annotation.items if not isinstance(i, AssertSafe)]
        if not items:
            continue
        target = _owning_function(
            per_file, annotation.location.filename, annotation.location.line
        )
        if target is None:
            if recover and degraded is not None:
                degraded.append(DegradedUnit(
                    kind=KIND_ANNOTATION,
                    name=annotation.raw_text[:60] or "<annotation>",
                    cause="function-level SafeFlow annotation is not "
                          "attached to any function definition",
                    location=annotation.location,
                ))
                continue
            raise AnnotationError(
                "function-level SafeFlow annotation is not attached to any "
                "function definition",
                annotation.location,
            )
        bucket = attached.setdefault(target, [])
        if recover and degraded is not None:
            fresh = []
            for item in items:
                if any(_same_item(item, prior) for prior in bucket + fresh):
                    degraded.append(DegradedUnit(
                        kind=KIND_ANNOTATION,
                        name=annotation.raw_text[:60] or "<annotation>",
                        cause=f"duplicate {type(item).__name__} annotation "
                              f"on function {target!r}",
                        location=annotation.location,
                        function=target,
                    ))
                else:
                    fresh.append(item)
            bucket.extend(fresh)
        else:
            bucket.extend(items)

    module.function_annotations = attached
    return attached


def _same_item(a: AnnotationItem, b: AnnotationItem) -> bool:
    """Two function-level items that declare the same thing twice."""
    if type(a) is not type(b):
        return False
    pa = getattr(a, "pointer", None)
    pb = getattr(b, "pointer", None)
    return pa == pb


def owning_function(
    function_starts: Dict[str, object], filename: str, line: int
) -> Optional[str]:
    """The function whose definition encloses/precedes (filename, line)."""
    per_file: Dict[str, List[Tuple[int, str]]] = {}
    for name, loc in function_starts.items():
        per_file.setdefault(loc.filename, []).append((loc.line, name))
    for starts in per_file.values():
        starts.sort()
    return _owning_function(per_file, filename, line)


def _owning_function(
    per_file: Dict[str, List[Tuple[int, str]]], filename: str, line: int
):
    starts = per_file.get(filename)
    if not starts:
        return None
    owner = None
    for start_line, name in starts:
        if start_line <= line:
            owner = name
        else:
            if owner is None:
                # annotation written just above the first function
                return name
            break
    return owner


def annotation_line_count(
    annotations: Sequence[ExtractedAnnotation],
) -> int:
    """Number of annotation *lines*, the burden metric of Table 1."""
    total = 0
    for annotation in annotations:
        total += max(1, annotation.raw_text.strip().count("\n") + 1)
    return total
