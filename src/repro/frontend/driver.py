"""Front-end driver: C text/files → annotated IR program."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..annotations.lang import AnnotationItem
from ..ir import Module, verify_module
from .attach import annotation_line_count, attach_annotations
from .lower import ModuleLowerer, lower_units
from .parser import ParsedUnit, parse_preprocessed
from .preprocessor import ExtractedAnnotation, Preprocessor


@dataclass
class Program:
    """A fully front-ended program: IR + annotations + type info."""

    module: Module
    annotations: List[ExtractedAnnotation] = field(default_factory=list)
    function_annotations: Dict[str, List[AnnotationItem]] = field(
        default_factory=dict
    )
    sizeof: Callable[[str], int] = lambda name: 4
    units: List[ParsedUnit] = field(default_factory=list)

    @property
    def annotation_lines(self) -> int:
        return annotation_line_count(self.annotations)


def load_source(
    text: str,
    filename: str = "<source>",
    defines: Optional[Dict[str, str]] = None,
    verify: bool = True,
    cache=None,
) -> Program:
    """Front-end a single C source string.

    ``cache`` is an optional :class:`repro.perf.IRCache`; on a hit the
    pickled program is returned without re-parsing.
    """
    key = None
    if cache is not None:
        key = cache.key_for_source(text, filename, defines, verify)
        program = cache.fetch(key)
        if program is not None:
            return program
    pp = Preprocessor(predefined=dict(defines or {}))
    source = pp.process_text(text, filename=filename)
    unit = parse_preprocessed(source, name=filename)
    program = _finish([unit], [source.annotations], verify)
    if cache is not None:
        cache.store(key, program)
    return program


def load_files(
    paths: Sequence[str],
    include_dirs: Sequence[str] = (),
    defines: Optional[Dict[str, str]] = None,
    verify: bool = True,
    cache=None,
) -> Program:
    """Front-end several C files into one program (whole-program analysis).

    ``cache`` is an optional :class:`repro.perf.IRCache`; a hit is
    validated against the content hash of every file the preprocessor
    read when the entry was built (``#include`` dependencies included).
    """
    key = None
    if cache is not None:
        key = cache.key_for_files(paths, include_dirs, defines, verify)
        program = cache.fetch(key)
        if program is not None:
            return program
    units: List[ParsedUnit] = []
    annotation_groups = []
    for path in paths:
        pp = Preprocessor(
            include_dirs=list(include_dirs), predefined=dict(defines or {})
        )
        source = pp.process_file(path)
        units.append(parse_preprocessed(source, name=path))
        annotation_groups.append(source.annotations)
    program = _finish(units, annotation_groups, verify)
    if cache is not None:
        cache.store(key, program)
    return program


def _finish(
    units: List[ParsedUnit],
    annotation_groups: List[List[ExtractedAnnotation]],
    verify: bool,
) -> Program:
    module, lowerer = lower_units(units)
    annotations: List[ExtractedAnnotation] = []
    for group in annotation_groups:
        annotations.extend(group)
    function_annotations = attach_annotations(
        module, annotations, lowerer.function_starts
    )
    if verify:
        verify_module(module)
    return Program(
        module=module,
        annotations=annotations,
        function_annotations=function_annotations,
        sizeof=lowerer.sizeof_name,
        units=units,
    )
