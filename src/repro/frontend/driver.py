"""Front-end driver: C text/files → annotated IR program.

With ``recover=True`` (degraded-mode analysis, ``--keep-going``) the
driver isolates failures instead of raising: a translation unit that
fails to preprocess or parse, a function whose lowering/SSA fails, or
an annotation that does not validate each become a structured
:class:`repro.degrade.DegradedUnit` on the returned
:class:`Program`, and the rest of the corpus is still front-ended.
The value-flow engine fails closed around ``Program.degraded_functions``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from ..annotations.lang import AnnotationItem
from ..degrade import (
    KIND_FUNCTION,
    KIND_UNIT,
    DegradedUnit,
    degraded_function_names,
    sort_degraded,
)
from ..errors import ParseError, PreprocessorError
from ..ir import Module, verify_module
from ..ir.source import SourceLocation
from ..ir.verifier import verify_function
from .attach import annotation_line_count, attach_annotations, owning_function
from .lower import ModuleLowerer, lower_units
from .parser import ParsedUnit, parse_preprocessed
from .preprocessor import ExtractedAnnotation, Preprocessor


@dataclass
class Program:
    """A fully front-ended program: IR + annotations + type info."""

    module: Module
    annotations: List[ExtractedAnnotation] = field(default_factory=list)
    function_annotations: Dict[str, List[AnnotationItem]] = field(
        default_factory=dict
    )
    sizeof: Callable[[str], int] = lambda name: 4
    units: List[ParsedUnit] = field(default_factory=list)
    #: frontend failures isolated in recover mode (deterministic order)
    degraded: List[DegradedUnit] = field(default_factory=list)
    #: functions the value-flow engine must fail closed around
    degraded_functions: Set[str] = field(default_factory=set)

    @property
    def annotation_lines(self) -> int:
        return annotation_line_count(self.annotations)


def load_source(
    text: str,
    filename: str = "<source>",
    defines: Optional[Dict[str, str]] = None,
    verify: bool = True,
    cache=None,
    recover: bool = False,
) -> Program:
    """Front-end a single C source string.

    ``cache`` is an optional :class:`repro.perf.IRCache`; on a hit the
    pickled program is returned without re-parsing.
    """
    key = None
    if cache is not None:
        key = cache.key_for_source(text, filename, defines, verify, recover)
        program = cache.fetch(key)
        if program is not None:
            return program
    degraded: List[DegradedUnit] = []
    units: List[ParsedUnit] = []
    annotation_groups: List[List[ExtractedAnnotation]] = []
    try:
        pp = Preprocessor(predefined=dict(defines or {}), recover=recover)
        source = pp.process_text(text, filename=filename)
        degraded.extend(source.degraded)
        units.append(parse_preprocessed(source, name=filename))
        annotation_groups.append(source.annotations)
    except (PreprocessorError, ParseError, RecursionError) as exc:
        if not recover:
            raise
        degraded.append(_unit_failure(filename, exc))
    program = _finish(units, annotation_groups, verify, recover, degraded)
    if cache is not None:
        cache.store(key, program)
    return program


def load_files(
    paths: Sequence[str],
    include_dirs: Sequence[str] = (),
    defines: Optional[Dict[str, str]] = None,
    verify: bool = True,
    cache=None,
    recover: bool = False,
) -> Program:
    """Front-end several C files into one program (whole-program analysis).

    ``cache`` is an optional :class:`repro.perf.IRCache`; a hit is
    validated against the content hash of every file the preprocessor
    read when the entry was built (``#include`` dependencies included).

    In recover mode each path is preprocessed and parsed in isolation:
    a unit that fails becomes a :class:`DegradedUnit` and the remaining
    units are still analyzed.
    """
    key = None
    if cache is not None:
        key = cache.key_for_files(paths, include_dirs, defines, verify,
                                  recover)
        program = cache.fetch(key)
        if program is not None:
            return program
    units: List[ParsedUnit] = []
    annotation_groups: List[List[ExtractedAnnotation]] = []
    degraded: List[DegradedUnit] = []
    for path in paths:
        pp = Preprocessor(
            include_dirs=list(include_dirs), predefined=dict(defines or {}),
            recover=recover,
        )
        try:
            source = pp.process_file(path)
            degraded.extend(source.degraded)
            units.append(parse_preprocessed(source, name=path))
            annotation_groups.append(source.annotations)
        except (PreprocessorError, ParseError, RecursionError) as exc:
            if not recover:
                raise
            degraded.append(_unit_failure(path, exc))
    program = _finish(units, annotation_groups, verify, recover, degraded)
    if cache is not None:
        cache.store(key, program)
    return program


def _unit_failure(path: str, exc: BaseException) -> DegradedUnit:
    if isinstance(exc, RecursionError):
        cause = "recursion limit exceeded while front-ending the unit"
        location = SourceLocation(path, 0)
    else:
        cause = getattr(exc, "message", None) or str(exc)
        location = getattr(exc, "location", None) or SourceLocation(path, 0)
    return DegradedUnit(
        kind=KIND_UNIT, name=path, cause=cause, location=location,
    )


def _finish(
    units: List[ParsedUnit],
    annotation_groups: List[List[ExtractedAnnotation]],
    verify: bool,
    recover: bool = False,
    degraded: Optional[List[DegradedUnit]] = None,
) -> Program:
    degraded = list(degraded or [])
    module, lowerer = lower_units(units, recover=recover)
    degraded.extend(lowerer.degraded)
    annotations: List[ExtractedAnnotation] = []
    for group in annotation_groups:
        annotations.extend(group)
    function_annotations = attach_annotations(
        module, annotations, lowerer.function_starts,
        recover=recover, degraded=degraded,
    )
    if verify:
        if recover:
            _verify_recover(module, degraded)
        else:
            verify_module(module)
    # annotation failures degrade their enclosing function (when one is
    # identifiable) so monitors whose annotations were dropped are
    # treated fail-closed rather than as ordinary unannotated code
    resolved: List[DegradedUnit] = []
    for unit in degraded:
        if unit.function is None and unit.location is not None:
            owner = owning_function(
                lowerer.function_starts,
                unit.location.filename, unit.location.line,
            )
            if owner is not None:
                unit = DegradedUnit(
                    kind=unit.kind, name=unit.name, cause=unit.cause,
                    location=unit.location, function=owner,
                )
        resolved.append(unit)
    resolved = sort_degraded(resolved)
    return Program(
        module=module,
        annotations=annotations,
        function_annotations=function_annotations,
        sizeof=lowerer.sizeof_name,
        units=units,
        degraded=resolved,
        degraded_functions=degraded_function_names(resolved),
    )


def _verify_recover(module: Module, degraded: List[DegradedUnit]) -> None:
    """Verify per function; demote failures to declarations."""
    from ..errors import IRError

    for func in list(module.defined_functions()):
        try:
            verify_function(func)
        except IRError as exc:
            func.blocks = []
            degraded.append(DegradedUnit(
                kind=KIND_FUNCTION,
                name=func.name,
                cause=f"IR verification failed: {exc.message}",
                location=getattr(func, "location", None),
                function=func.name,
            ))
