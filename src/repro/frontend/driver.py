"""Front-end driver: C text/files → annotated IR program.

With ``recover=True`` (degraded-mode analysis, ``--keep-going``) the
driver isolates failures instead of raising: a translation unit that
fails to preprocess or parse, a function whose lowering/SSA fails, or
an annotation that does not validate each become a structured
:class:`repro.degrade.DegradedUnit` on the returned
:class:`Program`, and the rest of the corpus is still front-ended.
The value-flow engine fails closed around ``Program.degraded_functions``.

With ``recover_tiers`` (``--recover``) a failing unit additionally
falls through the recovery ladder of :mod:`repro.frontend.recovery`
before being recorded as lost; a salvaged unit is analyzed with every
function it defines degraded (fail-closed around rewritten text).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Set

from ..annotations.lang import AnnotationItem
from ..degrade import (
    KIND_FUNCTION,
    KIND_RECOVERED,
    KIND_UNIT,
    DegradedUnit,
    degraded_function_names,
    sort_degraded,
)
from ..errors import ParseError, PreprocessorError
from ..ir import Module, verify_module
from ..ir.source import SourceLocation
from ..ir.verifier import verify_function
from .attach import annotation_line_count, attach_annotations, owning_function
from .lower import ModuleLowerer, lower_units
from .parser import ParsedUnit
from .preprocessor import ExtractedAnnotation
from .recovery import frontend_unit


@dataclass
class Program:
    """A fully front-ended program: IR + annotations + type info."""

    module: Module
    annotations: List[ExtractedAnnotation] = field(default_factory=list)
    function_annotations: Dict[str, List[AnnotationItem]] = field(
        default_factory=dict
    )
    sizeof: Callable[[str], int] = lambda name: 4
    units: List[ParsedUnit] = field(default_factory=list)
    #: frontend failures isolated in recover mode (deterministic order)
    degraded: List[DegradedUnit] = field(default_factory=list)
    #: functions the value-flow engine must fail closed around
    degraded_functions: Set[str] = field(default_factory=set)
    #: per-tier recovery-ladder attempt counts (``--recover`` only)
    recovery_attempts: Dict[str, int] = field(default_factory=dict)
    #: per-tier recovery-ladder success counts (``--recover`` only)
    recovery_successes: Dict[str, int] = field(default_factory=dict)

    @property
    def annotation_lines(self) -> int:
        return annotation_line_count(self.annotations)

    @property
    def recovered_units(self) -> int:
        """Units the recovery ladder salvaged (analyzed fail-closed)."""
        return sum(1 for u in self.degraded if u.kind == KIND_RECOVERED)


def recover_token(recover: bool, recover_tiers: Sequence[str] = ()):
    """The value cache keys carry for the (recover, tiers) pair.

    With no tiers this is the plain bool the seed always used, so
    existing cache keys are unchanged; with tiers it folds in
    :func:`repro.frontend.recovery.recovery_fingerprint` (tier set,
    format version, GNU parser strategy) so recovered programs are
    never replayed across recovery-config changes.
    """
    from .recovery import recovery_fingerprint

    fingerprint = recovery_fingerprint(recover_tiers)
    if not fingerprint:
        return recover
    return f"{recover}+recovery[{fingerprint}]"


def _merge_counts(into: Dict[str, int], counts: Dict[str, int]) -> None:
    for name, value in counts.items():
        into[name] = into.get(name, 0) + value


def load_source(
    text: str,
    filename: str = "<source>",
    defines: Optional[Dict[str, str]] = None,
    verify: bool = True,
    cache=None,
    recover: bool = False,
    recover_tiers: Sequence[str] = (),
) -> Program:
    """Front-end a single C source string.

    ``cache`` is an optional :class:`repro.perf.IRCache`; on a hit the
    pickled program is returned without re-parsing. ``recover_tiers``
    enables the recovery ladder of :mod:`repro.frontend.recovery`.
    """
    key = None
    if cache is not None:
        key = cache.key_for_source(text, filename, defines, verify,
                                   recover_token(recover, recover_tiers))
        program = cache.fetch(key)
        if program is not None:
            return program
    degraded: List[DegradedUnit] = []
    units: List[ParsedUnit] = []
    annotation_groups: List[List[ExtractedAnnotation]] = []
    attempts: Dict[str, int] = {}
    successes: Dict[str, int] = {}
    result = frontend_unit(
        text, filename, defines=defines,
        recover=recover, tiers=recover_tiers,
    )
    _merge_counts(attempts, result.attempts)
    _merge_counts(successes, result.successes)
    degraded.extend(result.degraded)
    if result.unit is not None:
        units.append(result.unit)
        annotation_groups.append(result.annotations)
    program = _finish(units, annotation_groups, verify, recover, degraded,
                      recovery_attempts=attempts,
                      recovery_successes=successes)
    if cache is not None:
        cache.store(key, program)
    return program


def load_files(
    paths: Sequence[str],
    include_dirs: Sequence[str] = (),
    defines: Optional[Dict[str, str]] = None,
    verify: bool = True,
    cache=None,
    recover: bool = False,
    recover_tiers: Sequence[str] = (),
) -> Program:
    """Front-end several C files into one program (whole-program analysis).

    ``cache`` is an optional :class:`repro.perf.IRCache`; a hit is
    validated against the content hash of every file the preprocessor
    read when the entry was built (``#include`` dependencies included).

    In recover mode each path is front-ended in isolation: a unit that
    fails becomes a :class:`DegradedUnit` and the remaining units are
    still analyzed. ``recover_tiers`` additionally sends failing units
    through the recovery ladder before they are recorded as lost.
    """
    key = None
    if cache is not None:
        key = cache.key_for_files(paths, include_dirs, defines, verify,
                                  recover_token(recover, recover_tiers))
        program = cache.fetch(key)
        if program is not None:
            return program
    units: List[ParsedUnit] = []
    annotation_groups: List[List[ExtractedAnnotation]] = []
    degraded: List[DegradedUnit] = []
    attempts: Dict[str, int] = {}
    successes: Dict[str, int] = {}
    for path in paths:
        try:
            with open(path, "r") as f:
                text = f.read()
        except OSError as exc:
            failure = PreprocessorError(f"cannot read {path}: {exc}")
            if not recover:
                raise failure
            degraded.append(_unit_failure(path, failure))
            continue
        result = frontend_unit(
            text, path, include_dirs=include_dirs, defines=defines,
            recover=recover, tiers=recover_tiers,
        )
        _merge_counts(attempts, result.attempts)
        _merge_counts(successes, result.successes)
        degraded.extend(result.degraded)
        if result.unit is not None:
            units.append(result.unit)
            annotation_groups.append(result.annotations)
    program = _finish(units, annotation_groups, verify, recover, degraded,
                      recovery_attempts=attempts,
                      recovery_successes=successes)
    if cache is not None:
        cache.store(key, program)
    return program


def _unit_failure(path: str, exc: BaseException) -> DegradedUnit:
    if isinstance(exc, RecursionError):
        cause = "recursion limit exceeded while front-ending the unit"
        location = SourceLocation(path, 0)
    else:
        cause = getattr(exc, "message", None) or str(exc)
        location = getattr(exc, "location", None) or SourceLocation(path, 0)
    return DegradedUnit(
        kind=KIND_UNIT, name=path, cause=cause, location=location,
    )


def _smear_recovered(
    units: List[ParsedUnit],
    degraded: List[DegradedUnit],
    lowerer: ModuleLowerer,
) -> None:
    """Degrade every function defined in a recovery-salvaged unit.

    The analyzed text of a recovered unit is not the text the author
    wrote, so nothing defined in it may certify: each of its functions
    gets a :data:`KIND_FUNCTION` record (unless one exists already) and
    the engine fails closed around the whole set. Functions are matched
    by the source file their definition came from, which is exact
    because the line map tracks provenance through includes.
    """
    recovered_tier: Dict[str, str] = {
        u.name: (u.tier or "?")
        for u in degraded if u.kind == KIND_RECOVERED
    }
    if not recovered_tier:
        return
    file_tier: Dict[str, str] = {}
    for unit in units:
        tier = recovered_tier.get(unit.name)
        if tier is None:
            continue
        for fname in list(unit.source.files) + [unit.name]:
            file_tier[fname] = tier
    already = degraded_function_names(degraded)
    for func_name, loc in sorted(lowerer.function_starts.items()):
        tier = file_tier.get(loc.filename)
        if tier is None or func_name in already:
            continue
        degraded.append(DegradedUnit(
            kind=KIND_FUNCTION,
            name=func_name,
            cause=("fail-closed: defined in a unit salvaged by the "
                   f"recovery ladder ({tier} tier)"),
            location=loc,
            function=func_name,
            tier=tier,
        ))


def _finish(
    units: List[ParsedUnit],
    annotation_groups: List[List[ExtractedAnnotation]],
    verify: bool,
    recover: bool = False,
    degraded: Optional[List[DegradedUnit]] = None,
    recovery_attempts: Optional[Dict[str, int]] = None,
    recovery_successes: Optional[Dict[str, int]] = None,
) -> Program:
    degraded = list(degraded or [])
    module, lowerer = lower_units(units, recover=recover)
    degraded.extend(lowerer.degraded)
    annotations: List[ExtractedAnnotation] = []
    for group in annotation_groups:
        annotations.extend(group)
    function_annotations = attach_annotations(
        module, annotations, lowerer.function_starts,
        recover=recover, degraded=degraded,
    )
    if verify:
        if recover:
            _verify_recover(module, degraded)
        else:
            verify_module(module)
    _smear_recovered(units, degraded, lowerer)
    # annotation failures degrade their enclosing function (when one is
    # identifiable) so monitors whose annotations were dropped are
    # treated fail-closed rather than as ordinary unannotated code
    resolved: List[DegradedUnit] = []
    for unit in degraded:
        if (unit.function is None and unit.location is not None
                and unit.kind != KIND_RECOVERED):
            # KIND_RECOVERED records stay unit-scoped: their location is
            # the strict-mode failure point, not a function of their own
            owner = owning_function(
                lowerer.function_starts,
                unit.location.filename, unit.location.line,
            )
            if owner is not None:
                unit = replace(unit, function=owner)
        resolved.append(unit)
    resolved = sort_degraded(resolved)
    return Program(
        module=module,
        annotations=annotations,
        function_annotations=function_annotations,
        sizeof=lowerer.sizeof_name,
        units=units,
        degraded=resolved,
        degraded_functions=degraded_function_names(resolved),
        recovery_attempts=dict(recovery_attempts or {}),
        recovery_successes=dict(recovery_successes or {}),
    )


def _verify_recover(module: Module, degraded: List[DegradedUnit]) -> None:
    """Verify per function; demote failures to declarations."""
    from ..errors import IRError

    for func in list(module.defined_functions()):
        try:
            verify_function(func)
        except IRError as exc:
            func.blocks = []
            degraded.append(DegradedUnit(
                kind=KIND_FUNCTION,
                name=func.name,
                cause=f"IR verification failed: {exc.message}",
                location=getattr(func, "location", None),
                function=func.name,
            ))
