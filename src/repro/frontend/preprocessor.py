"""Mini C preprocessor with SafeFlow-annotation extraction.

pycparser consumes *preprocessed* C, and the paper's annotations live
inside C comments, so this module does double duty:

1. A small but real preprocessor: line splicing, comment stripping,
   ``#include`` (local files inlined, system headers satisfied by the
   builtin prelude in :mod:`repro.frontend.parser`), object- and
   function-like ``#define``, ``#undef``, and the conditional family
   (``#if/#ifdef/#ifndef/#elif/#else/#endif``).

2. The paper's annotation pre-processing pass (§3.3 ¶1): comments of
   the form ``/***SafeFlow Annotation ... /***/`` are parsed with
   :mod:`repro.annotations.lang`. ``assert(safe(x))`` items are
   rewritten in place to calls of the dummy function
   ``__safeflow_assert_safe(x)`` so they become precise program points
   in the IR; function-level items (``assume(...)``, ``shminit``) are
   collected into a side table keyed by source position and attached to
   their enclosing function after parsing.

The output carries a line map (output line → original file/line) so
every diagnostic points at the user's source, not the expansion.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..annotations.lang import AnnotationItem, AssertSafe, parse_annotation
from ..degrade import KIND_ANNOTATION, DegradedUnit
from ..errors import AnnotationError, PreprocessorError
from ..ir.instructions import ASSERT_SAFE_MARKER
from ..ir.source import SourceLocation

ANNOTATION_TAG = "SafeFlow Annotation"

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_DEFINED_RE = re.compile(r"\bdefined\s*(?:\(\s*(\w+)\s*\)|(\w+))")


@dataclass
class ExtractedAnnotation:
    """One SafeFlow annotation comment found in the source."""

    location: SourceLocation
    items: List[AnnotationItem]
    raw_text: str


@dataclass
class Macro:
    name: str
    body: str
    params: Optional[List[str]] = None  # None → object-like

    @property
    def is_function_like(self) -> bool:
        return self.params is not None


@dataclass
class PreprocessedSource:
    """Preprocessed text plus provenance for every output line."""

    text: str
    #: output line i (0-based) came from ``line_map[i]``
    line_map: List[SourceLocation] = field(default_factory=list)
    annotations: List[ExtractedAnnotation] = field(default_factory=list)
    files: List[str] = field(default_factory=list)
    #: annotation blocks that failed to parse, kept instead of raised
    #: when the preprocessor runs in recover mode
    degraded: List[DegradedUnit] = field(default_factory=list)
    #: every ``#include <name>`` seen in an active conditional branch,
    #: in order — the recovery ladder's prelude tier resolves these
    #: against :data:`repro.frontend.fakelibc.FAKE_HEADERS`
    system_includes: List[str] = field(default_factory=list)
    #: system headers that *were* satisfied by a bundled fake stub
    #: (prelude tier active and a stub existed)
    fake_included: List[str] = field(default_factory=list)
    #: local ``#include "..."`` targets that could not be found but
    #: were skipped instead of raised (``ignore_missing_includes``)
    skipped_includes: List[str] = field(default_factory=list)

    def origin(self, output_line: int) -> SourceLocation:
        """Original location for a 1-based output line number."""
        idx = output_line - 1
        if 0 <= idx < len(self.line_map):
            return self.line_map[idx]
        return SourceLocation("<preprocessed>", output_line)


class Preprocessor:
    """Stateful preprocessor; one instance per translation-unit set."""

    def __init__(
        self,
        include_dirs: Sequence[str] = (),
        predefined: Optional[Dict[str, str]] = None,
        max_include_depth: int = 32,
        recover: bool = False,
        fake_headers: bool = False,
        ignore_missing_includes: bool = False,
    ):
        self.include_dirs = list(include_dirs)
        self.macros: Dict[str, Macro] = {}
        for name, body in (predefined or {}).items():
            self.macros[name] = Macro(name, body)
        self.max_include_depth = max_include_depth
        #: collect malformed annotations as DegradedUnits instead of
        #: raising (degraded-mode analysis)
        self.recover = recover
        #: resolve ``#include <name>`` against the bundled declaration
        #: stubs of :mod:`repro.frontend.fakelibc` instead of skipping
        #: it (recovery ladder, prelude tier)
        self.fake_headers = fake_headers
        #: skip (and record) local includes that cannot be found
        #: instead of raising (recovery ladder, prelude tier onward)
        self.ignore_missing_includes = ignore_missing_includes
        #: stack of files currently being processed, outermost first —
        #: used to diagnose circular #include chains
        self._active: List[str] = []
        #: fake stubs already injected in this unit (stub identity, so
        #: aliases like <sys/ipc.h>/<sys/shm.h> inject only once)
        self._fake_done: set = set()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def process_file(self, path: str) -> PreprocessedSource:
        try:
            with open(path, "r") as f:
                text = f.read()
        except OSError as exc:
            raise PreprocessorError(f"cannot read {path}: {exc}")
        return self.process_text(text, filename=path)

    def process_text(self, text: str, filename: str = "<text>") -> PreprocessedSource:
        out = PreprocessedSource(text="")
        lines: List[str] = []
        self._process(text, filename, 0, lines, out)
        out.text = "\n".join(lines) + ("\n" if lines else "")
        return out

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def _process(
        self,
        text: str,
        filename: str,
        depth: int,
        out_lines: List[str],
        out: PreprocessedSource,
    ) -> None:
        if depth > self.max_include_depth:
            chain = " -> ".join(self._active + [filename])
            raise PreprocessorError(
                f"#include nesting exceeds the maximum depth of "
                f"{self.max_include_depth}: {chain}"
            )
        if filename not in out.files:
            out.files.append(filename)
        self._active.append(filename)
        try:
            self._process_active(text, filename, depth, out_lines, out)
        finally:
            self._active.pop()

    def _process_active(
        self,
        text: str,
        filename: str,
        depth: int,
        out_lines: List[str],
        out: PreprocessedSource,
    ) -> None:
        spliced, splice_map = _splice_lines(text)
        stripped = self._strip_comments(spliced, splice_map, filename, out)
        # conditional stack: each entry is (taking, taken_any, seen_else)
        cond_stack: List[List[bool]] = []

        for line, orig_line in stripped:
            stripped_line = line.lstrip()
            if stripped_line.startswith("#"):
                self._directive(
                    stripped_line[1:].strip(),
                    filename,
                    orig_line,
                    depth,
                    cond_stack,
                    out_lines,
                    out,
                )
                continue
            if cond_stack and not all(frame[0] for frame in cond_stack):
                continue
            expanded = self._expand_line(line, filename, orig_line)
            out_lines.append(expanded)
            out.line_map.append(SourceLocation(filename, orig_line))

        if cond_stack:
            raise PreprocessorError(
                f"unterminated conditional in {filename}",
                SourceLocation(filename, len(text.splitlines())),
            )

    # ------------------------------------------------------------------
    # comments & annotations
    # ------------------------------------------------------------------

    def _strip_comments(
        self,
        text: str,
        splice_map: List[int],
        filename: str,
        out: PreprocessedSource,
    ) -> List[Tuple[str, int]]:
        """Remove comments, extracting SafeFlow annotations.

        Returns (line, original_line_number) pairs.
        """
        result: List[str] = []
        i = 0
        n = len(text)
        buf: List[str] = []
        line_no = 1  # spliced line number

        def emit(ch: str) -> None:
            nonlocal line_no
            if ch == "\n":
                result.append("".join(buf))
                buf.clear()
                line_no += 1
            else:
                buf.append(ch)

        while i < n:
            ch = text[i]
            nxt = text[i + 1] if i + 1 < n else ""
            if ch == '"' or ch == "'":
                quote = ch
                emit(ch)
                i += 1
                while i < n:
                    emit(text[i])
                    if text[i] == "\\" and i + 1 < n:
                        i += 1
                        emit(text[i])
                    elif text[i] == quote:
                        i += 1
                        break
                    i += 1
                else:
                    break
                continue
            if ch == "/" and nxt == "/":
                while i < n and text[i] != "\n":
                    i += 1
                continue
            if ch == "/" and nxt == "*":
                start_line = line_no
                end = text.find("*/", i + 2)
                if end < 0:
                    raise PreprocessorError(
                        "unterminated comment",
                        SourceLocation(filename, _orig(splice_map, start_line)),
                    )
                body = text[i + 2 : end]
                replacement = self._handle_comment(
                    body, filename, _orig(splice_map, start_line), out
                )
                newlines = body.count("\n")
                for ch2 in replacement:
                    emit(ch2)
                for _ in range(newlines):
                    emit("\n")
                i = end + 2
                continue
            emit(ch)
            i += 1
        if buf:
            result.append("".join(buf))
        return [(line, _orig(splice_map, idx + 1)) for idx, line in enumerate(result)]

    def _handle_comment(
        self, body: str, filename: str, line: int, out: PreprocessedSource
    ) -> str:
        """Process one block-comment body; returns its replacement text."""
        content = body.lstrip("*").strip()
        if not content.startswith(ANNOTATION_TAG):
            return " "
        ann_text = content[len(ANNOTATION_TAG):]
        # the paper's closing delimiter /***/ leaves a trailing '/**'-ish tail
        ann_text = ann_text.rstrip().rstrip("/*").strip()
        location = SourceLocation(filename, line)
        try:
            items = parse_annotation(ann_text, location)
        except AnnotationError as exc:
            if not self.recover:
                raise
            out.degraded.append(DegradedUnit(
                kind=KIND_ANNOTATION,
                name=ann_text[:60] or "<empty annotation>",
                cause=exc.message,
                location=location,
            ))
            return " "
        out.annotations.append(
            ExtractedAnnotation(location=location, items=items, raw_text=ann_text)
        )
        # rewrite assert(safe(x)) items into dummy marker calls in place
        calls = [
            f"{ASSERT_SAFE_MARKER}({item.variable});"
            for item in items
            if isinstance(item, AssertSafe)
        ]
        return " " + " ".join(calls) + (" " if calls else "")

    # ------------------------------------------------------------------
    # directives
    # ------------------------------------------------------------------

    def _directive(
        self,
        body: str,
        filename: str,
        line: int,
        depth: int,
        cond_stack: List[List[bool]],
        out_lines: List[str],
        out: PreprocessedSource,
    ) -> None:
        loc = SourceLocation(filename, line)
        parts = body.split(None, 1)
        if not parts:
            return
        name = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        active = not cond_stack or all(frame[0] for frame in cond_stack)

        if name == "ifdef":
            taking = active and rest.split()[0] in self.macros if rest else False
            cond_stack.append([taking, taking, False])
        elif name == "ifndef":
            defined = rest.split()[0] in self.macros if rest else True
            taking = active and not defined
            cond_stack.append([taking, taking, False])
        elif name == "if":
            taking = active and bool(self._eval_condition(rest, loc))
            cond_stack.append([taking, taking, False])
        elif name == "elif":
            if not cond_stack:
                raise PreprocessorError("#elif without #if", loc)
            frame = cond_stack[-1]
            if frame[2]:
                raise PreprocessorError("#elif after #else", loc)
            outer_active = len(cond_stack) == 1 or all(
                f[0] for f in cond_stack[:-1]
            )
            if frame[1] or not outer_active:
                frame[0] = False
            else:
                frame[0] = bool(self._eval_condition(rest, loc))
                frame[1] = frame[0]
        elif name == "else":
            if not cond_stack:
                raise PreprocessorError("#else without #if", loc)
            frame = cond_stack[-1]
            if frame[2]:
                raise PreprocessorError("duplicate #else", loc)
            outer_active = len(cond_stack) == 1 or all(
                f[0] for f in cond_stack[:-1]
            )
            frame[0] = outer_active and not frame[1]
            frame[2] = True
        elif name == "endif":
            if not cond_stack:
                raise PreprocessorError("#endif without #if", loc)
            cond_stack.pop()
        elif not active:
            return
        elif name == "define":
            self._define(rest, loc)
        elif name == "undef":
            self.macros.pop(rest.split()[0], None) if rest else None
        elif name == "include":
            self._include(rest, filename, loc, depth, out_lines, out)
        elif name in ("pragma", "line"):
            return
        elif name == "error":
            raise PreprocessorError(f"#error {rest}", loc)
        else:
            raise PreprocessorError(f"unsupported directive #{name}", loc)

    def _define(self, rest: str, loc: SourceLocation) -> None:
        m = _IDENT_RE.match(rest)
        if m is None:
            raise PreprocessorError(f"malformed #define {rest!r}", loc)
        name = m.group()
        after = rest[m.end():]
        if after.startswith("("):
            close = after.find(")")
            if close < 0:
                raise PreprocessorError(f"malformed macro parameters in {name}", loc)
            raw = after[1:close].strip()
            params = [p.strip() for p in raw.split(",")] if raw else []
            body = after[close + 1:].strip()
            self.macros[name] = Macro(name, body, params)
        else:
            self.macros[name] = Macro(name, after.strip())

    def _include(
        self,
        rest: str,
        filename: str,
        loc: SourceLocation,
        depth: int,
        out_lines: List[str],
        out: PreprocessedSource,
    ) -> None:
        rest = rest.strip()
        if rest.startswith("<"):
            name = rest[1:].split(">", 1)[0].strip()
            if name:
                out.system_includes.append(name)
            if self.fake_headers and name:
                from .fakelibc import fake_header

                stub = fake_header(name)
                if stub is not None:
                    out.fake_included.append(name)
                    if id(stub) not in self._fake_done:
                        self._fake_done.add(id(stub))
                        self._process(
                            stub, f"<fake:{name}>", depth + 1,
                            out_lines, out,
                        )
                    return
            return  # system headers: builtin prelude supplies declarations
        m = re.match(r'"([^"]+)"', rest)
        if m is None:
            raise PreprocessorError(f"malformed #include {rest!r}", loc)
        target = m.group(1)
        search = [os.path.dirname(os.path.abspath(filename))] + self.include_dirs
        active = {os.path.abspath(p) for p in self._active}
        for directory in search:
            candidate = os.path.join(directory, target)
            if os.path.exists(candidate):
                if os.path.abspath(candidate) in active:
                    chain = " -> ".join(self._active + [candidate])
                    raise PreprocessorError(
                        f"circular #include of {target!r}: {chain}", loc
                    )
                with open(candidate, "r") as f:
                    text = f.read()
                self._process(text, candidate, depth + 1, out_lines, out)
                return
        if self.ignore_missing_includes:
            out.skipped_includes.append(target)
            return
        raise PreprocessorError(f"include file not found: {target}", loc)

    # ------------------------------------------------------------------
    # macro expansion & conditional evaluation
    # ------------------------------------------------------------------

    def _expand_line(self, line: str, filename: str, lineno: int,
                     depth: int = 0) -> str:
        """Single-pass, string-aware macro expansion of one line."""
        if depth > 16 or not self.macros:
            return line
        out: List[str] = []
        i = 0
        n = len(line)
        changed = False
        while i < n:
            ch = line[i]
            if ch in "\"'":
                j = _skip_string(line, i)
                out.append(line[i:j])
                i = j
                continue
            if ch.isalpha() or ch == "_":
                m = _IDENT_RE.match(line, i)
                word = m.group()
                i = m.end()
                macro = self.macros.get(word)
                if macro is None:
                    out.append(word)
                    continue
                if macro.is_function_like:
                    k = i
                    while k < n and line[k] in " \t":
                        k += 1
                    if k >= n or line[k] != "(":
                        out.append(word)
                        continue
                    args, consumed = _parse_macro_args(
                        line[k:], filename, lineno
                    )
                    i = k + consumed
                    out.append(_substitute(macro, args, filename, lineno))
                else:
                    out.append(macro.body)
                changed = True
                continue
            if ch.isdigit():
                # consume the whole numeric token so macro names inside
                # literals (0xFF, 1e10) are never expanded
                j = i
                while j < n and (line[j].isalnum() or line[j] in "._"):
                    j += 1
                out.append(line[i:j])
                i = j
                continue
            out.append(ch)
            i += 1
        joined = "".join(out)
        if changed:
            return self._expand_line(joined, filename, lineno, depth + 1)
        return joined

    def _eval_condition(self, expr: str, loc: SourceLocation) -> int:
        def repl_defined(m: re.Match) -> str:
            name = m.group(1) or m.group(2)
            return "1" if name in self.macros else "0"

        expr = _DEFINED_RE.sub(repl_defined, expr)
        expr = self._expand_line(expr, loc.filename, loc.line)
        # drop integer suffixes, then zero out unknown identifiers
        expr = re.sub(r"\b(\d+)[uUlL]+\b", r"\1", expr)
        expr = _IDENT_RE.sub("0", expr)
        expr = expr.replace("&&", " and ").replace("||", " or ")
        expr = re.sub(r"!(?!=)", " not ", expr)
        if not re.fullmatch(r"[\d\s()+\-*/%<>=&|^~a-z,]*", expr):
            raise PreprocessorError(f"cannot evaluate #if expression {expr!r}", loc)
        try:
            return int(bool(eval(expr, {"__builtins__": {}}, {})))  # noqa: S307
        except Exception as exc:
            raise PreprocessorError(
                f"cannot evaluate #if expression: {exc}", loc
            )


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def _splice_lines(text: str) -> Tuple[str, List[int]]:
    """Join backslash-continued lines; map spliced line → original line."""
    out_lines: List[str] = []
    mapping: List[int] = []
    pending = ""
    pending_start = None
    for idx, raw in enumerate(text.split("\n"), start=1):
        if raw.endswith("\\"):
            if pending_start is None:
                pending_start = idx
            pending += raw[:-1]
            continue
        if pending:
            out_lines.append(pending + raw)
            mapping.append(pending_start or idx)
            pending = ""
            pending_start = None
        else:
            out_lines.append(raw)
            mapping.append(idx)
    if pending:
        out_lines.append(pending)
        mapping.append(pending_start or len(mapping) + 1)
    return "\n".join(out_lines), mapping


def _orig(splice_map: List[int], spliced_line: int) -> int:
    idx = spliced_line - 1
    if 0 <= idx < len(splice_map):
        return splice_map[idx]
    return spliced_line


def _skip_string(text: str, start: int) -> int:
    """Index just past the string/char literal starting at ``start``."""
    quote = text[start]
    i = start + 1
    while i < len(text):
        if text[i] == "\\":
            i += 2
            continue
        if text[i] == quote:
            return i + 1
        i += 1
    return len(text)


def _parse_macro_args(
    text: str, filename: str, lineno: int
) -> Tuple[List[str], int]:
    """Parse '(a, b, ...)' at the start of text; returns (args, consumed).

    String/char literals are opaque: commas and parentheses inside them
    do not separate arguments.
    """
    if not text.startswith("("):
        raise PreprocessorError(
            "internal: macro argument list expected",
            SourceLocation(filename, lineno),
        )
    depth = 0
    args: List[str] = []
    current: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch in "\"'":
            j = _skip_string(text, i)
            current.append(text[i:j])
            i = j
            continue
        if ch == "(":
            depth += 1
            if depth == 1:
                i += 1
                continue
        elif ch == ")":
            depth -= 1
            if depth == 0:
                args.append("".join(current).strip())
                if args == [""]:
                    args = []
                return args, i + 1
        elif ch == "," and depth == 1:
            args.append("".join(current).strip())
            current = []
            i += 1
            continue
        if depth >= 1:
            current.append(ch)
        i += 1
    raise PreprocessorError(
        "unterminated macro argument list (multi-line macro calls are not "
        "supported)",
        SourceLocation(filename, lineno),
    )


def _substitute(
    macro: Macro, args: List[str], filename: str, lineno: int
) -> str:
    params = macro.params or []
    if len(args) != len(params):
        raise PreprocessorError(
            f"macro {macro.name} expects {len(params)} arguments, got "
            f"{len(args)}",
            SourceLocation(filename, lineno),
        )
    body = macro.body
    mapping = dict(zip(params, args))

    def repl(m: re.Match) -> str:
        return mapping.get(m.group(), m.group())

    return _IDENT_RE.sub(repl, body)
