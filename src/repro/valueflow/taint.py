"""The safe/unsafe lattice of §2, with provenance.

A value's taint records *which* unmonitored non-core reads it depends
on, split by dependency kind:

- ``data`` sources reach the value through assignments/arithmetic/
  memory — the paper's hard errors;
- ``control`` sources reach it only because a branch tested an unsafe
  value — the class the paper triages as candidate false positives
  (§3.4.1).

``safe(x)`` ⇔ both sets empty; ``unsafe(x)`` ⇔ data nonempty. The
mutual exclusion of the predicates in §2 is the emptiness test here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple

from ..ir.source import SourceLocation


@dataclass(frozen=True, order=True)
class TaintSource:
    """One unmonitored read of a non-core shared variable."""

    region: str
    function: str
    filename: str
    line: int

    @property
    def location(self) -> SourceLocation:
        return SourceLocation(self.filename, self.line)

    def describe(self) -> str:
        return (
            f"unmonitored read of non-core {self.region!r} in "
            f"{self.function} at {self.filename}:{self.line}"
        )


SourceSet = FrozenSet[TaintSource]
EMPTY_SOURCES: SourceSet = frozenset()


@dataclass(frozen=True)
class Taint:
    """Provenance-carrying taint value; immutable and hashable."""

    data: SourceSet = EMPTY_SOURCES
    control: SourceSet = EMPTY_SOURCES

    # -- lattice ---------------------------------------------------------

    def join(self, other: "Taint") -> "Taint":
        if other.is_safe:
            return self
        if self.is_safe:
            return other
        return Taint(self.data | other.data, self.control | other.control)

    def as_control(self) -> "Taint":
        """Demote everything to control provenance (branch influence)."""
        sources = self.data | self.control
        if not sources:
            return SAFE
        return Taint(EMPTY_SOURCES, sources)

    # -- queries ----------------------------------------------------------

    @property
    def is_safe(self) -> bool:
        return not self.data and not self.control

    @property
    def is_unsafe(self) -> bool:
        """The paper's unsafe(x): data dependence on a non-core value."""
        return bool(self.data)

    @property
    def all_sources(self) -> SourceSet:
        return self.data | self.control

    def __bool__(self) -> bool:
        return not self.is_safe

    def __str__(self) -> str:
        if self.is_safe:
            return "safe"
        parts = []
        if self.data:
            parts.append("data:{" + ",".join(sorted(s.region for s in self.data)) + "}")
        if self.control:
            parts.append(
                "ctrl:{" + ",".join(sorted(s.region for s in self.control)) + "}"
            )
        return "unsafe(" + " ".join(parts) + ")"


SAFE = Taint()


def data_taint(sources: Iterable[TaintSource]) -> Taint:
    return Taint(frozenset(sources), EMPTY_SOURCES)


def join_all(taints: Iterable[Taint]) -> Taint:
    result = SAFE
    for taint in taints:
        result = result.join(taint)
    return result
