"""The safe/unsafe lattice of §2, with provenance.

A value's taint records *which* unmonitored non-core reads it depends
on, split by dependency kind:

- ``data`` sources reach the value through assignments/arithmetic/
  memory — the paper's hard errors;
- ``control`` sources reach it only because a branch tested an unsafe
  value — the class the paper triages as candidate false positives
  (§3.4.1).

``safe(x)`` ⇔ both sets empty; ``unsafe(x)`` ⇔ data nonempty. The
mutual exclusion of the predicates in §2 is the emptiness test here.

Taint values are **hash-consed**: for any (data, control) pair there is
exactly one live :class:`Taint` instance, so equality and hashing are
pointer operations instead of frozenset comparisons (which dominated
profiles of the value-flow phase — every instruction-level transfer
compares old vs new taint). ``join`` is memoized on the identities of
its operands; because the intern table holds strong references, object
ids are stable keys for the lifetime of the process. Pickling round-
trips through the constructor, so an unpickled taint is the *same*
object as its interned original.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, FrozenSet, Iterable, Tuple

from ..ir.source import SourceLocation


@dataclass(frozen=True, order=True)
class TaintSource:
    """One unmonitored read of a non-core shared variable."""

    region: str
    function: str
    filename: str
    line: int

    @property
    def location(self) -> SourceLocation:
        return SourceLocation(self.filename, self.line)

    def describe(self) -> str:
        return (
            f"unmonitored read of non-core {self.region!r} in "
            f"{self.function} at {self.filename}:{self.line}"
        )


SourceSet = FrozenSet[TaintSource]
EMPTY_SOURCES: SourceSet = frozenset()


@dataclass(frozen=True, eq=False)
class Taint:
    """Provenance-carrying taint value; immutable, interned, hashable.

    ``eq=False`` is deliberate: interning makes default identity
    equality/hashing exact (two taints with equal source sets are the
    same object) and removes frozenset hashing from the hot path.
    """

    data: SourceSet = EMPTY_SOURCES
    control: SourceSet = EMPTY_SOURCES

    #: intern table: (data, control) → the unique instance. Strong
    #: references on purpose — stable ids are what makes the identity-
    #: keyed join memo sound.
    _intern: ClassVar[Dict[Tuple[SourceSet, SourceSet], "Taint"]] = {}

    def __new__(cls, data: SourceSet = EMPTY_SOURCES,
                control: SourceSet = EMPTY_SOURCES) -> "Taint":
        # sets must be frozensets here; a mutable set fails loudly on
        # hashing, which beats silently interning an aliasable value
        key = (data, control)
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        cls._intern[key] = self
        return self

    def __reduce__(self):
        # pickling must re-enter the intern table, otherwise unpickled
        # taints would be distinct objects and identity equality breaks
        return (Taint, (self.data, self.control))

    # -- lattice ---------------------------------------------------------

    def join(self, other: "Taint") -> "Taint":
        if other is self or other.is_safe:
            return self
        if self.is_safe:
            return other
        key = (id(self), id(other))
        cached = _JOIN_MEMO.get(key)
        if cached is None:
            _JOIN_STATS["misses"] += 1
            cached = Taint(self.data | other.data,
                           self.control | other.control)
            _JOIN_MEMO[key] = cached
            _JOIN_MEMO[(key[1], key[0])] = cached
        else:
            _JOIN_STATS["hits"] += 1
        return cached

    def as_control(self) -> "Taint":
        """Demote everything to control provenance (branch influence)."""
        cached = self.__dict__.get("_as_control")
        if cached is not None:
            return cached
        sources = self.data | self.control
        result = SAFE if not sources else Taint(EMPTY_SOURCES, sources)
        object.__setattr__(self, "_as_control", result)
        return result

    # -- queries ----------------------------------------------------------

    @property
    def is_safe(self) -> bool:
        return not self.data and not self.control

    @property
    def is_unsafe(self) -> bool:
        """The paper's unsafe(x): data dependence on a non-core value."""
        return bool(self.data)

    @property
    def all_sources(self) -> SourceSet:
        return self.data | self.control

    def __bool__(self) -> bool:
        return not self.is_safe

    def __str__(self) -> str:
        if self.is_safe:
            return "safe"
        parts = []
        if self.data:
            parts.append("data:{" + ",".join(sorted(s.region for s in self.data)) + "}")
        if self.control:
            parts.append(
                "ctrl:{" + ",".join(sorted(s.region for s in self.control)) + "}"
            )
        return "unsafe(" + " ".join(parts) + ")"


#: identity-keyed join memo; sound because the intern table keeps every
#: Taint alive (ids are never reused for live interned values)
_JOIN_MEMO: Dict[Tuple[int, int], Taint] = {}
_JOIN_STATS: Dict[str, int] = {"hits": 0, "misses": 0}

SAFE = Taint()


def data_taint(sources: Iterable[TaintSource]) -> Taint:
    return Taint(frozenset(sources), EMPTY_SOURCES)


def join_all(taints: Iterable[Taint]) -> Taint:
    result = SAFE
    for taint in taints:
        result = result.join(taint)
    return result


def taint_cache_stats() -> Dict[str, int]:
    """Observability for the interning layer (``--profile``)."""
    return {
        "taint_interned": len(Taint._intern),
        "taint_join_hits": _JOIN_STATS["hits"],
        "taint_join_misses": _JOIN_STATS["misses"],
    }
