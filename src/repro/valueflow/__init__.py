"""Phase 3 — unsafe value propagation and critical-data checking."""

from .engine import (
    COPY_CALLS,
    IMPLICIT_CRITICAL_CALLS,
    ValueFlowAnalysis,
)
from .taint import SAFE, Taint, TaintSource, data_taint, join_all
from .vfg import ValueFlowGraph, VFGNode

__all__ = [
    "COPY_CALLS",
    "IMPLICIT_CRITICAL_CALLS",
    "SAFE",
    "Taint",
    "TaintSource",
    "VFGNode",
    "ValueFlowAnalysis",
    "ValueFlowGraph",
    "data_taint",
    "join_all",
]
