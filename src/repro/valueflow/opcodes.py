"""Opcode constants of the compiled value-flow kernel.

A compiled function body is a flat sequence of tuples whose first
element is one of the integers below (see :mod:`repro.valueflow.kernel`
for the operand layouts and the interpreter loop). The module is a
leaf on purpose: :mod:`repro.perf.fingerprint` imports the format
version without pulling in the engine.

``OPCODE_FORMAT_VERSION`` names the on-the-wire shape of compiled
programs *and* of everything the kernel's bitset encoding can leak
into persisted state. It is folded into :func:`repro.perf.fingerprint.
config_fingerprint` whenever ``AnalysisConfig.kernel == "compiled"``,
so summary records written by one program format are never replayed
into another. Bump it on any change to the opcode layouts or the
lattice encoding.
"""

from __future__ import annotations

from typing import Dict

#: bump on any change to opcode layouts or the bitset lattice encoding
OPCODE_FORMAT_VERSION = 1

#: pure dataflow join over operand slots (BinOp/UnaryOp/Cmp/Cast/
#: FieldAddr/IndexAddr)
OP_JOIN = 0
#: SSA phi: join of incoming slots plus the block's phi-control taint
OP_PHI = 1
#: load of an unmonitored non-core region: constant source bits
OP_LOAD_UNMON = 2
#: load through core shared memory: one memory-cell read
OP_LOAD_CORE = 3
#: monitored non-core load: the block control taint alone
OP_LOAD_CTL = 4
#: plain memory load: pointer taint joined with the pointee cell(s)
OP_LOAD_PLAIN = 5
#: store: join value and control taint into the target cell(s)
OP_STORE = 6
#: ``assert(safe(x))`` marker: critical-dependency check
OP_ASSERT = 7
#: implicitly critical external (``kill`` pid, §3.1)
OP_CRITICAL = 8
#: call with known targets: interprocedural dispatch per target
OP_CALL_DIRECT = 9
#: call to an unknown external: join args and pointee cells
OP_CALL_EXTERNAL = 10
#: escape hatch: delegate one instruction to the object-domain
#: transfer function (copy calls, recv, degraded callees)
OP_GENERIC = 11

OPCODE_NAMES: Dict[int, str] = {
    OP_JOIN: "join",
    OP_PHI: "phi",
    OP_LOAD_UNMON: "load_unmon",
    OP_LOAD_CORE: "load_core",
    OP_LOAD_CTL: "load_ctl",
    OP_LOAD_PLAIN: "load_plain",
    OP_STORE: "store",
    OP_ASSERT: "assert",
    OP_CRITICAL: "critical",
    OP_CALL_DIRECT: "call_direct",
    OP_CALL_EXTERNAL: "call_external",
    OP_GENERIC: "generic",
}
