"""Bitset encoding of the taint lattice.

:class:`RegionInterner` assigns each distinct :class:`TaintSource` a
dense bit index, so a whole :class:`Taint` becomes one Python int —
the low ``width`` bits carry *data* provenance, the next ``width``
bits carry *control* provenance — and the lattice operations collapse
to integer arithmetic:

- ``join``        → ``a | b``
- ``unsafe(x)``   → ``enc & data_mask != 0``
- ``as_control``  → ``((enc | enc >> width) & data_mask) << width``
- placeholder strip (summary mode) → ``enc & keep_mask``

``encode``/``decode`` are total inverses over interned taints:
``decode(encode(t)) is t`` (decoding re-enters the :class:`Taint`
intern table, so identity-keyed memos in the engine stay sound), and
distinct taints never share an encoding.

The interner is capped at ``width`` distinct sources. Interning the
``width + 1``-th source raises :class:`KernelOverflow`; the compiled
kernel catches it and falls back to the object-domain body (see
``kernel.py`` — every compiled effect is an idempotent, monotone join,
so re-running a partially executed body in the object domain converges
to the identical fixpoint). The cap bounds interner memory, not
integer size: encodings are ordinary Python ints and stay small while
few bits are set, which is the common case.
"""

from __future__ import annotations

from typing import Dict, List

from .taint import EMPTY_SOURCES, SAFE, Taint, TaintSource

#: default interner capacity; ``AnalysisConfig.kernel_width`` overrides
DEFAULT_WIDTH = 256

#: summary-mode parameter placeholders (must match the engine's
#: ``_PLACEHOLDER_PREFIX``; asserted in the engine at kernel start-up)
PLACEHOLDER_PREFIX = "\x00arg:"


class KernelOverflow(Exception):
    """The bitset domain ran out of width; caller must fall back."""


class RegionInterner:
    """Dense bit indices for taint sources, plus encode/decode memos."""

    __slots__ = (
        "width", "data_mask", "keep_mask",
        "_bit_of", "_source_of", "_enc_memo", "_dec_memo",
    )

    def __init__(self, width: int = DEFAULT_WIDTH):
        self.width = max(1, int(width))
        self.data_mask = (1 << self.width) - 1
        #: AND-mask dropping every placeholder bit (both halves);
        #: recomputed whenever a placeholder source is interned
        self.keep_mask = -1
        self._bit_of: Dict[TaintSource, int] = {}
        self._source_of: List[TaintSource] = []
        #: id(taint) -> encoding. Sound because the Taint intern table
        #: holds strong references: ids of interned taints never recycle.
        self._enc_memo: Dict[int, int] = {id(SAFE): 0}
        self._dec_memo: Dict[int, Taint] = {0: SAFE}

    def __len__(self) -> int:
        return len(self._source_of)

    def bit(self, source: TaintSource) -> int:
        index = self._bit_of.get(source)
        if index is None:
            index = len(self._source_of)
            if index >= self.width:
                raise KernelOverflow(
                    f"taint-source interner exceeded width {self.width}"
                )
            self._bit_of[source] = index
            self._source_of.append(source)
            if source.region.startswith(PLACEHOLDER_PREFIX):
                mask = 1 << index
                self.keep_mask &= ~(mask | mask << self.width)
        return index

    def encode(self, taint: Taint) -> int:
        enc = self._enc_memo.get(id(taint))
        if enc is not None:
            return enc
        bit = self.bit
        data = 0
        for source in taint.data:
            data |= 1 << bit(source)
        control = 0
        for source in taint.control:
            control |= 1 << bit(source)
        enc = data | control << self.width
        self._enc_memo[id(taint)] = enc
        self._dec_memo.setdefault(enc, taint)
        return enc

    def decode(self, enc: int) -> Taint:
        taint = self._dec_memo.get(enc)
        if taint is not None:
            return taint
        source_of = self._source_of
        data = enc & self.data_mask
        control = enc >> self.width
        data_sources = (
            frozenset(
                source_of[i] for i in range(data.bit_length())
                if data >> i & 1
            )
            if data else EMPTY_SOURCES
        )
        control_sources = (
            frozenset(
                source_of[i] for i in range(control.bit_length())
                if control >> i & 1
            )
            if control else EMPTY_SOURCES
        )
        taint = Taint(data_sources, control_sources)
        self._dec_memo[enc] = taint
        # the decoded taint round-trips to the same bits by construction
        self._enc_memo.setdefault(id(taint), enc)
        return taint

    def as_control(self, enc: int) -> int:
        """Bitset mirror of :meth:`Taint.as_control`."""
        return ((enc | enc >> self.width) & self.data_mask) << self.width
