"""Phase 3: interprocedural unsafe-value propagation (§3.3).

The engine implements the operational rules of §2 over the SSA IR:

- a load from a non-core shared region outside any monitoring context
  yields an *unsafe* value and a warning;
- inside a monitoring context (an ``assume(core(...))`` in force for
  the current call sequence) the same load is *safe*;
- taint propagates through computation (data), through memory cells
  (via the points-to analysis), across calls (context-sensitively: the
  assumed-core set flows to callees, and functions are re-analyzed per
  distinct context/argument-taint combination, memoized ESP-style),
  and through control dependence (phi nodes and stores in blocks
  controlled by unsafe branches acquire *control* provenance — the
  §3.4.1 false-positive class);
- every ``assert(safe(x))`` marker and every implicitly critical call
  argument (``kill``'s pid, §3.1) is checked; failures become
  :class:`CriticalDependencyError` with a value-flow-graph witness.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.config import AnalysisConfig
from ..degrade import degraded_region
from ..frontend.driver import Program
from ..frontend.parser import BUILTIN_FUNCTIONS
from ..resilience.guards import check_deadline
from ..ir import (
    Alloca,
    Argument,
    ASSERT_SAFE_MARKER,
    BasicBlock,
    BinOp,
    Call,
    Cast,
    Cmp,
    CondBranch,
    Constant,
    FieldAddr,
    Function,
    IndexAddr,
    Instruction,
    Load,
    Phi,
    Ret,
    Store,
    UnaryOp,
    UndefValue,
    Value,
    control_dependence,
)
from ..ir.values import GlobalVariable
from ..annotations.lang import AssertSafe
from ..pointer import Cell, PointsToAnalysis
from ..reporting.diagnostics import (
    CriticalDependencyError,
    DependencyKind,
    Severity,
    UnmonitoredReadWarning,
)
from ..perf.summary_store import (
    BodyRecorder,
    CellNamer,
    deser_args,
    deser_taint,
    ser_args,
    ser_ctx,
    ser_loc,
    ser_taint,
)
from ..shm.model import RegionSet
from ..shm.propagation import ResolvedAssume, ShmAnalysis
from .taint import SAFE, Taint, TaintSource, join_all
from .vfg import ValueFlowGraph, VFGNode

Context = FrozenSet[str]
EMPTY_CONTEXT: Context = frozenset()

#: externals whose nth argument is implicitly critical data (§3.1:
#: "the arguments to system calls such as the process-id argument to
#: kill are asserted to be critical data")
IMPLICIT_CRITICAL_CALLS: Dict[str, Tuple[int, ...]] = {"kill": (0,)}

#: byte-copy externals: taint flows from the source buffer cell (arg 1)
#: into the destination buffer cell (arg 0)
COPY_CALLS = frozenset({"memcpy", "memmove", "strcpy", "strncpy"})

_MAX_OUTER_ITERATIONS = 24

#: distinguishes "no evicted result to compare against" from any taint
_NO_RESULT = object()
_MAX_LOCAL_PASSES = 64


class _CellMap(dict):
    """``cell_taint`` with read/write observation for the sparse
    fixpoint.

    ``get`` registers the cell as a *read dependency* of the body
    currently on the engine's body stack; ``__setitem__`` marks the
    cell dirty when its taint actually changes (taints only grow, so
    "changed" means "grew") and bumps ``version`` so summary replay can
    detect interleaved mutation. With ``sparse_fixpoint`` off the map
    degrades to a plain dict plus the version counter.
    """

    def __init__(self, engine: "ValueFlowAnalysis"):
        super().__init__()
        self._engine = engine
        self.version = 0

    def get(self, cell, default=SAFE):
        engine = self._engine
        if engine._sparse and engine._body_stack:
            engine._note_cell_read(cell)
        return dict.get(self, cell, default)

    def __setitem__(self, cell, value) -> None:
        if dict.get(self, cell) != value:
            self.version += 1
            engine = self._engine
            if engine._sparse:
                engine._dirty_cells.add(cell)
        dict.__setitem__(self, cell, value)


class _RecordingCellMap(_CellMap):
    """``_CellMap`` that additionally feeds the summary-body recorder.

    Installed only when a summary store is active. ``get`` reports the
    observed taint to the current body recorder (a record's *inputs*);
    ``__setitem__`` reports joins (its *effects*).
    """

    def get(self, cell, default=SAFE):
        value = _CellMap.get(self, cell, default)
        engine = self._engine
        recorder = engine._active_recorder()
        if recorder is not None:
            recorder.note_read(engine._cell_key(cell), value)
        elif engine._track_couplings and engine._body_stack \
                and len(engine._body_stack[-1]) == 1:
            # merged (context-budget) bodies have no recorder, but
            # their cell couplings must still reach the segment
            # store's dependency graph (dirty-cone soundness)
            engine._note_merged_coupling(cell, read=True)
        return value

    def __setitem__(self, cell, value) -> None:
        _CellMap.__setitem__(self, cell, value)
        engine = self._engine
        recorder = engine._active_recorder()
        if recorder is not None:
            recorder.note_write(engine._cell_key(cell), value)
        elif engine._track_couplings and engine._body_stack \
                and len(engine._body_stack[-1]) == 1:
            engine._note_merged_coupling(cell, read=False)


class _RecordingVFG(ValueFlowGraph):
    """Value flow graph that mirrors edge adds into the body recorder."""

    def __init__(self, engine: "ValueFlowAnalysis"):
        super().__init__()
        self._engine = engine

    def add_edge(self, src: VFGNode, dst: VFGNode, kind: str = "data") -> None:
        super().add_edge(src, dst, kind)
        recorder = self._engine._active_recorder()
        if recorder is not None:
            recorder.note_edge(
                (src.kind, src.label, src.location),
                (dst.kind, dst.label, dst.location),
                kind,
            )


class ValueFlowAnalysis:
    """Runs phase 3 over one program; results in ``warnings``/``errors``."""

    def __init__(self, program: Program, shm: ShmAnalysis,
                 config: Optional[AnalysisConfig] = None,
                 summary_store=None):
        self.program = program
        self.shm = shm
        self.config = config or AnalysisConfig()
        self.module = program.module
        self.points_to = PointsToAnalysis(self.module, shm.callgraph).run()

        #: optional :class:`repro.perf.SummaryStore`; when set, summary
        #: bodies are recorded/replayed across processes
        self.summary_store = summary_store
        #: (function, body kind, "hit"|"miss") per summary body, in
        #: execution order — lets tests pin down exact invalidation
        self.summary_events: List[Tuple[str, str, str]] = []
        self._recorders: List[Optional[BodyRecorder]] = []
        self._flow_fps = None
        self._cell_namer: Optional[CellNamer] = None
        #: trusted (optimistic) segment replay: apply records without
        #: sweep-time read validation and re-check every replayed read
        #: against the *converged* state at the end of the run; on any
        #: mismatch the driver falls back to a validating rerun
        self._trust_replay = bool(getattr(summary_store, "trust_replay",
                                          False))
        self._deferred_reads: List[Tuple] = []  # (cell, expected ser)
        self._deferred_seen: Set[Tuple] = set()
        #: merged-input seeds applied this run (function → the seed
        #: entry it must still serialize to at convergence)
        self._seed_expect: Dict[Function, tuple] = {}
        self.replay_validation_failed = False
        #: cell couplings of merged bodies (no recorder), reported to
        #: the segment store as dependency-graph stubs
        self._track_couplings = hasattr(summary_store, "note_coupling")
        self._merged_coupling: Dict[str, Tuple[Set[str], Set[str]]] = {}

        #: sparse-fixpoint bookkeeping (see :meth:`run`). ``_sparse``
        #: must exist before the cell map: its hooks consult it.
        self._sparse = bool(getattr(self.config, "sparse_fixpoint", True))
        self._profile = bool(getattr(self.config, "profile", False))
        self._body_stack: List[Tuple] = []
        self._key_reads: Dict[Tuple, Set[Cell]] = {}
        self._cell_readers: Dict[Cell, Set[Tuple]] = {}
        self._key_calls: Dict[Tuple, Set[Tuple]] = {}
        self._result_observers: Dict[Tuple, Set[Tuple]] = {}
        self._func_keys: Dict[Function, Set[Tuple]] = {}
        self._root_keys: Set[Tuple] = set()
        self._dirty_cells: Set[Cell] = set()
        self._merged_dirty: Set[Function] = set()
        #: revalidation state: the inputs each memo key last ran with
        #: (so an evicted body can re-run directly, without a root
        #: descent), the evicted results awaiting comparison, and the
        #: queue of keys to re-run next sweep
        self._key_inputs: Dict[
            Tuple, Tuple[Function, Context, Tuple[Taint, ...]]
        ] = {}
        self._stale: Dict[Tuple, Taint] = {}
        self._revalidation: "deque[Tuple]" = deque()
        #: observability (``AnalysisStats.kernel_counters``)
        self.kernel_counters: Dict[str, int] = {
            "outer_iterations": 0,
            "bodies_analyzed": 0,
            "body_memo_hits": 0,
            "sparse_invalidated": 0,
            "cells_dirtied": 0,
        }
        #: per-body inclusive/self timings when ``config.profile``
        self.body_profile: Dict[str, Dict[str, float]] = {}
        self._profile_stack: List[list] = []

        #: compiled kernel (bitset taints + flat opcode programs); the
        #: object-domain body below stays the byte-identity oracle and
        #: the fallback target (see repro.valueflow.kernel)
        self._kernel = None
        if getattr(self.config, "kernel", "compiled") == "compiled":
            from .kernel import KernelState

            self._kernel = KernelState(
                self, width=getattr(self.config, "kernel_width", 256)
            )
        self._value_node_memo: Dict[Tuple[Function, Value], VFGNode] = {}

        if summary_store is not None:
            self.cell_taint: Dict[Cell, Taint] = _RecordingCellMap(self)
            self.vfg = _RecordingVFG(self)
        else:
            self.cell_taint = _CellMap(self)
            self.vfg = ValueFlowGraph()
        self.warnings_map: Dict[Tuple[str, str, int], UnmonitoredReadWarning] = {}
        self._failures: Dict[Tuple[str, int, str, str], Dict[str, Set[TaintSource]]] = {}
        #: fail-closed degradation (see :mod:`repro.degrade`): calls
        #: into these functions are unmonitored non-core flow
        self._degraded_functions = frozenset(
            getattr(program, "degraded_functions", ()) or ())
        #: a whole translation unit was dropped — unresolved externals
        #: may live in it, so they too are treated fail-closed
        self._unit_degraded = any(
            d.kind == "unit" for d in getattr(program, "degraded", ()) or ())
        self._memo: Dict[Tuple, Taint] = {}
        self._in_progress: Set[Tuple] = set()
        self._control_deps: Dict[Function, Dict[BasicBlock, Set[BasicBlock]]] = {}
        self._ineffective: Set[Tuple[str, str]] = set()
        self._ctx_counts: Dict[Function, Set[Context]] = {}
        self._merged_inputs: Dict[Function, Tuple[Context, Tuple[Taint, ...]]] = {}
        self._summary_args: Dict[Function, Tuple[Taint, ...]] = {}
        self._inputs_changed = False
        self._assert_vars: Dict[Tuple[str, int], str] = {}
        for annotation in program.annotations:
            for item in annotation.items:
                if isinstance(item, AssertSafe) and item.location is not None:
                    key = (item.location.filename, item.location.line)
                    self._assert_vars[key] = item.variable

        self.warnings: List[UnmonitoredReadWarning] = []
        self.errors: List[CriticalDependencyError] = []
        self.witness_graphs: Dict[int, str] = {}
        self.contexts_analyzed = 0

    # ------------------------------------------------------------------

    def run(self) -> "ValueFlowAnalysis":
        """Outer fixpoint over the interprocedural cell/taint state.

        Dense mode (``sparse_fixpoint=False``) is the reference loop:
        snapshot the cell map, wipe every memo, re-run every root, stop
        when nothing moved. Sparse mode keeps the memo table across
        iterations and, between sweeps, evicts exactly the bodies whose
        *consulted* cells were dirtied (or whose merged inputs grew)
        and re-runs them directly from their recorded inputs; a re-run
        whose result actually moved evicts the bodies that observed the
        old result, and so on until the queue drains. Taints only grow,
        so a body none of whose inputs changed would recompute the same
        result; skipping it is behavior-preserving and the reports come
        out byte-identical.
        """
        store = self.summary_store
        if store is not None and hasattr(store, "begin_run"):
            # incremental invalidation: hand the store every defined
            # function's closure fingerprint so it can evict the dirty
            # cone (changed functions + transitive callers via the
            # fingerprint diff, cell-coupled readers via its dependency
            # graph) before the first lookup
            store.begin_run({
                func.name: self._closure_fp(func)
                for func in self.module.defined_functions()
            })
            if self._trust_replay:
                self._apply_merged_seeds(store)
        roots = self._roots()
        sparse = self._sparse
        for iteration in range(_MAX_OUTER_ITERATIONS):
            check_deadline()  # resource-guard budget (no-op unarmed)
            self.kernel_counters["outer_iterations"] = iteration + 1
            if sparse:
                if iteration:
                    self._invalidate_stale()
            else:
                snapshot = {c: t for c, t in self.cell_taint.items()}
                self._memo.clear()
                self._failures.clear()
            self._in_progress.clear()
            self._inputs_changed = False
            if sparse and iteration:
                self._revalidate()
            else:
                for root in roots:
                    args = tuple(SAFE for _ in root.arguments)
                    self._analyze(root, EMPTY_CONTEXT, args)
            if sparse:
                self.kernel_counters["cells_dirtied"] += len(self._dirty_cells)
                if not self._dirty_cells and not self._inputs_changed:
                    break
            elif self._stable(snapshot) and not self._inputs_changed:
                break
        if self._trust_replay and not (self._validate_deferred()
                                       and self._verify_merged_seeds()):
            # some trusted read (or applied merged-input seed) does not
            # hold at the converged state: the optimistic cell map may
            # be contaminated. Discard the run (no finalize, no flush —
            # staged records were computed against suspect state); the
            # driver reruns validating. Poison the held seeds too: the
            # fallback rerun re-harvests correct ones.
            self.replay_validation_failed = True
            if hasattr(store, "discard_staged"):
                store.discard_staged()
            if hasattr(store, "hold_merged_seeds"):
                store.hold_merged_seeds(None)
            return self
        self.contexts_analyzed = (
            self._reachable_contexts() if sparse else len(self._memo)
        )
        if self._kernel is not None:
            self._kernel.publish_counters(self.kernel_counters)
        self._finalize()
        if self.summary_store is not None:
            if self._track_couplings:
                for fname in sorted(self._merged_coupling):
                    reads, writes = self._merged_coupling[fname]
                    self.summary_store.note_coupling(fname, reads, writes)
            self.summary_store.flush()
            if hasattr(self.summary_store, "hold_merged_seeds"):
                self.summary_store.hold_merged_seeds(
                    self._harvest_merged_seeds())
        return self

    def _validate_deferred(self) -> bool:
        """Re-check every read a trusted replay deferred, against the
        converged cell state. All must hold for the run to stand."""
        if not self._deferred_reads:
            return True
        self.kernel_counters["segment_deferred_reads"] = len(
            self._deferred_reads)
        cmap = self.cell_taint
        for cell, expected in self._deferred_reads:
            if ser_taint(dict.get(cmap, cell, SAFE)) != expected:
                return False
        return True

    # ------------------------------------------------------------------
    # merged-input seeding (session-carried warm-run acceleration)
    # ------------------------------------------------------------------
    #
    # The merged joins (``_merged_inputs`` / ``_summary_args``) and the
    # per-function admitted-context sets (``_ctx_counts``) are rebuilt
    # from scratch every run, and every step of that rebuild marks
    # ``_merged_dirty`` — on a warm run the resulting widening cascade
    # (one outer sweep per call-chain level, each evicting the upward
    # observer closure) dominates the value-flow phase. A run whose
    # inputs did not change converges to exactly the previous run's
    # joins, so a *trusted* run may start them there: the joins then
    # never move, no cascade fires, and one replay sweep converges.
    #
    # Soundness mirrors trusted segment replay. Seeds are dropped for
    # the downward call closure of the dirty cone (over both the
    # previous run's dispatch edges and the current IR call graph), so
    # a surviving seed's every contribution comes from unchanged code;
    # at convergence every applied seed is re-checked against the final
    # joins and any mismatch triggers the same validating-rerun
    # fallback as a failed deferred read. Transient artifacts a cold
    # run emits while its joins are still growing are subsets of the
    # final converged body runs' (taints only grow; assumed-core
    # contexts only shrink), so skipping the transient is report-
    # preserving — the differential suite holds byte-identity.

    def _apply_merged_seeds(self, store) -> None:
        """Start the merged-input joins at the previous run's converged
        values, minus the dirty cone's downward call closure."""
        seeds = getattr(store, "merged_seeds", None)
        if not seeds or not self._sparse:
            return
        drop = set(getattr(store, "last_cone", ()))
        drop |= set(getattr(store, "last_seeds", ()))
        if drop:
            old_calls = seeds.get("calls", {})
            callgraph = self.shm.callgraph
            work = list(drop)
            while work:
                name = work.pop()
                callees = set(old_calls.get(name, ()))
                func = self.module.get_function(name)
                if func is not None:
                    callees.update(c.name for c in callgraph.callees(func))
                for callee in callees:
                    if callee not in drop:
                        drop.add(callee)
                        work.append(callee)
        applied = 0
        for fname, entry in seeds.get("funcs", {}).items():
            if fname in drop:
                continue
            func = self.module.get_function(fname)
            if func is None or func.is_declaration:
                continue
            merged, sargs, ctxs = entry
            if merged is not None:
                ctx_ser, args_ser = merged
                self._merged_inputs[func] = (
                    frozenset(ctx_ser), deser_args(args_ser))
            if sargs is not None:
                self._summary_args[func] = deser_args(sargs)
            if ctxs:
                self._ctx_counts[func] = {frozenset(c) for c in ctxs}
            self._seed_expect[func] = entry
            applied += 1
        self.kernel_counters["merged_seeds_applied"] = applied

    def _harvest_merged_seeds(self) -> Optional[dict]:
        """The converged joins of this run, keyed by function name,
        plus the name-level dispatch adjacency (so the next run can
        drop seeds downstream of edits even when the caller's bodies
        were merged and left no persisted segment)."""
        if not self._sparse:
            return None
        funcs: Dict[str, tuple] = {}
        for func in (set(self._merged_inputs) | set(self._summary_args)
                     | set(self._ctx_counts)):
            merged = self._merged_inputs.get(func)
            sargs = self._summary_args.get(func)
            seen = self._ctx_counts.get(func)
            funcs[func.name] = (
                (ser_ctx(merged[0]), ser_args(merged[1]))
                if merged is not None else None,
                ser_args(sargs) if sargs is not None else None,
                tuple(sorted(ser_ctx(c) for c in seen)) if seen else (),
            )
        calls: Dict[str, Set[str]] = {}
        for key, callee_keys in self._key_calls.items():
            adjacency = calls.setdefault(key[0].name, set())
            for callee_key in callee_keys:
                adjacency.add(callee_key[0].name)
        return {"funcs": funcs, "calls": calls}

    def _verify_merged_seeds(self) -> bool:
        """Every applied seed must equal the converged joins. The
        admitted-context check is one-sided: a seeded context the
        converged dispatch set no longer produces is inert (it only
        routes dispatches that never occur), and the harvest of this
        run drops it; a *new* context would mean changed inputs."""
        for func, (merged, sargs, ctxs) in self._seed_expect.items():
            final = self._merged_inputs.get(func)
            final_ser = ((ser_ctx(final[0]), ser_args(final[1]))
                         if final is not None else None)
            if final_ser != merged:
                return False
            final_args = self._summary_args.get(func)
            if (ser_args(final_args)
                    if final_args is not None else None) != sargs:
                return False
            seen = self._ctx_counts.get(func) or ()
            if not {ser_ctx(c) for c in seen} <= set(ctxs):
                return False
        return True

    def _roots(self) -> List[Function]:
        main = self.module.get_function("main")
        roots: List[Function] = []
        if main is not None and not main.is_declaration:
            roots.append(main)
        reachable = self.shm.callgraph.reachable_from(roots) if roots else set()
        for func in self.module.defined_functions():
            if func not in reachable and func not in roots:
                roots.append(func)
        return roots

    def _stable(self, snapshot: Dict[Cell, Taint]) -> bool:
        if len(snapshot) != len(self.cell_taint):
            return False
        for cell, taint in self.cell_taint.items():
            if snapshot.get(cell) != taint:
                return False
        return True

    # ------------------------------------------------------------------
    # sparse-fixpoint bookkeeping
    # ------------------------------------------------------------------

    def _note_cell_read(self, cell) -> None:
        """Register ``cell`` as a read dependency of the running body."""
        key = self._body_stack[-1]
        reads = self._key_reads[key]
        if cell not in reads:
            reads.add(cell)
            self._cell_readers.setdefault(cell, set()).add(key)

    def _begin_body(self, key: Tuple) -> None:
        """Open a dependency-tracking scope for one body run.

        Previous read registrations of the same key are dropped first:
        a re-run's dependency set replaces (never accumulates onto) the
        stale one, so a body that stops consulting a cell stops being
        invalidated by it.
        """
        prev = self._key_reads.get(key)
        if prev:
            for cell in prev:
                readers = self._cell_readers.get(cell)
                if readers is not None:
                    readers.discard(key)
        self._key_reads[key] = set()
        self._key_calls[key] = set()
        self._body_stack.append(key)
        self.kernel_counters["bodies_analyzed"] += 1
        if self._profile:
            self._profile_stack.append([key, perf_counter(), 0.0])

    def _end_body(self, key: Tuple) -> None:
        self._body_stack.pop()
        if self._profile:
            entry = self._profile_stack.pop()
            elapsed = perf_counter() - entry[1]
            if self._profile_stack:
                self._profile_stack[-1][2] += elapsed
            rec = self.body_profile.setdefault(
                self._profile_label(key),
                {"calls": 0, "seconds": 0.0, "self_seconds": 0.0},
            )
            rec["calls"] += 1
            rec["seconds"] += elapsed
            rec["self_seconds"] += max(0.0, elapsed - entry[2])

    @staticmethod
    def _profile_label(key: Tuple) -> str:
        func = key[0]
        if len(key) == 1:
            return f"{func.name}[merged]"
        ctx = ",".join(sorted(key[1]))
        if len(key) == 3 and isinstance(key[2], str):
            return f"{func.name}[{key[2]}]{{{ctx}}}"
        return f"{func.name}{{{ctx}}}"

    def _note_dispatch(self, caller: Optional[Tuple], key: Tuple) -> None:
        """Record the call edge used for reachability accounting."""
        if caller is None:
            self._root_keys.add(key)
        else:
            self._key_calls[caller].add(key)

    def _invalidate_stale(self) -> None:
        """Evict the memo entries the previous sweep made stale and
        queue them for revalidation.

        Two seed families, with different propagation rules:

        - bodies that *read* a cell whose taint grew re-run directly;
          their observers are touched later, and only if the re-run's
          result actually moved (:meth:`_finish_body`). Taints only
          grow, so an unchanged result means every downstream body
          would recompute exactly what it already has;
        - every memo key of a function whose merged
          (context-insensitive or summary-effects) inputs grew is
          evicted together with the upward closure of its observers:
          growing a merged context flips later budget checks, which can
          re-route call sites *without any result changing*, so callers
          must re-dispatch unconditionally.
        """
        invalid: Set[Tuple] = set()
        for cell in self._dirty_cells:
            invalid |= self._cell_readers.get(cell, set())
        work: List[Tuple] = []
        for func in self._merged_dirty:
            work.extend(self._func_keys.get(func, ()))
        while work:
            key = work.pop()
            if key in invalid:
                continue
            invalid.add(key)
            for observer in self._result_observers.get(key, ()):
                if observer not in invalid:
                    work.append(observer)
        for key in sorted(invalid, key=self._key_order):
            if key in self._memo:
                self._stale[key] = self._memo.pop(key)
                self._revalidation.append(key)
        self._dirty_cells = set()
        self._merged_dirty = set()
        self.kernel_counters["sparse_invalidated"] += len(invalid)

    @staticmethod
    def _key_order(key: Tuple):
        """Cheap deterministic ordering for revalidation queues.

        The final report is insertion-order-independent (everything is
        sorted in :meth:`_finalize`); this just keeps re-run order
        stable within a process for reproducible profiles/counters.
        """
        func = key[0]
        if len(key) == 1:
            return (func.name, 0, "")
        kind = key[2] if len(key) == 3 and isinstance(key[2], str) else ""
        return (func.name, 1, ",".join(sorted(key[1])) + "|" + kind)

    def _revalidate(self) -> None:
        """Drain the revalidation queue, re-running each evicted body
        in place. A queued key may already have been refreshed by a
        re-running caller's dispatch (it is back in the memo and out of
        ``_stale``) — those are skipped. :meth:`_finish_body` appends
        the observers of any body whose result moved, so the drain
        reaches the same fixpoint a full root descent would."""
        queue = self._revalidation
        while queue:
            key = queue.popleft()
            if key not in self._stale or key in self._in_progress:
                continue
            inputs = self._key_inputs.get(key)
            if inputs is None:
                # bookkeeping gap: drop the stale result and let the
                # next dispatch recompute the body from scratch
                self._stale.pop(key, None)
                continue
            func, eff_ctx, args = inputs
            if len(key) == 1:
                # merged bodies must see the *current* joined inputs,
                # which may have grown since they were captured
                stored = self._merged_inputs.get(func)
                if stored is not None:
                    eff_ctx, args = stored
            elif len(key) == 3 and key[2] == "effects":
                stored_args = self._summary_args.get(func)
                if stored_args is not None:
                    args = stored_args
            self._rerun_body(key, func, eff_ctx, args)

    def _rerun_body(self, key: Tuple, func: Function, eff_ctx: Context,
                    args: Tuple[Taint, ...]) -> None:
        """Re-run one evicted body directly, without a root descent.

        Mirrors the dispatch-path discipline (placeholder memo entry,
        in-progress marking, dependency scope) but records no call
        edge: the key's position in the call graph is unchanged, only
        its result is refreshed."""
        self._in_progress.add(key)
        self._memo[key] = SAFE
        if len(key) == 1:
            seen = self._ctx_counts.setdefault(func, set())
            if eff_ctx not in seen:
                # same routing concern as in _analyze: a newly admitted
                # context flips later budget checks
                self._merged_dirty.add(func)
            seen.add(eff_ctx)
        self._begin_body(key)
        try:
            if len(key) == 3 and isinstance(key[2], str):
                ret = self._run_summary_body(func, eff_ctx, args, key[2])
            else:
                ret = self._analyze_body(func, eff_ctx, args)
        finally:
            self._end_body(key)
        self._finish_body(key, ret)

    def _finish_body(self, key: Tuple, ret: Taint) -> None:
        """Publish a completed body result.

        In sparse mode, when the body was re-validating an evicted
        entry and the result actually changed (an identity check —
        taints are interned), every observer of the old result is
        evicted and queued. Observers currently mid-run are left alone:
        they are consuming the fresh result through the very dispatch
        that triggered this run, or will hit the refreshed memo entry
        when they get there."""
        self._memo[key] = ret
        self._in_progress.discard(key)
        if not self._sparse:
            return
        old = self._stale.pop(key, _NO_RESULT)
        if old is _NO_RESULT or ret == old:
            return
        for observer in sorted(self._result_observers.get(key, ()),
                               key=self._key_order):
            if observer in self._in_progress or observer in self._stale:
                continue
            if observer in self._memo:
                self._stale[observer] = self._memo.pop(observer)
                self._revalidation.append(observer)

    def _reachable_contexts(self) -> int:
        """Count memo keys reachable from the roots over call edges.

        Stale keys (a (function, context, args) combination the final
        call graph no longer produces) stay in the memo table but are
        unreachable; excluding them makes ``contexts_analyzed`` match
        what a dense run's final sweep would have memoized.
        """
        seen: Set[Tuple] = set()
        work = [key for key in self._root_keys if key in self._memo]
        while work:
            key = work.pop()
            if key in seen:
                continue
            seen.add(key)
            for callee in self._key_calls.get(key, ()):
                if callee not in seen and callee in self._memo:
                    work.append(callee)
        return len(seen)

    # ------------------------------------------------------------------
    # per-function analysis
    # ------------------------------------------------------------------

    def _analyze(self, func: Function, ctx: Context,
                 arg_taints: Tuple[Taint, ...]) -> Taint:
        eff_ctx = self._effective_context(func, ctx)
        if not self.config.context_sensitive or self._over_budget(func, eff_ctx):
            eff_ctx, arg_taints = self._merge_inputs(func, eff_ctx, arg_taints)
            key = (func,)
        elif self.config.summary_mode:
            return self._analyze_with_summary(func, eff_ctx, arg_taints)
        else:
            key = (func, eff_ctx, arg_taints)
        caller = self._body_stack[-1] if self._body_stack else None
        if self._sparse:
            self._note_dispatch(caller, key)
        if key in self._memo and key not in self._in_progress:
            self.kernel_counters["body_memo_hits"] += 1
            if self._sparse and caller is not None:
                # the caller consumed a finished result: if it is ever
                # evicted, the caller must re-run too
                self._result_observers.setdefault(key, set()).add(caller)
            return self._memo[key]
        if key in self._in_progress:
            # recursion: hand back the placeholder; no observer edge —
            # an in-progress observation always yields the placeholder,
            # so eviction of the callee cannot change what we saw here
            return self._memo.get(key, SAFE)
        self._in_progress.add(key)
        self._memo[key] = SAFE
        seen = self._ctx_counts.setdefault(func, set())
        if self._sparse and len(key) == 1 and eff_ctx not in seen:
            # a context admitted through the merged path is now "seen",
            # so the budget check routes later dispatches of that
            # context context-sensitively; callers bound to the merged
            # body must re-bind next sweep (dense re-binds by re-running
            # everything)
            self._merged_dirty.add(func)
        seen.add(eff_ctx)
        self._func_keys.setdefault(func, set()).add(key)
        if self._sparse:
            self._key_inputs[key] = (func, eff_ctx, arg_taints)
        self._begin_body(key)
        try:
            ret = self._analyze_body(func, eff_ctx, arg_taints)
        finally:
            self._end_body(key)

        self._finish_body(key, ret)
        if self._sparse and caller is not None:
            self._result_observers.setdefault(key, set()).add(caller)
        return ret

    # ------------------------------------------------------------------
    # ESP-style summaries (§3.3 last paragraph)
    # ------------------------------------------------------------------

    _PLACEHOLDER_PREFIX = "\x00arg:"

    @classmethod
    def _placeholder(cls, func: Function, index: int) -> TaintSource:
        return TaintSource(
            region=f"{cls._PLACEHOLDER_PREFIX}{index}",
            function=func.name, filename="<summary>", line=index,
        )

    @classmethod
    def _is_placeholder(cls, source: TaintSource) -> bool:
        return source.region.startswith(cls._PLACEHOLDER_PREFIX)

    @classmethod
    def strip_placeholders(cls, taint: Taint) -> Taint:
        if taint.is_safe:
            return taint
        data = frozenset(s for s in taint.data if not cls._is_placeholder(s))
        control = frozenset(
            s for s in taint.control if not cls._is_placeholder(s)
        )
        if data == taint.data and control == taint.control:
            return taint
        return Taint(data, control)

    def _substitute_summary(self, summary: Taint,
                            arg_taints: Tuple[Taint, ...]) -> Taint:
        """Replace parameter placeholders with the actual argument
        taints of this call site (data stays data; anything reaching a
        control position becomes control provenance)."""
        result = self.strip_placeholders(summary)
        for source in summary.data:
            if self._is_placeholder(source):
                index = source.line
                if index < len(arg_taints):
                    result = result.join(arg_taints[index])
        for source in summary.control:
            if self._is_placeholder(source):
                index = source.line
                if index < len(arg_taints):
                    result = result.join(arg_taints[index].as_control())
        return result

    def _merge_summary_args(self, func: Function,
                            arg_taints: Tuple[Taint, ...]) -> Tuple[Taint, ...]:
        old = self._summary_args.get(func)
        if old is None or len(old) != len(arg_taints):
            old = tuple(SAFE for _ in arg_taints)
        merged = tuple(a.join(b) for a, b in zip(old, arg_taints))
        prev = self._summary_args.get(func)
        if merged != prev:
            self._summary_args[func] = merged
            self._inputs_changed = True
            if prev is not None:
                # effects bodies that already ran saw the old join;
                # evict every memo entry of this function next sweep
                self._merged_dirty.add(func)
        return merged

    def _analyze_with_summary(self, func: Function, eff_ctx: Context,
                              arg_taints: Tuple[Taint, ...]) -> Taint:
        """Two passes per (function, context):

        - the *summary* pass runs with placeholder argument taints only
          and yields the return-value transfer function, so a call
          site's result never inherits other call sites' arguments;
        - the *effects* pass runs with the join of every caller's
          actual argument taints, so memory-cell writes and critical
          checks inside the callee see real provenance. The outer
          fixpoint re-sweeps when the join grows.
        """
        caller = self._body_stack[-1] if self._body_stack else None
        merged = self._merge_summary_args(func, arg_taints)
        summary_key = (func, eff_ctx, "summary")
        if self._sparse:
            self._note_dispatch(caller, summary_key)
        if summary_key in self._in_progress:
            # recursion: placeholder result, no observer edge (see
            # the matching branch in _analyze)
            return self._substitute_summary(
                self._memo.get(summary_key, SAFE), arg_taints
            )
        if summary_key not in self._memo:
            self._in_progress.add(summary_key)
            self._memo[summary_key] = SAFE
            self._ctx_counts.setdefault(func, set()).add(eff_ctx)
            self._func_keys.setdefault(func, set()).add(summary_key)
            placeholders = tuple(
                Taint(data=frozenset({self._placeholder(func, i)}))
                for i in range(len(arg_taints))
            )
            if self._sparse:
                self._key_inputs[summary_key] = (func, eff_ctx, placeholders)
            self._begin_body(summary_key)
            try:
                ret = self._run_summary_body(
                    func, eff_ctx, placeholders, "summary"
                )
            finally:
                self._end_body(summary_key)
            self._finish_body(summary_key, ret)
        else:
            self.kernel_counters["body_memo_hits"] += 1

        if any(not t.is_safe for t in merged):
            effects_key = (func, eff_ctx, "effects")
            if self._sparse:
                self._note_dispatch(caller, effects_key)
            if effects_key not in self._memo and \
                    effects_key not in self._in_progress:
                self._in_progress.add(effects_key)
                self._memo[effects_key] = SAFE
                self._func_keys.setdefault(func, set()).add(effects_key)
                if self._sparse:
                    self._key_inputs[effects_key] = (func, eff_ctx, merged)
                self._begin_body(effects_key)
                try:
                    ret = self._run_summary_body(
                        func, eff_ctx, merged, "effects"
                    )
                finally:
                    self._end_body(effects_key)
                self._finish_body(effects_key, ret)

        if self._sparse and caller is not None:
            self._result_observers.setdefault(summary_key, set()).add(caller)
        return self._substitute_summary(self._memo[summary_key], arg_taints)

    # ------------------------------------------------------------------
    # persistent summary reuse (repro.perf.summary_store)
    # ------------------------------------------------------------------

    def _active_recorder(self) -> Optional[BodyRecorder]:
        if self._recorders and self._recorders[-1] is not None:
            return self._recorders[-1]
        return None

    def _namer(self) -> CellNamer:
        if self._cell_namer is None:
            self._cell_namer = CellNamer(self.points_to)
        return self._cell_namer

    def _cell_key(self, cell) -> Optional[str]:
        return self._namer().key_of(cell)

    def _note_elided_write(self, cell, value) -> None:
        """Record a store whose join did not change the cell.

        The last re-analysis of a body before the fixpoint converges
        sees already-converged cell state, so its joins are no-ops and
        never reach ``cell_taint.__setitem__`` — but the *record* of
        that final run is what the summary/segment store keeps. Without
        this hook such records claim the body wrote nothing, and a
        fresh run replaying them can never reconstruct the converged
        state (trusted segment replay would fall back every time).
        """
        recorder = self._active_recorder()
        if recorder is not None:
            recorder.note_write(self._cell_key(cell), value)
        elif self._track_couplings and self._body_stack \
                and len(self._body_stack[-1]) == 1:
            self._note_merged_coupling(cell, read=False)

    def _note_merged_coupling(self, cell, read: bool) -> None:
        name = self._cell_key(cell)
        if name is None:
            return
        fname = self._body_stack[-1][0].name
        entry = self._merged_coupling.get(fname)
        if entry is None:
            entry = self._merged_coupling[fname] = (set(), set())
        entry[0 if read else 1].add(name)

    def _closure_fp(self, func: Function) -> str:
        if self._flow_fps is None:
            from ..perf.fingerprint import FlowFingerprints

            self._flow_fps = FlowFingerprints(
                self.shm, self.config, self._assert_vars
            )
        return self._flow_fps.closure(func)

    def _dispatch_call(self, target: Function, ctx: Context,
                       args: Tuple[Taint, ...]) -> Taint:
        """``_analyze`` for a call site. While a body is being recorded
        the dispatch is shielded (the callee's own effects must not land
        in the caller's record — the callee has its own record) and the
        (callee, context, args, result) tuple becomes part of the
        caller's inputs."""
        recorder = self._active_recorder()
        if recorder is None:
            return self._analyze(target, ctx, args)
        self._recorders.append(None)
        try:
            child = self._analyze(target, ctx, args)
        finally:
            self._recorders.pop()
        recorder.note_call(target.name, ctx, args, child)
        return child

    def _run_summary_body(self, func: Function, ctx: Context,
                          arg_taints: Tuple[Taint, ...], kind: str) -> Taint:
        """``_analyze_body`` with record/replay through the store."""
        store = self.summary_store
        if store is None:
            return self._analyze_body(func, ctx, arg_taints)
        key = store.entry_key(
            func.name, kind, self._closure_fp(func),
            ser_ctx(ctx), ser_args(arg_taints),
        )
        record = store.lookup(key)
        if record is not None:
            ret = self._replay_body(record)
            if ret is not None:
                store.hits += 1
                self.summary_events.append((func.name, kind, "hit"))
                return ret
        store.misses += 1
        self.summary_events.append((func.name, kind, "miss"))
        recorder = BodyRecorder()
        self._recorders.append(recorder)
        try:
            ret = self._analyze_body(func, ctx, arg_taints)
        finally:
            self._recorders.pop()
        if recorder.ok:
            store.stage(key, recorder.finish(ret))
        elif hasattr(store, "note_coupling"):
            # unpersistable body (unnamed cell): its named-cell
            # couplings still belong in the dependency graph
            reads, writes = recorder.coupling()
            store.note_coupling(func.name, reads, writes)
        return ret

    @staticmethod
    def _decode_record(record):
        """Per-process decoded view of a body record: interned taints,
        pre-frozen contexts, constructed VFG nodes and warnings. Every
        warm verdict of a session replays the same records, so the
        serialized-tuple → object work is paid once; the cache rides on
        the record object (the store strips it before pickling)."""
        from ..ir.source import SourceLocation

        warnings = []
        for key, fields in record.warnings:
            message, loc, function, region = fields
            warnings.append((tuple(key), UnmonitoredReadWarning(
                message=message,
                location=SourceLocation(*loc) if loc is not None else None,
                function=function,
                severity=Severity.WARNING,
                region=region,
            )))
        return (
            tuple((name, deser_taint(ser)) for name, ser in record.writes),
            tuple((callee, frozenset(ctx), deser_args(args), ret)
                  for callee, ctx, args, ret in record.calls),
            tuple(warnings),
            tuple((tuple(key),
                   frozenset(TaintSource(*s) for s in data),
                   frozenset(TaintSource(*s) for s in control))
                  for key, data, control in record.failures),
            tuple((VFGNode(*src), VFGNode(*dst), kind)
                  for src, dst, kind in record.edges),
            deser_taint(record.ret),
        )

    def _replay_body(self, record) -> Optional[Taint]:
        """Apply a persisted record if its inputs still hold; ``None``
        on any mismatch (the caller recomputes — always safe, because
        every recorded effect is an idempotent join)."""
        decoded = record.__dict__.get("_replay_cache")
        if decoded is None:
            decoded = record.__dict__["_replay_cache"] = \
                self._decode_record(record)
        (dec_writes, dec_calls, dec_warnings, dec_failures, dec_edges,
         dec_ret) = decoded
        namer = self._namer()
        reads = []
        for name, expected in record.reads:
            cell = namer.cell_for(name)
            if cell is None:
                return None
            reads.append((cell, expected))
        writes = []
        for name, taint in dec_writes:
            cell = namer.cell_for(name)
            if cell is None:
                return None
            writes.append((cell, taint))
        cmap = self.cell_taint
        sparse = self._sparse and bool(self._body_stack)
        trusted = self._trust_replay
        if not trusted:
            for cell, expected in reads:
                if sparse:
                    # replayed reads are real input dependencies of the
                    # replaying body; register them for sparse
                    # invalidation
                    self._note_cell_read(cell)
                if ser_taint(dict.get(cmap, cell, SAFE)) != expected:
                    return None
        version = cmap.version
        for callee_name, ctx, args, expected_ret in dec_calls:
            target = self.module.get_function(callee_name)
            if target is None or target.is_declaration:
                return None
            child = self._analyze(target, ctx, args)
            if ser_taint(child) != expected_ret:
                return None
        if not trusted and record.reads and cmap.version != version:
            # a re-dispatched callee moved cell state out from under the
            # recorded reads; this record may describe a stale interleaving
            return None
        if trusted:
            # optimistic replay: a record's reads reflect the *final*
            # state of the producing run, so mid-fixpoint validation
            # would reject it spuriously. Register the dependencies,
            # defer the checks to the converged end state (the calls
            # above were still compared — a callee that really moved
            # forces a recompute before any effect lands).
            for cell, expected in reads:
                if sparse:
                    self._note_cell_read(cell)
                marker = (cell, expected)
                if marker not in self._deferred_seen:
                    self._deferred_seen.add(marker)
                    self._deferred_reads.append(marker)
        for cell, taint in writes:
            old = dict.get(cmap, cell, SAFE)
            new = old.join(taint)
            if new != old:
                cmap[cell] = new
        warnings_map = self.warnings_map
        for key, warning in dec_warnings:
            if key not in warnings_map:
                warnings_map[key] = warning
        for key, data, control in dec_failures:
            entry = self._failures.setdefault(
                key, {"data": set(), "control": set()}
            )
            entry["data"] |= data
            entry["control"] |= control
        vfg = self.vfg
        for src, dst, kind in dec_edges:
            ValueFlowGraph.add_edge(vfg, src, dst, kind)
        return dec_ret

    def _over_budget(self, func: Function, ctx: Context) -> bool:
        seen = self._ctx_counts.get(func)
        if seen is None or ctx in seen:
            return False
        return len(seen) >= self.config.max_contexts_per_function

    def _merge_inputs(self, func: Function, ctx: Context,
                      arg_taints: Tuple[Taint, ...]):
        old = self._merged_inputs.get(func)
        old_ctx, old_args = old if old is not None else (
            EMPTY_CONTEXT, tuple(SAFE for _ in arg_taints)
        )
        if len(old_args) != len(arg_taints):
            old_args = tuple(SAFE for _ in arg_taints)
        # context-insensitive merging *intersects* assumed-core sets so
        # safety is preserved (a region must be monitored on every path)
        new_ctx = (old_ctx & ctx) if old is not None else ctx
        new_args = tuple(a.join(b) for a, b in zip(old_args, arg_taints))
        if old is None or (new_ctx, new_args) != (old_ctx, old_args):
            # the merged summary is stale: force another outer sweep
            self._inputs_changed = True
            if old is not None:
                # the (func,) body may have already run under the old
                # merge this iteration; evict it (and its observers)
                self._merged_dirty.add(func)
        self._merged_inputs[func] = (new_ctx, new_args)
        return new_ctx, new_args

    def _effective_context(self, func: Function, ctx: Context) -> Context:
        assumes = self.shm.monitor_assumes.get(func.name, [])
        if not assumes:
            return ctx
        added: Set[str] = set(ctx)
        for assume in assumes:
            for region_name in self._assume_regions(func, assume):
                added.add(region_name)
        return frozenset(added)

    def _assume_regions(self, func: Function,
                        assume: ResolvedAssume) -> RegionSet:
        if assume.is_parameter:
            bindings = self.shm.arg_regions.get(func, [])
            regions: Set[str] = set()
            if assume.parameter_index < len(bindings):
                for name in bindings[assume.parameter_index]:
                    region = self.shm.regions[name]
                    if assume.offset == 0 and assume.size == region.size:
                        regions.add(name)
                    elif (func.name, name) not in self._ineffective:
                        self._ineffective.add((func.name, name))
            return frozenset(regions)
        if assume.pointer in self.shm.regions:
            return frozenset({assume.pointer})
        # §3.4.3: assume(core(localptr, ...)) over received message data
        return frozenset()

    # ------------------------------------------------------------------

    def _analyze_body(self, func: Function, ctx: Context,
                      arg_taints: Tuple[Taint, ...]) -> Taint:
        """One intra-function local fixpoint; compiled when possible.

        The compiled kernel returns ``None`` to request fallback (the
        function is uncompilable or the bitset domain overflowed its
        width); the object-domain body then re-runs from scratch, which
        is safe because every compiled effect is an idempotent,
        monotone join.
        """
        kernel = self._kernel
        if kernel is not None and kernel.enabled:
            ret = kernel.run_body(func, ctx, arg_taints)
            if ret is not None:
                return ret
        return self._analyze_body_object(func, ctx, arg_taints)

    def _analyze_body_object(self, func: Function, ctx: Context,
                             arg_taints: Tuple[Taint, ...]) -> Taint:
        taints: Dict[Value, Taint] = {}
        deps = self._control_deps.get(func)
        if deps is None:
            deps = control_dependence(func)
            self._control_deps[func] = deps

        def vt(value: Value) -> Taint:
            if isinstance(value, Argument):
                if value.index < len(arg_taints):
                    return arg_taints[value.index]
                return SAFE
            if isinstance(value, (Constant, UndefValue, GlobalVariable,
                                  Function)):
                return SAFE
            return taints.get(value, SAFE)

        ret_taint = SAFE
        for _ in range(_MAX_LOCAL_PASSES):
            changed = False
            for block in func.blocks:
                block_ctl, controllers = self._block_control(block, deps, vt)
                phi_ctl, phi_conds = self._phi_control(block, deps, vt)
                for inst in block.instructions:
                    if isinstance(inst, Phi):
                        new = self._transfer(func, inst, ctx, vt, phi_ctl)
                        if new and phi_ctl:
                            for cond in phi_conds:
                                self._edge_value(func, cond, inst, "control")
                    else:
                        new = self._transfer(func, inst, ctx, vt, block_ctl)
                    if new is None:
                        continue
                    if taints.get(inst, SAFE) != new:
                        taints[inst] = new
                        changed = True
            if not changed:
                break

        ret_node = VFGNode("value", f"return of {func.name}", "")
        for block in func.blocks:
            term = block.terminator
            if isinstance(term, Ret) and term.value is not None:
                # which return executes is decided by the branches this
                # block is control dependent on: the summary carries
                # their taint as control provenance (this is how the
                # paper's decision() example becomes unsafe, §3.3)
                block_ctl, controllers = self._block_control(block, deps, vt)
                if vt(term.value):
                    self.vfg.add_edge(
                        self._value_node(func, term.value), ret_node, "data"
                    )
                for cond in controllers:
                    self.vfg.add_edge(
                        self._value_node(func, cond), ret_node, "control"
                    )
                ret_taint = ret_taint.join(vt(term.value)).join(block_ctl)
        return ret_taint

    def _phi_control(self, block: BasicBlock,
                     deps: Dict[BasicBlock, Set[BasicBlock]], vt):
        """Control taint governing *which incoming value* a phi selects.

        The merge block itself executes unconditionally, so its own
        control dependence is not enough: the selection is decided by
        the branches its predecessors are control dependent on, plus
        any predecessor that itself ends in a conditional branch.
        """
        if not self.config.track_control_dependence:
            return SAFE, []
        result = SAFE
        controllers = []
        for pred in block.predecessors():
            pred_ctl, pred_conds = self._block_control(pred, deps, vt)
            result = result.join(pred_ctl)
            controllers.extend(pred_conds)
            term = pred.terminator
            if isinstance(term, CondBranch):
                cond_taint = vt(term.condition)
                if cond_taint:
                    controllers.append(term.condition)
                result = result.join(cond_taint.as_control())
        return result, controllers

    def _block_control(self, block: BasicBlock,
                       deps: Dict[BasicBlock, Set[BasicBlock]], vt):
        """Control taint of a block plus the tainted branch conditions."""
        if not self.config.track_control_dependence:
            return SAFE, []
        result = SAFE
        controllers = []
        for controller in deps.get(block, ()):
            term = controller.terminator
            if isinstance(term, CondBranch):
                cond_taint = vt(term.condition)
                if cond_taint:
                    controllers.append(term.condition)
                result = result.join(cond_taint.as_control())
        return result, controllers

    # ------------------------------------------------------------------
    # transfer functions
    # ------------------------------------------------------------------

    def _transfer(self, func: Function, inst: Instruction, ctx: Context,
                  vt, block_ctl: Taint) -> Optional[Taint]:
        if isinstance(inst, Load):
            return self._transfer_load(func, inst, ctx, vt, block_ctl)
        if isinstance(inst, Store):
            self._transfer_store(func, inst, ctx, vt, block_ctl)
            return None
        if isinstance(inst, (BinOp, UnaryOp, Cmp, Cast, FieldAddr, IndexAddr)):
            taint = join_all(vt(op) for op in inst.operands)
            if taint:
                for op in inst.operands:
                    if vt(op):
                        self._edge_value(func, op, inst, "data")
            return taint
        if isinstance(inst, Phi):
            taint = join_all(vt(v) for v in inst.incoming.values())
            if block_ctl:
                taint = taint.join(block_ctl)
            if taint:
                for value in inst.incoming.values():
                    if vt(value):
                        self._edge_value(func, value, inst, "data")
            return taint
        if isinstance(inst, Call):
            return self._transfer_call(func, inst, ctx, vt, block_ctl)
        return None

    def _transfer_load(self, func: Function, inst: Load, ctx: Context,
                       vt, block_ctl: Taint) -> Taint:
        regions = self.shm.regions_of(func, inst.pointer)
        if regions:
            unmonitored = [
                name for name in regions
                if self.shm.regions[name].noncore and name not in ctx
            ]
            if unmonitored:
                sources = set()
                for name in unmonitored:
                    source = self._record_warning(func, inst, name)
                    sources.add(source)
                    self._edge_source(source, func, inst)
                return Taint(data=frozenset(sources)).join(block_ctl)
            # all regions are core or assumed core in this context
            core_regions = [
                name for name in regions if not self.shm.regions[name].noncore
            ]
            if core_regions:
                # core shared memory behaves like ordinary memory: taint
                # written by the core component flows back out of it
                cell = self.points_to.target_of(inst.pointer)
                stored = self.cell_taint.get(cell, SAFE) if cell else SAFE
                if stored:
                    self._edge_cell(cell, func, inst)
                return stored.join(block_ctl)
            return block_ctl  # monitored non-core read: safe (§2)
        ptr_taint = vt(inst.pointer)
        cell = self.points_to.target_of(inst.pointer)
        if cell is None:
            stored = SAFE
        elif inst.type.is_aggregate:
            # a struct/array copy reads every field: join field taints
            stored = self._deep_cell_taint(cell)
        else:
            stored = self.cell_taint.get(cell, SAFE)
        if stored and cell is not None:
            self._edge_cell(cell, func, inst)
        return stored.join(ptr_taint).join(block_ctl)

    def _field_cells(self, cell):
        """The cell plus every transitively nested field cell."""
        seen = set()
        work = [cell.find()]
        while work:
            current = work.pop()
            if current.id in seen:
                continue
            seen.add(current.id)
            yield current
            work.extend(current.fields().values())

    def _deep_cell_taint(self, cell) -> Taint:
        result = SAFE
        for member in self._field_cells(cell):
            result = result.join(self.cell_taint.get(member, SAFE))
        return result

    def _transfer_store(self, func: Function, inst: Store, ctx: Context,
                        vt, block_ctl: Taint) -> None:
        regions = self.shm.regions_of(func, inst.pointer)
        taint = vt(inst.value).join(block_ctl.as_control())
        if regions:
            noncore = [n for n in regions if self.shm.regions[n].noncore]
            if noncore and len(noncore) == len(regions):
                # write to non-core shm: does not change core/noncore (§2)
                return
        taint = self.strip_placeholders(taint)
        if not taint:
            return
        cell = self.points_to.target_of(inst.pointer)
        if cell is None:
            return
        # an aggregate store overwrites every field; fan the (joined)
        # taint out so later per-field loads observe it
        targets = (list(self._field_cells(cell))
                   if inst.value.type.is_aggregate else [cell])
        for target in targets:
            old = self.cell_taint.get(target, SAFE)
            new = old.join(taint)
            if new != old:
                self.cell_taint[target] = new
            elif self.summary_store is not None:
                self._note_elided_write(target, new)
        if vt(inst.value):
            self._edge_value_to_cell(func, inst.value, cell)

    def _transfer_call(self, func: Function, inst: Call, ctx: Context,
                       vt, block_ctl: Taint) -> Taint:
        name = inst.callee_name
        if name == ASSERT_SAFE_MARKER:
            if inst.operands:
                self._check_critical(func, inst, vt(inst.operands[0]),
                                     self._assert_variable(inst))
            return SAFE
        if name in IMPLICIT_CRITICAL_CALLS:
            for index in IMPLICIT_CRITICAL_CALLS[name]:
                if index < len(inst.operands):
                    self._check_critical(
                        func, inst, vt(inst.operands[index]),
                        f"{name}() argument {index}",
                    )
            return SAFE
        if name in COPY_CALLS and len(inst.operands) >= 2:
            return self._transfer_copy(func, inst, ctx, vt, block_ctl)
        if name in ("recv", "read") and self.config.message_passing_extension:
            # §3.4.3: message passing and I/O reads share the treatment
            return self._transfer_recv(func, inst, vt, block_ctl)

        if self._is_degraded_callee(name, inst):
            return self._transfer_degraded_call(
                func, inst, name, vt, block_ctl)

        targets: List[Function] = []
        if isinstance(inst.callee, Function) and not inst.callee.is_declaration:
            targets = [inst.callee]
        else:
            for site in self.shm.callgraph.sites_in(func):
                if site.call is inst:
                    targets = list(site.targets)
                    break
        if targets:
            result = SAFE
            args = tuple(vt(op) for op in inst.operands)
            for target in targets:
                padded = tuple(
                    args[i] if i < len(args) else SAFE
                    for i in range(len(target.arguments))
                )
                # provenance: tainted actuals flow into the callee's
                # formals (needed for cross-function witness paths)
                for i, op in enumerate(inst.operands):
                    if i < len(target.arguments) and args[i]:
                        self.vfg.add_edge(
                            self._value_node(func, op),
                            self._value_node(target, target.arguments[i]),
                            "data",
                        )
                child = self._dispatch_call(target, ctx, padded)
                result = result.join(child)
            if result:
                self._edge_call(func, inst, result)
            return result.join(block_ctl)
        # unknown external: the result may depend on its arguments and
        # on anything reachable through its pointer arguments
        result = join_all(vt(op) for op in inst.operands)
        for op in inst.operands:
            if vt(op):
                self._edge_value(func, op, inst, "data")
            if op.type.is_pointer:
                cell = self.points_to.target_of(op)
                if cell is not None:
                    stored = self.cell_taint.get(cell, SAFE)
                    if stored:
                        self._edge_cell(cell, func, inst)
                    result = result.join(stored)
        return result.join(block_ctl)

    def _is_degraded_callee(self, name: Optional[str], inst: Call) -> bool:
        """Must this call be treated fail-closed (see repro.degrade)?

        True for calls into functions that were individually degraded
        (body dropped, annotations unusable), and — when a whole
        translation unit was dropped — for every unresolved external
        that is not part of the builtin prelude: its definition may
        live in the lost unit, so nothing can be assumed about it.
        """
        if not self._degraded_functions and not self._unit_degraded:
            return False
        if name in self._degraded_functions:
            return True
        if not self._unit_degraded or not name:
            return False
        if name in BUILTIN_FUNCTIONS:
            return False
        callee = self.module.get_function(name)
        defined = callee is not None and not callee.is_declaration
        return not defined

    def _transfer_degraded_call(self, func: Function, inst: Call,
                                name: str, vt, block_ctl: Taint) -> Taint:
        """Fail-closed transfer for a call into degraded code.

        The result joins a synthetic ``degraded:<callee>`` taint source
        with every argument taint, and the same taint is written
        through every pointer argument — anything a degraded function
        could have touched is unmonitored non-core flow, so the final
        verdict can only get stricter.
        """
        location = inst.location
        source = TaintSource(
            region=degraded_region(name),
            function=func.name,
            filename=location.filename if location else "<unknown>",
            line=location.line if location else 0,
        )
        self._record_warning_source(
            func, inst, source,
            message=(
                f"call into degraded function {name!r}: result treated "
                f"as unmonitored non-core flow (fail-closed)"
            ),
        )
        self._edge_source(source, func, inst)
        taint = Taint(data=frozenset({source}))
        result = taint.join(join_all(vt(op) for op in inst.operands))
        for op in inst.operands:
            if vt(op):
                self._edge_value(func, op, inst, "data")
            if op.type.is_pointer:
                cell = self.points_to.target_of(op)
                if cell is not None:
                    old = self.cell_taint.get(cell, SAFE)
                    result = result.join(old)
                    stored = self.strip_placeholders(result)
                    if stored:
                        self.cell_taint[cell] = old.join(stored)
                    self._edge_cell(cell, func, inst)
        return result.join(block_ctl)

    def _transfer_copy(self, func: Function, inst: Call, ctx: Context, vt,
                       block_ctl: Taint) -> Taint:
        dest, src = inst.operands[0], inst.operands[1]
        taint = vt(src).join(block_ctl.as_control())
        src_regions = self.shm.regions_of(func, src)
        # copying *from* unmonitored shm is a read of it; inside a
        # monitoring context for the region it is safe (§2 rules)
        for name in src_regions:
            if self.shm.regions[name].noncore and name not in ctx:
                source = self._record_warning(func, inst, name)
                taint = taint.join(Taint(data=frozenset({source})))
                self._edge_source(source, func, inst)
        src_cell = self.points_to.target_of(src)
        if src_cell is not None:
            taint = taint.join(self.cell_taint.get(src_cell, SAFE))
        dest_regions = self.shm.regions_of(func, dest)
        if not dest_regions or any(
            not self.shm.regions[n].noncore for n in dest_regions
        ):
            dest_cell = self.points_to.target_of(dest)
            stored = self.strip_placeholders(taint)
            if dest_cell is not None and stored:
                old = self.cell_taint.get(dest_cell, SAFE)
                self.cell_taint[dest_cell] = old.join(stored)
                self._edge_value_to_cell(func, src, dest_cell)
        return taint

    def _transfer_recv(self, func: Function, inst: Call, vt,
                       block_ctl: Taint) -> Taint:
        """§3.4.3 extension: recv on a noncore socket taints the buffer."""
        if len(inst.operands) < 2:
            return SAFE
        socket_name = self._descriptor_name(inst.operands[0])
        noncore_names = set()
        for names in self.shm.noncore_descriptors.values():
            noncore_names |= names
        if socket_name is None or socket_name not in noncore_names:
            return join_all(vt(op) for op in inst.operands)
        buffer = inst.operands[1]
        if self._buffer_assumed_core(func, buffer):
            return SAFE
        location = inst.location
        source = TaintSource(
            region=f"socket:{socket_name}",
            function=func.name,
            filename=location.filename if location else "<unknown>",
            line=location.line if location else 0,
        )
        self._record_warning_source(func, inst, source)
        self._edge_source(source, func, inst)
        taint = Taint(data=frozenset({source}))
        cell = self.points_to.target_of(buffer)
        if cell is not None:
            old = self.cell_taint.get(cell, SAFE)
            self.cell_taint[cell] = old.join(taint)
        return taint

    @staticmethod
    def _unwrap_casts(value: Value) -> Value:
        while isinstance(value, Cast):
            value = value.source
        return value

    def _descriptor_name(self, value: Value) -> Optional[str]:
        value = self._unwrap_casts(value)
        if isinstance(value, Argument):
            return value.name
        if isinstance(value, Load) and isinstance(value.pointer,
                                                  GlobalVariable):
            return value.pointer.name
        if isinstance(value, Load) and isinstance(value.pointer, Alloca):
            return value.pointer.name
        return None

    def _buffer_assumed_core(self, func: Function, buffer: Value) -> bool:
        buffer = self._unwrap_casts(buffer)
        if isinstance(buffer, IndexAddr):
            buffer = self._unwrap_casts(buffer.pointer)
        name = None
        if isinstance(buffer, Alloca):
            name = buffer.name
        elif isinstance(buffer, Argument):
            name = buffer.name
        elif isinstance(buffer, IndexAddr) and isinstance(
            buffer.pointer, Alloca
        ):
            name = buffer.pointer.name
        if name is None:
            return False
        for assume in self.shm.monitor_assumes.get(func.name, []):
            if assume.pointer == name:
                return True
        return False

    # ------------------------------------------------------------------
    # diagnostics plumbing
    # ------------------------------------------------------------------

    def _record_warning(self, func: Function, inst: Instruction,
                        region: str) -> TaintSource:
        location = inst.location
        source = TaintSource(
            region=region,
            function=func.name,
            filename=location.filename if location else "<unknown>",
            line=location.line if location else 0,
        )
        self._record_warning_source(func, inst, source)
        return source

    def _record_warning_source(self, func: Function, inst: Instruction,
                               source: TaintSource,
                               message: Optional[str] = None) -> None:
        key = (source.function, source.region, source.line)
        if key not in self.warnings_map:
            self.warnings_map[key] = UnmonitoredReadWarning(
                message=message or (
                    f"unmonitored access to non-core shared variable "
                    f"{source.region!r}: value is unsafe"
                ),
                location=inst.location,
                function=func.name,
                severity=Severity.WARNING,
                region=source.region,
            )
        recorder = self._active_recorder()
        if recorder is not None:
            warning = self.warnings_map[key]
            recorder.note_warning(
                key,
                (warning.message, ser_loc(warning.location),
                 warning.function, warning.region),
            )

    def _check_critical(self, func: Function, inst: Instruction,
                        taint: Taint, variable: str) -> None:
        # parameter placeholders (summary mode) are not real sources:
        # the merged actual taints joined alongside carry the report
        taint = self.strip_placeholders(taint)
        if taint.is_safe:
            return
        location = inst.location
        key = (
            location.filename if location else "<unknown>",
            location.line if location else 0,
            func.name,
            variable,
        )
        entry = self._failures.setdefault(
            key, {"data": set(), "control": set()}
        )
        entry["data"] |= taint.data
        entry["control"] |= taint.control
        recorder = self._active_recorder()
        if recorder is not None:
            recorder.note_failure(key, taint.data, taint.control)
        self._edge_sink(func, inst, taint, variable)

    def _assert_variable(self, inst: Call) -> str:
        location = inst.location
        if location is not None:
            var = self._assert_vars.get((location.filename, location.line))
            if var:
                return var
        if inst.operands and inst.operands[0].name:
            return inst.operands[0].name
        return "<critical value>"

    def _finalize(self) -> None:
        from ..ir.source import SourceLocation
        from ..reporting.diagnostics import sort_key

        self.warnings = sorted(self.warnings_map.values(), key=sort_key)
        self.errors = []
        for (filename, line, fname, variable), entry in sorted(
            self._failures.items()
        ):
            data, control = entry["data"], entry["control"]
            # one reported dependency per (critical sink, shared region):
            # this is Table 1's unit of counting — a sink influenced by
            # two regions is two erroneous value dependencies
            regions = sorted(
                {s.region for s in data} | {s.region for s in control}
            )
            for region in regions:
                data_here = {s for s in data if s.region == region}
                control_here = {s for s in control if s.region == region}
                if data_here and control_here:
                    kind = DependencyKind.BOTH
                elif data_here:
                    kind = DependencyKind.DATA
                else:
                    kind = DependencyKind.CONTROL
                candidate_fp = (
                    self.config.triage_control_dependence
                    and kind is DependencyKind.CONTROL
                )
                sources = tuple(
                    self.warnings_map.get(
                        (s.function, s.region, s.line),
                        UnmonitoredReadWarning(
                            message=s.describe(),
                            location=s.location,
                            function=s.function,
                            severity=Severity.WARNING,
                            region=s.region,
                        ),
                    )
                    for s in sorted(data_here | control_here)
                )
                sink = self._sink_node(fname, filename, line, variable)
                witness = tuple(
                    node.render()
                    for node in self.vfg.witness_path(sink, region=region)
                )
                self.errors.append(
                    CriticalDependencyError(
                        message=(
                            f"critical data {variable!r} is "
                            f"{kind}-dependent on non-core {region!r}"
                        ),
                        location=SourceLocation(filename, line),
                        function=fname,
                        severity=Severity.ERROR,
                        variable=variable,
                        kind=kind,
                        sources=sources,
                        witness=witness,
                        candidate_false_positive=candidate_fp,
                    )
                )
        for index, error in enumerate(self.errors):
            location = error.location
            sink = self._sink_node(
                error.function,
                location.filename if location else "<unknown>",
                location.line if location else 0,
                error.variable,
            )
            trimmed = self.vfg.subgraph(self.vfg.ancestors_of(sink))
            self.witness_graphs[index] = trimmed.to_dot(f"error{index}")

    # ------------------------------------------------------------------
    # value-flow-graph recording
    # ------------------------------------------------------------------

    def _value_node(self, func: Function, value: Value) -> VFGNode:
        # memoized: the unnamed-temp branch walks the parent block's
        # instruction list, and edge-heavy bodies resolve the same
        # nodes every pass (both kernels go through here)
        memo_key = (func, value)
        cached = self._value_node_memo.get(memo_key)
        if cached is not None:
            return cached
        location = ""
        if isinstance(value, Instruction):
            if value.location is not None:
                location = str(value.location)
            if value.name:
                label = f"{func.name}::{value.opname()} %{value.name}"
            else:
                # stable, human-readable identity for unnamed temps
                where = (f"L{value.location.line}" if value.location
                         else "L?")
                block = value.parent.name if value.parent else "?"
                index = (value.parent.instructions.index(value)
                         if value.parent else 0)
                label = (f"{func.name}::{value.opname()}@"
                         f"{where}.{block}.{index}")
        else:
            label = f"{func.name}::{value.short()}"
        node = VFGNode("value", label, location)
        self._value_node_memo[memo_key] = node
        return node

    def _edge_value(self, func: Function, src: Value, dst: Instruction,
                    kind: str) -> None:
        self.vfg.add_edge(
            self._value_node(func, src), self._value_node(func, dst), kind
        )

    def _edge_source(self, source: TaintSource, func: Function,
                     inst: Instruction) -> None:
        node = VFGNode(
            "source",
            f"noncore read {source.region}",
            f"{source.filename}:{source.line}",
        )
        self.vfg.add_edge(node, self._value_node(func, inst), "data")

    def _edge_cell(self, cell: Cell, func: Function,
                   inst: Instruction) -> None:
        node = VFGNode("cell", cell.label, "")
        self.vfg.add_edge(node, self._value_node(func, inst), "data")

    def _edge_value_to_cell(self, func: Function, value: Value,
                            cell: Cell) -> None:
        node = VFGNode("cell", cell.label, "")
        self.vfg.add_edge(self._value_node(func, value), node, "data")

    def _edge_call(self, func: Function, inst: Call, taint: Taint) -> None:
        callee = inst.callee_name or "<indirect>"
        node = VFGNode("value", f"return of {callee}", "")
        self.vfg.add_edge(node, self._value_node(func, inst), "data")

    def _edge_sink(self, func: Function, inst: Instruction, taint: Taint,
                   variable: str) -> None:
        if inst.location is not None:
            location = f"{inst.location.filename}:{inst.location.line}"
        else:
            location = ""
        sink = VFGNode("sink", f"assert safe({variable})", location)
        if inst.operands:
            self.vfg.add_edge(
                self._value_node(func, inst.operands[0]), sink, "data"
            )

    def _sink_node(self, fname: str, filename: str, line: int,
                   variable: str) -> VFGNode:
        return VFGNode(
            "sink", f"assert safe({variable})", f"{filename}:{line}"
        )
