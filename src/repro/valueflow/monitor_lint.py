"""Monitor-completeness lint.

SafeFlow's soundness rests on an assumption it cannot discharge
itself: *"The programmer is expected to verify that the monitoring
function correctly checks the non-core values for safety (or
recoverability) before storing it in local variables that escape the
monitoring function"* (§2). The paper lists erroneous monitor
annotations as its second limitation — an annotated function that does
no checking silently turns unsafe values safe (a false negative).

This lint cannot prove a monitor correct, but it catches the blatant
failure mode: a monitoring function whose monitored reads *escape*
(through the return value or through memory writes) while **no branch
in the function tests any monitored value**. Such a function monitors
nothing; the ``assume(core(...))`` annotation is almost certainly a
mistake.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..core.config import AnalysisConfig
from ..frontend.driver import Program
from ..ir import (
    BinOp,
    Call,
    Cast,
    Cmp,
    CondBranch,
    FieldAddr,
    Function,
    IndexAddr,
    Instruction,
    Load,
    Phi,
    Ret,
    Store,
    UnaryOp,
    Value,
)
from ..reporting.diagnostics import Diagnostic, Severity
from ..shm.propagation import ShmAnalysis


def lint_monitors(program: Program, shm: ShmAnalysis,
                  config: AnalysisConfig) -> List[Diagnostic]:
    """Check every annotated monitoring function for vacuous monitors."""
    findings: List[Diagnostic] = []
    for fname, assumes in sorted(shm.monitor_assumes.items()):
        func = program.module.get_function(fname)
        if func is None or func.is_declaration:
            continue
        regions: Set[str] = set()
        for assume in assumes:
            if assume.is_parameter:
                bindings = shm.arg_regions.get(func, [])
                if assume.parameter_index < len(bindings):
                    regions |= set(bindings[assume.parameter_index])
            elif assume.pointer in shm.regions:
                regions.add(assume.pointer)
        if not regions:
            continue
        finding = _lint_one(func, regions, shm)
        if finding is not None:
            findings.append(finding)
    return findings


def _lint_one(func: Function, regions: Set[str], shm: ShmAnalysis):
    monitored: Set[Value] = set()      # values derived from monitored reads
    escapes = False
    checked = False

    def derived(inst: Instruction) -> bool:
        return any(op in monitored for op in inst.operands)

    # fixpoint over the function's instructions (loops via phis)
    changed = True
    while changed:
        changed = False
        for inst in func.instructions():
            if inst in monitored:
                continue
            if isinstance(inst, Load) and regions & set(
                shm.regions_of(func, inst.pointer)
            ):
                monitored.add(inst)
                changed = True
            elif isinstance(inst, (BinOp, UnaryOp, Cmp, Cast, Phi,
                                   FieldAddr, IndexAddr)) and derived(inst):
                monitored.add(inst)
                changed = True

    for inst in func.instructions():
        if isinstance(inst, CondBranch) and inst.condition in monitored:
            checked = True
        elif isinstance(inst, Ret) and inst.value is not None and \
                inst.value in monitored:
            escapes = True
        elif isinstance(inst, Store) and inst.value in monitored:
            # stored into memory the caller can observe
            escapes = True
        elif isinstance(inst, Call) and not isinstance(inst, CondBranch):
            if any(op in monitored for op in inst.operands):
                escapes = True

    if escapes and not checked and monitored:
        return Diagnostic(
            message=(
                f"monitoring function releases values from "
                f"{'/'.join(sorted(regions))} without testing any "
                f"monitored value: the assume(core(...)) annotation "
                f"monitors nothing (possible false negative)"
            ),
            location=func.location,
            function=func.name,
            severity=Severity.WARNING,
        )
    return None
