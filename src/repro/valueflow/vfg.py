"""Value flow graphs: provenance edges for unsafe values.

The paper propagates the ``unsafe`` predicate with "a standard value
flow graph [ESP]" and asks the developer to inspect reported errors
"with the aid of the value flow graphs representing the flow of values
from unmonitored non-core values to the critical data" (§4). This
module records exactly that graph during taint propagation and renders
witness paths and DOT exports for the manual-triage workflow.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple


class VFGNode:
    """A program point through which unsafe values flow.

    Effectively a frozen dataclass, hand-rolled so the hash — computed
    for every edge insertion, and segment replay re-inserts the whole
    recorded edge set on every warm verdict — is computed once per
    node instead of per dict operation.
    """

    __slots__ = ("kind", "label", "location", "_hash")

    def __init__(self, kind: str, label: str, location: str):
        self.kind = kind          # "source" | "value" | "cell" | "sink"
        self.label = label        # human-readable description
        self.location = location  # "file:line" or ""
        self._hash = hash((kind, label, location))

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        return (self.__class__ is other.__class__
                and self.kind == other.kind
                and self.label == other.label
                and self.location == other.location)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return (f"VFGNode(kind={self.kind!r}, label={self.label!r}, "
                f"location={self.location!r})")

    def __reduce__(self):
        # string hashes are salted per process: rebuild through
        # ``__init__`` instead of persisting the cached hash (reports
        # pickle across batch workers)
        return (self.__class__, (self.kind, self.label, self.location))

    def render(self) -> str:
        loc = f" @ {self.location}" if self.location else ""
        return f"[{self.kind}] {self.label}{loc}"


class ValueFlowGraph:
    """Directed provenance graph from taint sources to critical sinks."""

    def __init__(self):
        self.edges: Dict[VFGNode, Set[VFGNode]] = {}
        self.reverse: Dict[VFGNode, Set[VFGNode]] = {}
        self.edge_kinds: Dict[Tuple[VFGNode, VFGNode], str] = {}

    def add_edge(self, src: VFGNode, dst: VFGNode, kind: str = "data") -> None:
        if src == dst:
            return
        self.edges.setdefault(src, set()).add(dst)
        self.reverse.setdefault(dst, set()).add(src)
        self.edge_kinds.setdefault((src, dst), kind)

    @property
    def node_count(self) -> int:
        nodes = set(self.edges)
        for targets in self.edges.values():
            nodes |= targets
        return len(nodes)

    # ------------------------------------------------------------------

    def witness_path(self, sink: VFGNode,
                     region: Optional[str] = None) -> List[VFGNode]:
        """Shortest path from a source node back to ``sink``.

        With ``region`` given, sources mentioning that region are
        preferred (so each reported dependency's witness starts at a
        read of *its* region); any source is the fallback.
        """
        if sink not in self.reverse and sink not in self.edges:
            return [sink]
        parent: Dict[VFGNode, Optional[VFGNode]] = {sink: None}
        queue = deque([sink])
        best: Optional[VFGNode] = None
        fallback: Optional[VFGNode] = None
        while queue:
            node = queue.popleft()
            if node.kind == "source":
                if region is None or region in node.label:
                    best = node
                    break
                if fallback is None:
                    fallback = node
                continue
            for pred in sorted(
                self.reverse.get(node, ()), key=lambda n: (n.kind, n.label)
            ):
                if pred not in parent:
                    parent[pred] = node
                    queue.append(pred)
        if best is None:
            best = fallback
        if best is None:
            return [sink]
        path = [best]
        node = best
        while parent[node] is not None:
            node = parent[node]  # type: ignore[assignment]
            path.append(node)
        return path

    def ancestors_of(self, sink: VFGNode) -> Set[VFGNode]:
        """Every node from which ``sink`` is reachable (plus the sink)."""
        seen: Set[VFGNode] = {sink}
        work = [sink]
        while work:
            node = work.pop()
            for pred in self.reverse.get(node, ()):
                if pred not in seen:
                    seen.add(pred)
                    work.append(pred)
        return seen

    def subgraph(self, nodes: Set[VFGNode]) -> "ValueFlowGraph":
        """The induced subgraph on ``nodes`` (for per-error exports)."""
        sub = ValueFlowGraph()
        for src, targets in self.edges.items():
            if src not in nodes:
                continue
            for dst in targets:
                if dst in nodes:
                    sub.add_edge(src, dst, self.edge_kinds.get((src, dst),
                                                               "data"))
        return sub

    def to_dot(self, title: str = "vfg") -> str:
        lines = [f'digraph "{title}" {{', "  rankdir=LR;"]
        ids: Dict[VFGNode, str] = {}

        def node_id(node: VFGNode) -> str:
            if node not in ids:
                ids[node] = f"n{len(ids)}"
                shape = {
                    "source": "box", "sink": "doubleoctagon",
                    "cell": "folder",
                }.get(node.kind, "ellipse")
                label = node.render().replace('"', "'")
                lines.append(
                    f'  {ids[node]} [shape={shape}, label="{label}"];'
                )
            return ids[node]

        for src, targets in sorted(
            self.edges.items(), key=lambda kv: kv[0].label
        ):
            for dst in sorted(targets, key=lambda n: n.label):
                kind = self.edge_kinds.get((src, dst), "data")
                style = "dashed" if kind == "control" else "solid"
                lines.append(
                    f"  {node_id(src)} -> {node_id(dst)} [style={style}];"
                )
        lines.append("}")
        return "\n".join(lines)
