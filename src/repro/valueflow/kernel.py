"""Compiled value-flow kernels: flat opcode programs over bitset taints.

The object-domain body analysis (``ValueFlowAnalysis._analyze_body_object``)
re-discovers, on every pass over every instruction, facts that never
change during a body run: the instruction's transfer kind, its shared-
memory regions, its points-to cell, the branch conditions its block is
control-dependent on, and the value-flow-graph nodes its effects touch.
This module hoists all of that into a one-time *compile* step: each
(function, effective context) pair is lowered to a flat tuple of opcode
tuples per basic block (see :mod:`repro.valueflow.opcodes` for the
codes), and one tight interpreter loop runs the local fixpoint over
``list``-indexed integer bitsets (:mod:`repro.valueflow.bitdomain`)
instead of hash-consed :class:`Taint` objects in a dict.

Everything observable is preserved:

- memory-cell reads/writes go through the engine's hooked cell map, so
  sparse-fixpoint read dependencies and summary recorders fire exactly
  as in the object domain;
- call dispatch delegates to ``engine._dispatch_call`` with taints
  decoded back to interned objects, so memoization keys, context
  budgets and summary records are shared between both kernels;
- warnings, critical-dependency failures and VFG edges are emitted
  through the same engine plumbing; taint-conditional edges are
  emitted once per body run (the object domain re-adds them every
  pass; the graph dedupes, so the final artifacts are identical).
  Edge *nodes* are resolved lazily at emission time — compilation
  stores IR values, and ``engine._value_node`` (memoized) renders
  them only when a tainted fact actually flows;
- rare transfer paths (byte-copy builtins, ``recv``, degraded callees)
  compile to :data:`~repro.valueflow.opcodes.OP_GENERIC`, which
  delegates the single instruction to the object-domain transfer
  function through a slot-reading ``vt`` shim.

Fallback: any :class:`KernelOverflow` (the interner ran out of width)
disables the compiled kernel for the rest of the analysis and the body
re-runs in the object domain. This is safe even after a partial
compiled pass — every effect above is an idempotent, monotone join, so
the outer fixpoint converges to the identical fixpoint.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Tuple

from ..ir import (
    ASSERT_SAFE_MARKER,
    BinOp,
    Call,
    Cast,
    Cmp,
    CondBranch,
    Function,
    IndexAddr,
    FieldAddr,
    Load,
    Phi,
    Ret,
    Store,
    UnaryOp,
    control_dependence,
)
from .bitdomain import KernelOverflow, PLACEHOLDER_PREFIX, RegionInterner
from .engine import (
    COPY_CALLS,
    IMPLICIT_CRITICAL_CALLS,
    _MAX_LOCAL_PASSES,
)
from .opcodes import (
    OP_ASSERT,
    OP_CALL_DIRECT,
    OP_CALL_EXTERNAL,
    OP_CRITICAL,
    OP_GENERIC,
    OP_JOIN,
    OP_LOAD_CORE,
    OP_LOAD_CTL,
    OP_LOAD_PLAIN,
    OP_LOAD_UNMON,
    OP_PHI,
    OP_STORE,
    OPCODE_NAMES,
)
from .taint import SAFE, Taint, TaintSource
from .vfg import VFGNode

#: join-like instruction kinds lowered to :data:`OP_JOIN`
_JOIN_KINDS = (BinOp, UnaryOp, Cmp, Cast, FieldAddr, IndexAddr)


class _BlockProgram:
    """One basic block, compiled."""

    __slots__ = ("ctl_slots", "phi_slots", "ops")

    def __init__(self, ctl_slots, phi_slots, ops):
        self.ctl_slots = ctl_slots    # controller condition slots
        self.phi_slots = phi_slots    # phi-control slots; None = no phis
        self.ops = ops


class CompiledBody:
    """One (function, effective context), compiled."""

    __slots__ = (
        "func", "ctx", "n_slots", "arg_slots", "blocks", "ret_ops",
        "ret_node", "n_sites", "slot_of", "has_generic", "op_histogram",
        "ops_per_pass",
    )

    def __init__(self, func, ctx):
        self.func = func
        self.ctx = ctx
        self.n_slots = 0
        self.arg_slots: Tuple[int, ...] = ()
        self.blocks: Tuple[_BlockProgram, ...] = ()
        self.ret_ops: Tuple = ()
        self.ret_node: Optional[VFGNode] = None
        self.n_sites = 0
        self.slot_of: Dict = {}
        self.has_generic = False
        self.op_histogram: Dict[int, int] = {}
        self.ops_per_pass = 0


class KernelState:
    """Per-analysis compiled-kernel state: interner, program cache,
    and observability counters. Owned by one :class:`ValueFlowAnalysis`;
    programs hold live IR/cell references, so they are process-local
    artifacts — cross-process reuse happens one level up, through the
    summary store, whose fingerprints include the kernel mode and
    opcode format version."""

    def __init__(self, engine, width: int):
        assert engine._PLACEHOLDER_PREFIX == PLACEHOLDER_PREFIX
        self.engine = engine
        self.interner = RegionInterner(width)
        self.enabled = True
        self._programs: Dict[Tuple, Optional[CompiledBody]] = {}
        self.compile_seconds = 0.0
        #: wall time inside compiled execution at the outermost nesting
        #: level — inclusive of call dispatch into callee bodies,
        #: exclusive of any compilation that happens along the way
        self.execute_seconds = 0.0
        self._depth = 0
        self.overflows = 0
        self.compiled_bodies = 0
        self.fallback_bodies = 0
        self.passes = 0
        self.op_counts: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # public entry
    # ------------------------------------------------------------------

    def run_body(self, func: Function, ctx, arg_taints) -> Optional[Taint]:
        """Execute one body compiled; ``None`` requests object-domain
        fallback (uncompilable function or width overflow)."""
        key = (func, ctx)
        programs = self._programs
        if key in programs:
            program = programs[key]
        else:
            t0 = perf_counter()
            try:
                program = self._compile(func, ctx)
            except KernelOverflow:
                program = None
                self.overflows += 1
            finally:
                self.compile_seconds += perf_counter() - t0
            programs[key] = program
        if program is None:
            self.fallback_bodies += 1
            return None
        t0 = perf_counter()
        c0 = self.compile_seconds
        self._depth += 1
        try:
            ret = self._execute(program, arg_taints)
        except KernelOverflow:
            # dynamic overflow: a cell/call/argument taint brought the
            # interner past its width. Disable for the whole analysis —
            # the wide taint will keep flowing — and re-run this body in
            # the object domain (partial effects are idempotent joins).
            self.enabled = False
            self.overflows += 1
            self.fallback_bodies += 1
            return None
        finally:
            self._depth -= 1
            if self._depth == 0:
                self.execute_seconds += (
                    perf_counter() - t0
                ) - (self.compile_seconds - c0)
        self.compiled_bodies += 1
        return ret

    def publish_counters(self, counters: Dict[str, int]) -> None:
        counters["kernel_compiled_bodies"] = self.compiled_bodies
        counters["kernel_fallback_bodies"] = self.fallback_bodies
        counters["kernel_fallbacks"] = self.overflows
        counters["kernel_compiled_programs"] = sum(
            1 for p in self._programs.values() if p is not None
        )
        counters["kernel_interner_bits"] = len(self.interner)
        counters["kernel_passes"] = self.passes
        counters["kernel_opcode_dispatches"] = sum(self.op_counts.values())
        counters["kernel_compile_us"] = int(self.compile_seconds * 1e6)
        counters["kernel_execute_us"] = int(self.execute_seconds * 1e6)
        for code, count in sorted(self.op_counts.items()):
            counters[f"kernel_op_{OPCODE_NAMES[code]}"] = count

    # ------------------------------------------------------------------
    # compiler
    # ------------------------------------------------------------------

    def _compile(self, func: Function, ctx) -> Optional[CompiledBody]:
        engine = self.engine
        shm = engine.shm
        regions_of = shm.regions_of
        shm_regions = shm.regions
        target_of = engine.points_to.target_of
        interner_bit = self.interner.bit
        track = engine.config.track_control_dependence
        deps = engine._control_deps.get(func)
        if deps is None:
            deps = control_dependence(func)
            engine._control_deps[func] = deps

        prog = CompiledBody(func, ctx)
        slot_of: Dict = {}
        for arg in func.arguments:
            slot_of[arg] = len(slot_of)
        prog.arg_slots = tuple(range(len(slot_of)))
        func_blocks = func.blocks
        for block in func_blocks:
            for inst in block.instructions:
                slot_of[inst] = len(slot_of)
        prog.slot_of = slot_of
        prog.n_slots = len(slot_of)
        slot_get = slot_of.get

        n_sites = 0
        histogram: Dict[int, int] = {}

        def controllers(block) -> List:
            out = []
            for controller in deps.get(block, ()):
                term = controller.terminator
                if isinstance(term, CondBranch):
                    out.append(term.condition)
            return out

        blocks: List[_BlockProgram] = []
        for block in func_blocks:
            if track:
                conds = controllers(block)
                ctl_slots = tuple(
                    s for s in (slot_get(c, -1) for c in conds) if s >= 0
                )
            else:
                ctl_slots = ()
            phi_slots = None
            phi_conds: Tuple = ()
            has_phi = any(
                type(i) is Phi for i in block.instructions
            )
            if has_phi and track:
                raw: List = []
                seen_ids = set()
                for pred in block.predecessors():
                    pred_conds = controllers(pred)
                    term = pred.terminator
                    if isinstance(term, CondBranch):
                        pred_conds.append(term.condition)
                    for cond in pred_conds:
                        if id(cond) not in seen_ids:
                            seen_ids.add(id(cond))
                            raw.append(cond)
                entries = [(slot_get(c, -1), c) for c in raw]
                phi_slots = tuple(s for s, _ in entries if s >= 0)
                phi_conds = tuple(
                    (s, c) for s, c in entries if s >= 0
                )
            elif has_phi:
                phi_slots = ()

            ops: List[Tuple] = []
            for inst in block.instructions:
                kind = type(inst)
                if kind in _JOIN_KINDS or isinstance(inst, _JOIN_KINDS):
                    srcs = []
                    edges = []
                    for op in inst.operands:
                        s = slot_get(op, -1)
                        if s >= 0:
                            srcs.append(s)
                            edges.append((n_sites, s, op))
                            n_sites += 1
                    if not srcs:
                        continue
                    ops.append((OP_JOIN, slot_of[inst], tuple(srcs),
                                tuple(edges), inst))
                    histogram[OP_JOIN] = histogram.get(OP_JOIN, 0) + 1
                elif kind is Load:
                    op, n_sites = self._compile_load(
                        engine, shm_regions, regions_of, target_of,
                        interner_bit, func, ctx, inst, slot_get,
                        slot_of[inst], n_sites)
                    if op is not None:
                        ops.append(op)
                        histogram[op[0]] = histogram.get(op[0], 0) + 1
                elif kind is Store:
                    op, n_sites = self._compile_store(
                        engine, shm_regions, regions_of, target_of,
                        func, inst, slot_get, n_sites)
                    if op is not None:
                        ops.append(op)
                        histogram[OP_STORE] = histogram.get(
                            OP_STORE, 0) + 1
                elif kind is Phi:
                    srcs = []
                    data_edges = []
                    for value in inst.incoming.values():
                        s = slot_get(value, -1)
                        if s >= 0:
                            srcs.append(s)
                            data_edges.append((n_sites, s, value))
                            n_sites += 1
                    if not srcs and not phi_slots:
                        continue
                    ctl_edges = []
                    for s, cond in phi_conds:
                        ctl_edges.append((n_sites, s, cond))
                        n_sites += 1
                    ops.append((OP_PHI, slot_of[inst], tuple(srcs),
                                tuple(data_edges), tuple(ctl_edges),
                                inst))
                    histogram[OP_PHI] = histogram.get(OP_PHI, 0) + 1
                elif kind is Call:
                    op, n_sites, generic = self._compile_call(
                        engine, shm, target_of, func, inst, slot_get,
                        slot_of[inst], n_sites)
                    if op is not None:
                        ops.append(op)
                        histogram[op[0]] = histogram.get(op[0], 0) + 1
                    if generic:
                        prog.has_generic = True
            blocks.append(_BlockProgram(ctl_slots, phi_slots, tuple(ops)))
        prog.blocks = tuple(blocks)
        prog.op_histogram = histogram
        prog.ops_per_pass = sum(histogram.values())

        ret_ops: List[Tuple] = []
        prog.ret_node = VFGNode("value", f"return of {func.name}", "")
        for block in func_blocks:
            term = block.terminator
            if isinstance(term, Ret) and term.value is not None:
                centries = tuple(
                    (s, c)
                    for s, c in (
                        (slot_get(c, -1), c)
                        for c in (controllers(block) if track else ())
                    )
                    if s >= 0
                )
                ret_ops.append(
                    (slot_get(term.value, -1), term.value, centries)
                )
        prog.ret_ops = tuple(ret_ops)
        prog.n_sites = n_sites
        return prog

    def _compile_load(self, engine, shm_regions, regions_of, target_of,
                      interner_bit, func, ctx, inst, slot_get, dslot,
                      n_sites):
        regions = regions_of(func, inst.pointer)
        if regions:
            unmonitored = [
                name for name in regions
                if shm_regions[name].noncore and name not in ctx
            ]
            if unmonitored:
                location = inst.location
                bits = 0
                entries = []
                for name in unmonitored:
                    source = TaintSource(
                        region=name,
                        function=func.name,
                        filename=(location.filename if location
                                  else "<unknown>"),
                        line=location.line if location else 0,
                    )
                    bits |= 1 << interner_bit(source)
                    entries.append(source)
                return ((OP_LOAD_UNMON, dslot, bits, tuple(entries),
                         inst), n_sites)
            if any(not shm_regions[name].noncore for name in regions):
                cell = target_of(inst.pointer)
                if cell is None:
                    return (OP_LOAD_CTL, dslot), n_sites
                return ((OP_LOAD_CORE, dslot, cell, n_sites, inst),
                        n_sites + 1)
            return (OP_LOAD_CTL, dslot), n_sites
        ptr_slot = slot_get(inst.pointer, -1)
        cell = target_of(inst.pointer)
        if cell is None:
            if ptr_slot < 0:
                return (OP_LOAD_CTL, dslot), n_sites
            return ((OP_LOAD_PLAIN, dslot, ptr_slot, (), -1, None,
                     inst), n_sites)
        cells = (tuple(engine._field_cells(cell))
                 if inst.type.is_aggregate else (cell,))
        return ((OP_LOAD_PLAIN, dslot, ptr_slot, cells, n_sites, cell,
                 inst), n_sites + 1)

    def _compile_store(self, engine, shm_regions, regions_of, target_of,
                       func, inst, slot_get, n_sites):
        regions = regions_of(func, inst.pointer)
        if regions:
            noncore = sum(
                1 for n in regions if shm_regions[n].noncore
            )
            if noncore and noncore == len(regions):
                return None, n_sites  # non-core shm write: no effect (§2)
        cell = target_of(inst.pointer)
        if cell is None:
            return None, n_sites
        targets = (tuple(engine._field_cells(cell))
                   if inst.value.type.is_aggregate else (cell,))
        return ((OP_STORE, slot_get(inst.value, -1), targets, n_sites,
                 inst.value, cell), n_sites + 1)

    def _compile_call(self, engine, shm, target_of, func, inst,
                      slot_get, dslot, n_sites):
        """Compile one call; third result is True for OP_GENERIC."""
        name = inst.callee_name
        if name == ASSERT_SAFE_MARKER:
            if inst.operands:
                s = slot_get(inst.operands[0], -1)
                if s >= 0:
                    return ((OP_ASSERT, s, inst,
                             engine._assert_variable(inst)),
                            n_sites, False)
            return None, n_sites, False
        if name in IMPLICIT_CRITICAL_CALLS:
            checks = tuple(
                (slot_get(inst.operands[index], -1), inst,
                 f"{name}() argument {index}")
                for index in IMPLICIT_CRITICAL_CALLS[name]
                if index < len(inst.operands)
                and slot_get(inst.operands[index], -1) >= 0
            )
            if checks:
                return (OP_CRITICAL, checks), n_sites, False
            return None, n_sites, False
        if name in COPY_CALLS and len(inst.operands) >= 2:
            return (OP_GENERIC, dslot, inst), n_sites, True
        if name in ("recv", "read") and \
                engine.config.message_passing_extension:
            return (OP_GENERIC, dslot, inst), n_sites, True
        if engine._is_degraded_callee(name, inst):
            return (OP_GENERIC, dslot, inst), n_sites, True

        targets: List[Function] = []
        if isinstance(inst.callee, Function) and \
                not inst.callee.is_declaration:
            targets = [inst.callee]
        else:
            for call_site in shm.callgraph.sites_in(func):
                if call_site.call is inst:
                    targets = list(call_site.targets)
                    break
        if targets:
            arg_slots = tuple(slot_get(op, -1) for op in inst.operands)
            compiled_targets = []
            for target in targets:
                formals = target.arguments
                fedges = []
                for i, op in enumerate(inst.operands):
                    if i < len(formals):
                        fedges.append((n_sites, i, op, target,
                                       formals[i]))
                        n_sites += 1
                compiled_targets.append(
                    (target, len(formals), tuple(fedges))
                )
            op = (OP_CALL_DIRECT, dslot, arg_slots,
                  tuple(compiled_targets), n_sites,
                  inst.callee_name or "<indirect>", inst)
            return op, n_sites + 1, False
        entries = []
        for op in inst.operands:
            s = slot_get(op, -1)
            cell = target_of(op) if op.type.is_pointer else None
            if s < 0 and cell is None:
                continue
            vsite = csite = -1
            if s >= 0:
                vsite = n_sites
                n_sites += 1
            if cell is not None:
                csite = n_sites
                n_sites += 1
            entries.append((s, vsite, op, cell, csite))
        return ((OP_CALL_EXTERNAL, dslot, tuple(entries), inst),
                n_sites, False)

    # ------------------------------------------------------------------
    # interpreter
    # ------------------------------------------------------------------

    def _make_vt(self, slots, slot_of):
        decode = self.interner.decode

        def vt(value):
            s = slot_of.get(value)
            if s is None:
                return SAFE
            return decode(slots[s])

        return vt

    def _execute(self, prog: CompiledBody, arg_taints) -> Taint:
        engine = self.engine
        interner = self.interner
        encode = interner.encode
        decode = interner.decode
        shift = interner.width
        dmask = interner.data_mask
        cmap = engine.cell_taint
        cmap_get = cmap.get
        recording = engine.summary_store is not None
        note_elided_write = engine._note_elided_write
        add_edge = engine.vfg.add_edge
        value_node = engine._value_node
        dispatch_call = engine._dispatch_call
        ctx = prog.ctx
        func = prog.func
        prog_blocks = prog.blocks

        slots = [0] * prog.n_slots
        for i, s in enumerate(prog.arg_slots):
            if i < len(arg_taints):
                slots[s] = encode(arg_taints[i])
        emitted = bytearray(prog.n_sites)
        vt = self._make_vt(slots, prog.slot_of) if prog.has_generic \
            else None

        passes = 0
        for _ in range(_MAX_LOCAL_PASSES):
            passes += 1
            first = passes == 1
            changed = False
            for block in prog_blocks:
                if block.ctl_slots:
                    orb = 0
                    for s in block.ctl_slots:
                        orb |= slots[s]
                    ctl = ((orb | orb >> shift) & dmask) << shift \
                        if orb else 0
                else:
                    ctl = 0
                phi_ctl = 0
                if block.phi_slots:
                    orb = 0
                    for s in block.phi_slots:
                        orb |= slots[s]
                    if orb:
                        phi_ctl = ((orb | orb >> shift) & dmask) << shift
                for op in block.ops:
                    code = op[0]
                    if code == OP_JOIN:
                        _, dst, srcs, edges, inst = op
                        v = 0
                        for s in srcs:
                            v |= slots[s]
                        if v:
                            for sk, s, src in edges:
                                if slots[s] and not emitted[sk]:
                                    emitted[sk] = 1
                                    add_edge(value_node(func, src),
                                             value_node(func, inst),
                                             "data")
                        if slots[dst] != v:
                            slots[dst] = v
                            changed = True
                    elif code == OP_PHI:
                        _, dst, srcs, data_edges, ctl_edges, inst = op
                        v = phi_ctl
                        for s in srcs:
                            v |= slots[s]
                        if v:
                            for sk, s, src in data_edges:
                                if slots[s] and not emitted[sk]:
                                    emitted[sk] = 1
                                    add_edge(value_node(func, src),
                                             value_node(func, inst),
                                             "data")
                            if phi_ctl:
                                for sk, s, cond in ctl_edges:
                                    if slots[s] and not emitted[sk]:
                                        emitted[sk] = 1
                                        add_edge(
                                            value_node(func, cond),
                                            value_node(func, inst),
                                            "control")
                        if slots[dst] != v:
                            slots[dst] = v
                            changed = True
                    elif code == OP_LOAD_PLAIN:
                        _, dst, ps, cells, sk, cell, inst = op
                        stored = 0
                        for c in cells:
                            stored |= encode(cmap_get(c, SAFE))
                        if stored and sk >= 0 and not emitted[sk]:
                            emitted[sk] = 1
                            add_edge(VFGNode("cell", cell.label, ""),
                                     value_node(func, inst), "data")
                        v = stored | ctl
                        if ps >= 0:
                            v |= slots[ps]
                        if slots[dst] != v:
                            slots[dst] = v
                            changed = True
                    elif code == OP_STORE:
                        _, vs, targets, sk, src, cell = op
                        v = slots[vs] if vs >= 0 else 0
                        t = (v | ctl) & interner.keep_mask
                        if t:
                            for target in targets:
                                old = encode(cmap_get(target, SAFE))
                                new = old | t
                                if new != old:
                                    cmap[target] = decode(new)
                                elif recording:
                                    note_elided_write(target, decode(old))
                            if v and not emitted[sk]:
                                emitted[sk] = 1
                                add_edge(value_node(func, src),
                                         VFGNode("cell", cell.label,
                                                 ""), "data")
                    elif code == OP_CALL_DIRECT:
                        _, dst, arg_slots, targets, sk, callee, inst = op
                        args = [slots[s] if s >= 0 else 0
                                for s in arg_slots]
                        nargs = len(args)
                        result = 0
                        for target, nformals, fedges in targets:
                            for fsk, i, actual, tgt, formal in fedges:
                                if args[i] and not emitted[fsk]:
                                    emitted[fsk] = 1
                                    add_edge(value_node(func, actual),
                                             value_node(tgt, formal),
                                             "data")
                            padded = tuple(
                                decode(args[i]) if i < nargs else SAFE
                                for i in range(nformals)
                            )
                            child = dispatch_call(target, ctx, padded)
                            result |= encode(child)
                        if result and not emitted[sk]:
                            emitted[sk] = 1
                            add_edge(
                                VFGNode("value", f"return of {callee}",
                                        ""),
                                value_node(func, inst), "data")
                        v = result | ctl
                        if slots[dst] != v:
                            slots[dst] = v
                            changed = True
                    elif code == OP_LOAD_UNMON:
                        if first:
                            inst = op[4]
                            for source in op[3]:
                                engine._record_warning_source(
                                    func, inst, source)
                                add_edge(
                                    VFGNode(
                                        "source",
                                        f"noncore read {source.region}",
                                        f"{source.filename}:"
                                        f"{source.line}",
                                    ),
                                    value_node(func, inst), "data")
                        v = op[2] | ctl
                        dst = op[1]
                        if slots[dst] != v:
                            slots[dst] = v
                            changed = True
                    elif code == OP_LOAD_CORE:
                        _, dst, cell, sk, inst = op
                        stored = encode(cmap_get(cell, SAFE))
                        if stored and not emitted[sk]:
                            emitted[sk] = 1
                            add_edge(VFGNode("cell", cell.label, ""),
                                     value_node(func, inst), "data")
                        v = stored | ctl
                        if slots[dst] != v:
                            slots[dst] = v
                            changed = True
                    elif code == OP_LOAD_CTL:
                        dst = op[1]
                        if slots[dst] != ctl:
                            slots[dst] = ctl
                            changed = True
                    elif code == OP_CALL_EXTERNAL:
                        _, dst, entries, inst = op
                        result = 0
                        for s, vsite, operand, cell, csite in entries:
                            if s >= 0:
                                b = slots[s]
                                result |= b
                                if b and not emitted[vsite]:
                                    emitted[vsite] = 1
                                    add_edge(value_node(func, operand),
                                             value_node(func, inst),
                                             "data")
                            if cell is not None:
                                stored = encode(cmap_get(cell, SAFE))
                                if stored and not emitted[csite]:
                                    emitted[csite] = 1
                                    add_edge(
                                        VFGNode("cell", cell.label,
                                                ""),
                                        value_node(func, inst), "data")
                                result |= stored
                        v = result | ctl
                        if slots[dst] != v:
                            slots[dst] = v
                            changed = True
                    elif code == OP_ASSERT:
                        engine._check_critical(
                            func, op[2], decode(slots[op[1]]), op[3])
                    elif code == OP_CRITICAL:
                        for s, inst, label in op[1]:
                            engine._check_critical(
                                func, inst, decode(slots[s]), label)
                    else:  # OP_GENERIC
                        res = engine._transfer(func, op[2], ctx, vt,
                                               decode(ctl))
                        if res is not None:
                            v = encode(res)
                            dst = op[1]
                            if slots[dst] != v:
                                slots[dst] = v
                                changed = True
            if not changed:
                break

        self.passes += passes
        op_counts = self.op_counts
        for code, count in prog.op_histogram.items():
            op_counts[code] = op_counts.get(code, 0) + count * passes

        ret = 0
        ret_node = prog.ret_node
        for vslot, value, centries in prog.ret_ops:
            vb = slots[vslot] if vslot >= 0 else 0
            if vb:
                add_edge(value_node(func, value), ret_node, "data")
            orb = 0
            for s, cond in centries:
                cb = slots[s]
                orb |= cb
                if cb:
                    add_edge(value_node(func, cond), ret_node, "control")
            if orb:
                ret |= vb | ((orb | orb >> shift) & dmask) << shift
            else:
                ret |= vb
        return decode(ret)
