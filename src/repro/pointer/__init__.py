"""Points-to substrate (Data Structure Analysis substitute)."""

from .analysis import ALLOCATORS, COPYING_EXTERNALS, PointsToAnalysis
from .cells import Cell

__all__ = ["ALLOCATORS", "COPYING_EXTERNALS", "Cell", "PointsToAnalysis"]
