"""Memory cells with union-find, the nodes of the points-to graph.

A :class:`Cell` abstracts one or more runtime memory objects. Cells are
field-sensitive (a struct cell has one child cell per field; arrays
collapse to a single element cell, matching the paper's whole-array
granularity) and carry one outgoing ``pointee`` edge, Steensgaard
style: everything a pointer stored in this cell may reference is
unified into that one target.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Set


class Cell:
    """Union-find node in the points-to graph."""

    _counter = 0

    def __init__(self, label: str = ""):
        Cell._counter += 1
        self.id = Cell._counter
        self.label = label or f"cell{self.id}"
        self._parent: "Cell" = self
        self._rank = 0
        # valid only on representatives:
        self._pointee: Optional["Cell"] = None
        self._fields: Dict[str, "Cell"] = {}

    # -- union-find ----------------------------------------------------

    def find(self) -> "Cell":
        root = self
        while root._parent is not root:
            root = root._parent
        # path compression
        node = self
        while node._parent is not root:
            node._parent, node = root, node._parent
        return root

    def unify(self, other: "Cell") -> "Cell":
        """Merge two cells; returns the representative."""
        a, b = self.find(), other.find()
        if a is b:
            return a
        if a._rank < b._rank:
            a, b = b, a
        b._parent = a
        if a._rank == b._rank:
            a._rank += 1
        # merge pointee edges
        bp = b._pointee
        b._pointee = None
        if bp is not None:
            if a._pointee is None:
                a._pointee = bp
            else:
                a._pointee.unify(bp)
        # merge fields pairwise
        bf = b._fields
        b._fields = {}
        a = a.find()
        for key, cell in bf.items():
            af = a._fields.get(key)
            if af is None:
                a._fields[key] = cell
            else:
                af.unify(cell)
            a = a.find()
        return a.find()

    # -- structure -----------------------------------------------------

    def pointee(self) -> "Cell":
        """The cell this cell's contents point to (created on demand)."""
        root = self.find()
        if root._pointee is None:
            root._pointee = Cell(f"{root.label}.*")
        return root._pointee.find()

    def has_pointee(self) -> bool:
        return self.find()._pointee is not None

    def field(self, name: str) -> "Cell":
        root = self.find()
        cell = root._fields.get(name)
        if cell is None:
            cell = Cell(f"{root.label}.{name}")
            root._fields[name] = cell
        return cell.find()

    def fields(self) -> Dict[str, "Cell"]:
        return {k: v.find() for k, v in self.find()._fields.items()}

    def reachable(self) -> Iterator["Cell"]:
        """All cells reachable through fields/pointee edges."""
        seen: Set[int] = set()
        work = [self.find()]
        while work:
            cell = work.pop().find()
            if cell.id in seen:
                continue
            seen.add(cell.id)
            yield cell
            root = cell
            if root._pointee is not None:
                work.append(root._pointee)
            work.extend(root._fields.values())

    def __repr__(self) -> str:
        root = self.find()
        return f"<cell {root.label}#{root.id}>"
