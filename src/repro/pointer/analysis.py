"""Unification-based, field-sensitive points-to analysis.

This is the Data Structure Analysis substitute: the SafeFlow paper uses
DSA [15] only to know *which memory cells a value may reach*, so taint
stored through one name is observed through another. A Steensgaard-
style unification analysis with field cells gives the same conservative
reachability at a fraction of the complexity:

- every ``alloca``/global/``malloc`` gets a cell;
- ``p->f`` / ``p[i]`` navigate field cells (arrays collapse to one
  element cell — the paper's whole-array granularity);
- a store of pointer ``q`` through ``p`` unifies ``pts(p).pointee``
  with ``pts(q)``;
- call argument/return bindings unify caller and callee cells, which
  makes out-parameter writes visible across functions.

Unification is monotone, so a worklist-free repeat-until-stable loop
terminates.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..callgraph import CallGraph
from ..ir import (
    Alloca,
    Argument,
    ArrayType,
    Call,
    Cast,
    FieldAddr,
    Function,
    IndexAddr,
    Instruction,
    Load,
    Module,
    Phi,
    PointerType,
    Ret,
    Store,
    Value,
)
from ..ir.values import Constant, GlobalVariable, UndefValue
from .cells import Cell

#: external allocators returning fresh memory
ALLOCATORS = frozenset({"malloc", "calloc", "shmat"})

#: externals that copy bytes from arg1's cell into arg0's cell
COPYING_EXTERNALS = frozenset({"memcpy", "strcpy", "strncpy", "memmove"})


class PointsToAnalysis:
    """Whole-program points-to; query with :meth:`target_of`."""

    def __init__(self, module: Module, callgraph: Optional[CallGraph] = None):
        self.module = module
        self.callgraph = callgraph or CallGraph(module)
        #: pointer value → cell it points at
        self._points: Dict[Value, Cell] = {}
        #: storage cell of each global / alloca / argument slot
        self._var_cells: Dict[object, Cell] = {}
        self._ret_cells: Dict[Function, Cell] = {}
        self._unions = 0

    # ------------------------------------------------------------------

    def run(self) -> "PointsToAnalysis":
        for gv in self.module.globals.values():
            self._var_cells[gv] = Cell(f"@{gv.name}")
        stable = False
        passes = 0
        while not stable and passes < 64:
            before = self._unions
            for func in self.module.defined_functions():
                self._transfer_function(func)
            stable = self._unions == before
            passes += 1
        return self

    # ------------------------------------------------------------------

    def named_roots(self):
        """Deterministic ``(name, cell)`` pairs covering every cell the
        analysis created, for process-independent cell identification
        (:class:`repro.perf.CellNamer`). Cells ``id``s are assigned from
        a process-local counter, so anything persisted across runs must
        go through these structural names instead.

        Instruction-bound cells are named by the instruction's
        (function, block index, instruction index) position, which is
        stable for a fixed program; globals, arguments and return slots
        carry their declared names.
        """
        roots = []
        for name in sorted(self.module.globals):
            cell = self._var_cells.get(self.module.globals[name])
            if cell is not None:
                roots.append((f"@{name}", cell))
        positions: Dict[Value, str] = {}
        for func in self.module.defined_functions():
            for bi, block in enumerate(func.blocks):
                for ii, inst in enumerate(block.instructions):
                    positions[inst] = f"v:{func.name}:{bi}.{ii}"
        for value, cell in self._points.items():
            if isinstance(value, Argument):
                owner = value.function.name if value.function else "?"
                roots.append((f"arg:{owner}.{value.index}", cell))
            elif value in positions:
                roots.append((positions[value], cell))
        for func, cell in self._ret_cells.items():
            roots.append((f"ret:{func.name}", cell))
        return sorted(roots, key=lambda pair: pair[0])

    def target_of(self, value: Value) -> Optional[Cell]:
        """Cell a pointer value points at (None for non-pointers)."""
        if isinstance(value, GlobalVariable):
            return self._var_cells.setdefault(value, Cell(f"@{value.name}")).find()
        cell = self._points.get(value)
        return cell.find() if cell is not None else None

    def _ensure(self, value: Value, label: str = "") -> Cell:
        cell = self._points.get(value)
        if cell is None:
            cell = Cell(label or value.short())
            self._points[value] = cell
        return cell.find()

    def _unify(self, a: Cell, b: Cell) -> None:
        if a.find() is not b.find():
            self._unions += 1
        a.unify(b)

    def _bind(self, value: Value, cell: Cell) -> None:
        existing = self._points.get(value)
        if existing is None:
            self._points[value] = cell
            self._unions += 1
        else:
            self._unify(existing, cell)

    # ------------------------------------------------------------------

    def _transfer_function(self, func: Function) -> None:
        for inst in func.instructions():
            self._transfer(func, inst)

    def _transfer(self, func: Function, inst: Instruction) -> None:
        if isinstance(inst, Alloca):
            cell = self._var_cells.get(inst)
            if cell is None:
                cell = Cell(f"{func.name}.{inst.name}")
                self._var_cells[inst] = cell
            self._bind(inst, cell.find())
        elif isinstance(inst, FieldAddr):
            base = self._target_of_operand(inst.pointer)
            self._bind(inst, base.field(inst.field_name))
        elif isinstance(inst, IndexAddr):
            base = self._target_of_operand(inst.pointer)
            ptype = inst.pointer.type
            if isinstance(ptype, PointerType) and isinstance(
                ptype.pointee, ArrayType
            ):
                self._bind(inst, base.field("[]"))
            else:
                self._bind(inst, base)  # pointer arithmetic stays in cell
        elif isinstance(inst, Cast):
            if inst.type.is_pointer:
                self._bind(inst, self._target_of_operand(inst.source))
        elif isinstance(inst, Load):
            if inst.type.is_pointer:
                cell = self._target_of_operand(inst.pointer)
                self._bind(inst, cell.pointee())
        elif isinstance(inst, Store):
            if inst.value.type.is_pointer and not isinstance(
                inst.value, Constant
            ):
                target = self._target_of_operand(inst.pointer)
                source = self._target_of_operand(inst.value)
                self._unify(target.pointee(), source)
        elif isinstance(inst, Phi):
            if inst.type.is_pointer:
                for value in inst.incoming.values():
                    if isinstance(value, (Constant, UndefValue)):
                        continue
                    self._bind(inst, self._target_of_operand(value))
        elif isinstance(inst, Call):
            self._transfer_call(func, inst)
        elif isinstance(inst, Ret):
            if inst.value is not None and inst.value.type.is_pointer and \
                    not isinstance(inst.value, Constant):
                cell = self._ret_cells.setdefault(func, Cell(f"{func.name}.ret"))
                self._unify(cell, self._target_of_operand(inst.value))

    def _target_of_operand(self, value: Value) -> Cell:
        if isinstance(value, GlobalVariable):
            cell = self._var_cells.get(value)
            if cell is None:
                cell = Cell(f"@{value.name}")
                self._var_cells[value] = cell
            return cell.find()
        if isinstance(value, Argument):
            return self._ensure(value, f"arg.{value.name}")
        return self._ensure(value)

    def _transfer_call(self, func: Function, inst: Call) -> None:
        name = inst.callee_name
        targets = []
        if isinstance(inst.callee, Function) and not inst.callee.is_declaration:
            targets = [inst.callee]
        if targets:
            for target in targets:
                for i, actual in enumerate(inst.operands):
                    if i >= len(target.arguments):
                        break
                    if actual.type.is_pointer and not isinstance(
                        actual, Constant
                    ):
                        formal = target.arguments[i]
                        self._bind(formal, self._target_of_operand(actual))
                        # keep both directions in sync
                        self._bind(actual, self._target_of_operand(formal))
                if inst.type.is_pointer:
                    cell = self._ret_cells.setdefault(
                        target, Cell(f"{target.name}.ret")
                    )
                    self._bind(inst, cell.find())
            return
        # external calls
        if name in ALLOCATORS:
            if inst.type.is_pointer:
                self._bind(inst, self._ensure(inst, f"heap.{name}"))
            return
        if name in COPYING_EXTERNALS and len(inst.operands) >= 2:
            dest = inst.operands[0]
            if inst.type.is_pointer and not isinstance(dest, Constant):
                self._bind(inst, self._target_of_operand(dest))
            return
        if inst.type.is_pointer:
            self._ensure(inst, f"ext.{name or 'indirect'}")
