"""Aggregated results of a SafeFlow run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..degrade import DegradedUnit
from ..reporting.diagnostics import (
    CriticalDependencyError,
    Diagnostic,
    InitializationIssue,
    RestrictionViolation,
    UnmonitoredReadWarning,
    sort_key,
)


@dataclass
class AnalysisStats:
    """Volume/effort statistics of one run (Table 1 support columns).

    ``phase_timings`` and the cache counters observe the performance
    layer (:mod:`repro.perf`). They are deliberately excluded from
    :meth:`AnalysisReport.summary` / :meth:`AnalysisReport.render` so
    cached and parallel runs stay byte-identical to cold sequential
    ones; they surface through ``repro analyze --stats`` and
    :meth:`AnalysisReport.to_json` instead.
    """

    files: int = 0
    functions: int = 0
    loc_total: int = 0
    annotation_lines: int = 0
    shm_regions: int = 0
    noncore_regions: int = 0
    contexts_analyzed: int = 0
    monitored_functions: int = 0
    #: wall-clock seconds per pipeline phase ("frontend", "shm",
    #: "restrictions", "lint", "valueflow", "total")
    phase_timings: Dict[str, float] = field(default_factory=dict)
    frontend_cache_hits: int = 0
    frontend_cache_misses: int = 0
    summary_cache_hits: int = 0
    summary_cache_misses: int = 0
    #: damaged cache entries (checksum mismatch) evicted and recomputed
    cache_integrity_evictions: int = 0
    #: frontend/annotation failures isolated instead of raised
    #: (degraded-mode analysis; see :mod:`repro.degrade`)
    degraded_units: int = 0
    #: units the recovery ladder salvaged (analyzed fail-closed); see
    #: :mod:`repro.frontend.recovery`
    recovered_units: int = 0
    #: per-tier recovery-ladder attempt counts ("strict", "gnu", ...);
    #: populated only when ``--recover`` is active
    recovery_attempts: Dict[str, int] = field(default_factory=dict)
    #: per-tier recovery-ladder success counts
    recovery_successes: Dict[str, int] = field(default_factory=dict)
    #: torn/corrupt batch-journal tail records truncated and recovered
    #: from during ``safeflow batch --resume``
    journal_recovered_records: int = 0
    #: incremental analysis (repro.incremental): distinct functions
    #: whose summary bodies were recomputed rather than replayed
    functions_reanalyzed: int = 0
    #: size of the dirty dependency cone the segment store invalidated
    #: at the start of the run (0 when nothing changed)
    dirty_cone_size: int = 0
    #: segments evicted by dirty-cone invalidation this run
    segment_evictions: int = 0
    #: trusted segment replays that failed deferred validation and were
    #: rerun in validating mode (should be rare; >0 is worth a look)
    segment_fallbacks: int = 0
    #: analysis-kernel counters (outer iterations, bodies analyzed,
    #: memo hits, sparse invalidations, cache hit rates of the interned
    #: taint / solver layers); populated by the driver after phase 3
    kernel_counters: Dict[str, int] = field(default_factory=dict)
    #: per-(function, context) value-flow body timings, only collected
    #: under ``AnalysisConfig.profile``; label → {calls, seconds,
    #: self_seconds}
    hotspots: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: backing slots for the lazy ``instructions`` property: counting
    #: instructions walks every block of every function, which a run
    #: that never reads the stat should not pay for
    _instructions: Optional[int] = field(
        default=None, repr=False, compare=False
    )
    _instruction_counter: Optional[Callable[[], int]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def instructions(self) -> int:
        """Total IR instruction count, computed on first access."""
        if self._instructions is None:
            counter = self._instruction_counter
            self._instructions = counter() if counter is not None else 0
        return self._instructions

    @instructions.setter
    def instructions(self, value: int) -> None:
        self._instructions = value

    def __getstate__(self):
        # the counter closes over live IR; force the count and drop the
        # closure so reports pickle cleanly across batch workers
        state = self.__dict__.copy()
        state["_instructions"] = self.instructions
        state["_instruction_counter"] = None
        return state

    def cache_counters(self) -> Dict[str, int]:
        return {
            "frontend_cache_hits": self.frontend_cache_hits,
            "frontend_cache_misses": self.frontend_cache_misses,
            "summary_cache_hits": self.summary_cache_hits,
            "summary_cache_misses": self.summary_cache_misses,
            "cache_integrity_evictions": self.cache_integrity_evictions,
        }

    def to_json(self) -> Dict[str, object]:
        """Wire form of the stats block.

        One schema shared by ``safeflow analyze --json``
        (:meth:`AnalysisReport.to_json`) and the analysis service,
        whose metrics plane (:mod:`repro.server.metrics`) folds the
        ``phase_timings`` and cache counters of every response into
        its histograms.
        """
        out = {
            "files": self.files,
            "functions": self.functions,
            "instructions": self.instructions,
            "loc_total": self.loc_total,
            "shm_regions": self.shm_regions,
            "noncore_regions": self.noncore_regions,
            "contexts_analyzed": self.contexts_analyzed,
            "monitored_functions": self.monitored_functions,
            "degraded_units": self.degraded_units,
            "journal_recovered_records": self.journal_recovered_records,
            "functions_reanalyzed": self.functions_reanalyzed,
            "dirty_cone_size": self.dirty_cone_size,
            "segment_evictions": self.segment_evictions,
            "segment_fallbacks": self.segment_fallbacks,
            "phase_timings": dict(self.phase_timings),
            **self.cache_counters(),
        }
        if self.recovered_units:
            out["recovered_units"] = self.recovered_units
        if self.recovery_attempts:
            out["recovery_attempts"] = dict(self.recovery_attempts)
        if self.recovery_successes:
            out["recovery_successes"] = dict(self.recovery_successes)
        if self.kernel_counters:
            out["kernel_counters"] = dict(self.kernel_counters)
        if self.hotspots:
            out["hotspots"] = {
                label: dict(rec) for label, rec in self.hotspots.items()
            }
        return out


@dataclass
class AnalysisReport:
    """Everything SafeFlow found, Table-1-ready.

    ``errors`` includes candidate false positives (the tool reports
    them; the paper's workflow inspects them manually with the value
    flow graphs). ``confirmed_errors`` / ``candidate_false_positives``
    split them by the triage rule of §3.4.1.
    """

    name: str = "program"
    warnings: List[UnmonitoredReadWarning] = field(default_factory=list)
    errors: List[CriticalDependencyError] = field(default_factory=list)
    violations: List[RestrictionViolation] = field(default_factory=list)
    init_issues: List[InitializationIssue] = field(default_factory=list)
    #: advisory findings (e.g. vacuous-monitor lint); do not affect the
    #: Table 1 counts or ``passed``
    lint_findings: List[Diagnostic] = field(default_factory=list)
    stats: AnalysisStats = field(default_factory=AnalysisStats)
    #: DOT text of the value flow graph per error index (for manual triage)
    witness_graphs: Dict[int, str] = field(default_factory=dict)
    #: per-unit provenance of degraded-mode recovery: everything the
    #: frontend could not process and failed closed around
    degraded: List[DegradedUnit] = field(default_factory=list)

    # ------------------------------------------------------------------

    @property
    def diagnostics(self) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        out.extend(self.violations)
        out.extend(self.init_issues)
        out.extend(self.warnings)
        out.extend(self.errors)
        out.extend(self.lint_findings)
        return sorted(out, key=sort_key)

    @property
    def confirmed_errors(self) -> List[CriticalDependencyError]:
        return [e for e in self.errors if not e.candidate_false_positive]

    @property
    def candidate_false_positives(self) -> List[CriticalDependencyError]:
        return [e for e in self.errors if e.candidate_false_positive]

    @property
    def passed(self) -> bool:
        """True when the safe-value-flow property holds unconditionally.

        A degraded run can never pass: parts of the program were not
        analyzed, so the property was not verified for them — the
        fail-closed guarantee is that the tool never certifies what it
        could not see.
        """
        return (not self.errors and not self.violations
                and not self.init_issues and not self.degraded)

    @property
    def verdict(self) -> str:
        """Three-way verdict: ``pass`` / ``degraded`` / ``fail``.

        ``degraded`` means no violation was found in the analyzed part
        *but* some units were skipped fail-closed; ``fail`` means a
        real finding exists (degraded or not).
        """
        if self.errors or self.violations or self.init_issues:
            return "fail"
        if self.degraded:
            return "degraded"
        return "pass"

    def counts(self) -> Dict[str, int]:
        """The Table 1 row for this program."""
        return {
            "warnings": len(self.warnings),
            "errors": len(self.confirmed_errors),
            "false_positives": len(self.candidate_false_positives),
            "violations": len(self.violations),
            "annotation_lines": self.stats.annotation_lines,
        }

    def summary(self) -> str:
        c = self.counts()
        lines = [
            f"SafeFlow report for {self.name}",
            f"  functions analyzed : {self.stats.functions}"
            f" ({self.stats.contexts_analyzed} contexts)",
            f"  shared regions     : {self.stats.shm_regions}"
            f" ({self.stats.noncore_regions} non-core)",
            f"  warnings           : {c['warnings']}",
            f"  error dependencies : {c['errors']}",
            f"  candidate false pos: {c['false_positives']}",
            f"  restriction checks : "
            + ("clean" if not self.violations else f"{c['violations']} violations"),
        ]
        if self.degraded:
            lines.append(
                f"  degraded units     : {len(self.degraded)} (fail-closed)"
            )
        return "\n".join(lines)

    def render(self, verbose: bool = False) -> str:
        """Full human-readable report.

        The degradation section only appears when degradation actually
        occurred, so non-degraded runs stay byte-identical to the
        strict pipeline's output.
        """
        parts = [self.summary(), ""]
        for diag in self.diagnostics:
            parts.append(str(diag))
            if verbose and isinstance(diag, CriticalDependencyError) and diag.witness:
                parts.append("    " + diag.witness_text())
        if self.degraded:
            parts.append("degraded units (analyzed fail-closed):")
            for unit in self.degraded:
                parts.append(f"  {unit}")
        return "\n".join(parts)

    def to_json(self) -> dict:
        """Machine-readable form (used by ``safeflow analyze --json``)."""

        def diag(d) -> dict:
            return {
                "severity": str(d.severity),
                "message": d.message,
                "function": d.function,
                "location": str(d.location) if d.location else None,
            }

        return {
            "name": self.name,
            "counts": self.counts(),
            "passed": self.passed,
            "verdict": self.verdict,
            "degraded": [u.to_json() for u in self.degraded],
            "stats": self.stats.to_json(),
            "warnings": [
                dict(diag(w), region=w.region) for w in self.warnings
            ],
            "errors": [
                dict(
                    diag(e),
                    kind=str(e.kind),
                    variable=e.variable,
                    candidate_false_positive=e.candidate_false_positive,
                    witness=list(e.witness),
                )
                for e in self.errors
            ],
            "violations": [
                dict(diag(v), rule=v.rule) for v in self.violations
            ],
            "init_issues": [diag(i) for i in self.init_issues],
        }
