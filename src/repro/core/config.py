"""Analysis configuration knobs (including ablation switches)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass
class AnalysisConfig:
    """Configuration of a SafeFlow run.

    The defaults reproduce the paper's tool. The ablation switches
    exist for the benchmarks in ``benchmarks/bench_ablation.py``:

    - ``context_sensitive=False`` analyzes each function once with the
      union of all assumed-core contexts (the paper argues per-call-
      sequence re-analysis is affordable on small cores, §3.3);
    - ``track_control_dependence=False`` drops control-dependence taint
      entirely (eliminating §3.4.1 false positives *and* real control-
      flow channels — unsound, kept only to quantify the trade-off);
    - ``check_restrictions=False`` skips phase 2 (P1–P3/A1/A2).
    """

    #: re-analyze functions per assumed-core calling context (§3.3)
    context_sensitive: bool = True
    #: ESP-style summaries (§3.3 last paragraph): analyze each function
    #: once per assumed-core context with *symbolic* parameter taints
    #: and substitute actual argument taints at call sites, instead of
    #: re-analyzing per argument-taint combination. Same reports,
    #: fewer analyses. Only meaningful with context_sensitive=True.
    summary_mode: bool = False
    #: propagate taint through control dependence (§3.4.1)
    track_control_dependence: bool = True
    #: run phase 2 language-restriction checks (P1–P3, A1, A2)
    check_restrictions: bool = True
    #: classify control-dependence-only errors as candidate false
    #: positives in the report (the paper's manual triage aid)
    triage_control_dependence: bool = True
    #: treat reads of shared memory *not* annotated noncore as core
    #: (paper: core(S) holds only "if it can be verified"; shmvar
    #: regions without a noncore annotation are core by declaration).
    #: False = paranoid mode: every region is noncore regardless of
    #: annotations — useful when the write-audit verification of §2
    #: has not been done.
    unannotated_shm_is_core: bool = True
    #: maximum distinct assumed-core contexts per function before the
    #: analysis falls back to merging (guards the exponential blow-up
    #: the paper acknowledges)
    max_contexts_per_function: int = 64
    #: additional defines passed to the preprocessor
    defines: Dict[str, str] = field(default_factory=dict)
    #: extra include directories
    include_dirs: Tuple[str, ...] = ()
    #: run the IR verifier after lowering (cheap; catches front-end bugs)
    verify_ir: bool = True
    #: lint monitoring functions for vacuous monitors (an extension
    #: mitigating the paper's false-negative limitation: an
    #: assume(core(...)) on a function that never tests the monitored
    #: values silently launders unsafe data)
    lint_monitors: bool = True
    #: socket descriptors annotated noncore for the §3.4.3 message-
    #: passing extension are honored when this is on
    message_passing_extension: bool = True
    #: directory for the performance layer's on-disk caches; None
    #: disables all caching (the default — caching is opt-in for the
    #: library, opted into by the CLI). Never part of a cache key.
    cache_dir: Optional[str] = None
    #: reuse pickled front-ended programs from ``cache_dir``
    frontend_cache: bool = True
    #: reuse front-ended :class:`Program` objects in memory between
    #: runs of one process (:mod:`repro.perf.progmemo`) — skips even
    #: the disk cache's unpickle on the serving hot path. Effective
    #: only when ``cache_dir``/``frontend_cache`` are on (keys are the
    #: IR-cache content keys). Report-preserving, never part of a
    #: cache key.
    frontend_memo: bool = True
    #: persist/replay value-flow summary bodies (only effective in
    #: ``summary_mode``); see :mod:`repro.perf.summary_store`
    summary_cache: bool = True
    #: sparse outer fixpoint in the value-flow engine: between outer
    #: iterations, re-analyze only the (function, context) bodies whose
    #: consulted memory cells (or merged inputs) changed, instead of
    #: snapshotting the whole cell map and re-running every root.
    #: Reports are identical either way; False keeps the dense
    #: reference loop for ablation and debugging.
    sparse_fixpoint: bool = True
    #: collect kernel counters and per-body timings during the
    #: value-flow phase (surfaced as ``AnalysisStats.hotspots`` /
    #: ``kernel_counters`` and by ``safeflow analyze --profile``)
    profile: bool = False
    #: which value-flow body kernel runs the intra-function fixpoints:
    #: ``"compiled"`` (default) lowers each (function, context) body to
    #: a flat transfer-opcode program over bitset-encoded taints and
    #: executes it in one tight interpreter loop, falling back to the
    #: object domain past the bitset width; ``"object"`` keeps the
    #: reference implementation over hash-consed Taint objects.
    #: Reports are byte-identical either way (the object kernel is the
    #: correctness oracle); part of the cache fingerprint together with
    #: the opcode format version, so summaries recorded under one
    #: representation are never replayed into the other.
    kernel: str = "compiled"
    #: bitset width of the compiled kernel's taint-source interner;
    #: programs with more distinct taint sources than this fall back to
    #: the object kernel. Report-preserving, hence never part of a
    #: cache key.
    kernel_width: int = 256
    #: pause the cyclic garbage collector for the duration of each
    #: pipeline run (one full collection afterwards). The analysis
    #: allocates heavily and keeps almost all of it live until the
    #: report is built, so mid-phase collections are pure overhead —
    #: 20-30% of wall time on the bench workloads. Report-preserving,
    #: never part of a cache key.
    pause_gc: bool = True
    #: degraded-mode analysis (``--keep-going``): isolate frontend and
    #: annotation failures per translation unit / function / annotation
    #: as structured :class:`repro.degrade.DegradedUnit` records and
    #: keep analyzing the rest of the corpus, failing *closed* around
    #: the degraded parts (calls into them become unmonitored non-core
    #: flow and the report's verdict becomes ``degraded``). The strict
    #: default raises on the first unprocessable input. Part of the
    #: analysis fingerprint: degraded and strict runs never share
    #: cached results.
    degraded_mode: bool = False
    #: enabled recovery-ladder tiers (``--recover``): translation units
    #: the strict front end cannot process fall through the ordered
    #: tiers of :mod:`repro.frontend.recovery` ("gnu", "prelude",
    #: "cleanup", "salvage") before being recorded as lost. A salvaged
    #: unit is analyzed fail-closed — every function it defines is
    #: degraded, so relative to strict mode a verdict can only go
    #: pass → degraded, never degraded → pass. Implies the same
    #: keep-going discipline as ``degraded_mode``. The enabled set
    #: (plus the tier format version and GNU parser strategy) is part
    #: of the analysis fingerprint.
    recover_tiers: Tuple[str, ...] = ()
