"""SafeFlow core: driver, configuration, results."""

from .config import AnalysisConfig
from .driver import SafeFlow
from .results import AnalysisReport, AnalysisStats

__all__ = ["AnalysisConfig", "AnalysisReport", "AnalysisStats", "SafeFlow"]
