"""The SafeFlow facade: front end + phases 1–3 + reporting.

This is the entry point a user of the library touches::

    from repro import SafeFlow

    report = SafeFlow().analyze_files(["core_controller.c"])
    print(report.render())

The three phases follow §3.3 of the paper:

1. identify pointers to shared memory interprocedurally
   (:mod:`repro.shm`);
2. enforce the language restrictions P1–P3, A1, A2
   (:mod:`repro.restrictions`);
3. identify non-core accesses and check critical-data dependencies
   (:mod:`repro.valueflow`).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..frontend.driver import Program, load_files, load_source
from .config import AnalysisConfig
from .results import AnalysisReport, AnalysisStats


class SafeFlow:
    """Static analyzer enforcing the safe-value-flow property."""

    def __init__(self, config: Optional[AnalysisConfig] = None):
        self.config = config or AnalysisConfig()

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------

    def analyze_source(self, text: str, filename: str = "<source>",
                       name: str = "program") -> AnalysisReport:
        """Analyze a single C source string (the core component)."""
        program = load_source(
            text,
            filename=filename,
            defines=self.config.defines,
            verify=self.config.verify_ir,
        )
        return self.analyze_program(program, name=name, source_text=text)

    def analyze_files(self, paths: Sequence[str],
                      name: str = "program") -> AnalysisReport:
        """Analyze one or more C files as a whole program."""
        program = load_files(
            paths,
            include_dirs=self.config.include_dirs,
            defines=self.config.defines,
            verify=self.config.verify_ir,
        )
        return self.analyze_program(program, name=name)

    # ------------------------------------------------------------------
    # pipeline
    # ------------------------------------------------------------------

    def analyze_program(self, program: Program, name: str = "program",
                        source_text: Optional[str] = None) -> AnalysisReport:
        from ..restrictions.checker import check_restrictions
        from ..shm.propagation import ShmAnalysis
        from ..valueflow.engine import ValueFlowAnalysis

        report = AnalysisReport(name=name)
        report.stats = self._base_stats(program, source_text)

        # phase 1: shared-memory pointer identification
        shm = ShmAnalysis(program, self.config)
        shm.run()
        report.init_issues.extend(shm.init_issues)
        report.stats.shm_regions = len(shm.regions)
        report.stats.noncore_regions = sum(
            1 for r in shm.regions.values() if r.noncore
        )

        # phase 2: language restrictions
        if self.config.check_restrictions:
            report.violations.extend(check_restrictions(program, shm, self.config))

        # extension: vacuous-monitor lint (advisory)
        if self.config.lint_monitors:
            from ..valueflow.monitor_lint import lint_monitors

            report.lint_findings.extend(
                lint_monitors(program, shm, self.config)
            )

        # phase 3: value flow
        vf = ValueFlowAnalysis(program, shm, self.config)
        vf.run()
        report.warnings.extend(vf.warnings)
        report.errors.extend(vf.errors)
        report.witness_graphs = vf.witness_graphs
        report.stats.contexts_analyzed = vf.contexts_analyzed
        report.stats.monitored_functions = len(
            [f for f, items in program.function_annotations.items() if items]
        )
        return report

    def _base_stats(self, program: Program,
                    source_text: Optional[str]) -> AnalysisStats:
        stats = AnalysisStats()
        stats.files = len(program.units)
        functions = list(program.module.defined_functions())
        stats.functions = len(functions)
        stats.instructions = sum(
            len(list(f.instructions())) for f in functions
        )
        stats.annotation_lines = program.annotation_lines
        if source_text is not None:
            stats.loc_total = _count_loc(source_text)
        return stats


def _count_loc(text: str) -> int:
    """Non-blank, non-comment-only line count (Table 1's LOC metric)."""
    import re

    count = 0
    in_comment = False
    for line in text.splitlines():
        stripped = line.strip()
        if in_comment:
            if "*/" in stripped:
                in_comment = False
                stripped = stripped.split("*/", 1)[1].strip()
            else:
                continue
        # drop any complete /* ... */ spans within the line
        stripped = re.sub(r"/\*.*?\*/", "", stripped).strip()
        if stripped.startswith("/*"):
            in_comment = True
            continue
        if not stripped or stripped.startswith("//"):
            continue
        count += 1
    return count
