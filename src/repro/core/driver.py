"""The SafeFlow facade: front end + phases 1–3 + reporting.

This is the entry point a user of the library touches::

    from repro import SafeFlow

    report = SafeFlow().analyze_files(["core_controller.c"])
    print(report.render())

The three phases follow §3.3 of the paper:

1. identify pointers to shared memory interprocedurally
   (:mod:`repro.shm`);
2. enforce the language restrictions P1–P3, A1, A2
   (:mod:`repro.restrictions`);
3. identify non-core accesses and check critical-data dependencies
   (:mod:`repro.valueflow`).

With ``config.cache_dir`` set, the performance layer (:mod:`repro.perf`)
kicks in: front-ended programs are reused from a content-hash-keyed
on-disk cache, and in ``summary_mode`` value-flow summary bodies of
unchanged functions are replayed instead of recomputed. Both paths are
behavior-preserving — reports render byte-identical to a cold run —
and observable through ``AnalysisStats.phase_timings`` and the cache
hit/miss counters.
"""

from __future__ import annotations

import os
import re
import time
from typing import List, Optional, Sequence, Union

from ..frontend.driver import Program, load_files, load_source, recover_token
from .config import AnalysisConfig
from .results import AnalysisReport, AnalysisStats

_BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/")


class SafeFlow:
    """Static analyzer enforcing the safe-value-flow property."""

    def __init__(self, config: Optional[AnalysisConfig] = None):
        self.config = config or AnalysisConfig()

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------

    def analyze_source(self, text: str, filename: str = "<source>",
                       name: str = "program") -> AnalysisReport:
        """Analyze a single C source string (the core component)."""
        from ..perf.gcpause import gc_paused

        with gc_paused(self.config.pause_gc):
            cache = self._ir_cache()
            started = time.perf_counter()
            memo, memo_key = self._program_memo(), None
            program = None
            if memo is not None:
                memo_key = self._memo_key(cache.key_for_source(
                    text, filename, self.config.defines,
                    self.config.verify_ir, self._recover_token(),
                ))
                program = memo.acquire(memo_key)
                if program is not None:
                    cache.hits += 1
            if program is None:
                program = load_source(
                    text,
                    filename=filename,
                    defines=self.config.defines,
                    verify=self.config.verify_ir,
                    cache=cache,
                    recover=self._recover(),
                    recover_tiers=self.config.recover_tiers,
                )
            try:
                return self.analyze_program(
                    program,
                    name=name,
                    source_text=text,
                    frontend_seconds=time.perf_counter() - started,
                    ir_cache=cache,
                )
            finally:
                if memo is not None:
                    memo.release(memo_key, program)

    def analyze_files(self, paths: Sequence[str],
                      name: str = "program") -> AnalysisReport:
        """Analyze one or more C files as a whole program."""
        from ..perf.gcpause import gc_paused

        with gc_paused(self.config.pause_gc):
            cache = self._ir_cache()
            started = time.perf_counter()
            memo, memo_key = self._program_memo(), None
            program = None
            if memo is not None:
                memo_key = self._memo_key(cache.key_for_files(
                    paths, self.config.include_dirs, self.config.defines,
                    self.config.verify_ir, self._recover_token(),
                ))
                program = memo.acquire(memo_key)
                if program is not None:
                    cache.hits += 1
            if program is None:
                program = load_files(
                    paths,
                    include_dirs=self.config.include_dirs,
                    defines=self.config.defines,
                    verify=self.config.verify_ir,
                    cache=cache,
                    recover=self._recover(),
                    recover_tiers=self.config.recover_tiers,
                )
            try:
                return self.analyze_program(
                    program,
                    name=name,
                    frontend_seconds=time.perf_counter() - started,
                    ir_cache=cache,
                )
            finally:
                if memo is not None:
                    memo.release(memo_key, program)

    def analyze_request(self, *, source: Optional[str] = None,
                        filename: str = "<source>",
                        files: Optional[Sequence[str]] = None,
                        name: str = "program") -> AnalysisReport:
        """Analyze exactly one of ``source`` (inline C text) or
        ``files`` (paths).

        The submission shape of the analysis service
        (:mod:`repro.server`): a request carries either the literal
        source of a core component or the paths of its translation
        units, and both routes must produce reports byte-identical to
        the corresponding direct call. ``ValueError`` on an ambiguous
        or empty request.
        """
        if (source is None) == (files is None):
            raise ValueError(
                "analyze_request takes exactly one of source= or files="
            )
        if source is not None:
            return self.analyze_source(source, filename=filename, name=name)
        return self.analyze_files(list(files), name=name)

    def analyze_batch(self, jobs: Sequence, max_workers: Optional[int] = None,
                      timeout: Optional[float] = None,
                      guards=None, max_crashes: int = 2,
                      fail_fast: bool = False,
                      journal: Optional[str] = None,
                      resume: bool = False):
        """Analyze independent programs in parallel worker processes.

        ``jobs`` is a sequence of :class:`repro.perf.BatchJob` or
        ``(name, [paths])`` pairs; each job is a whole program analyzed
        with this analyzer's config. Returns a
        :class:`repro.perf.BatchOutcome` with per-job reports/errors in
        job order. ``max_workers=1`` runs sequentially in-process.
        ``guards`` (a :class:`repro.resilience.ResourceGuards`) caps
        each worker's CPU/RSS budget; ``max_crashes`` is the
        quarantine threshold of the crash supervision.

        ``fail_fast`` stops dispatching after the first failed job.
        ``journal`` makes the batch durable: every completed job is
        appended to a checksum-framed write-ahead log at that path, and
        ``resume=True`` replays it first, re-running only jobs whose
        results are missing or whose input fingerprints changed (see
        :mod:`repro.perf.journal`).
        """
        from ..perf.batch import BatchJob, run_batch
        from ..perf.journal import run_journaled

        normalized: List[BatchJob] = []
        for job in jobs:
            if isinstance(job, BatchJob):
                normalized.append(job)
            else:
                name, files = job
                normalized.append(BatchJob(name=name, files=tuple(files)))
        if max_workers is None:
            max_workers = min(len(normalized), os.cpu_count() or 1)
        if journal is not None:
            return run_journaled(
                normalized, self.config, journal, resume=resume,
                max_workers=max_workers, timeout=timeout, guards=guards,
                max_crashes=max_crashes, fail_fast=fail_fast,
            )
        return run_batch(
            normalized, self.config, max_workers=max_workers,
            timeout=timeout, guards=guards, max_crashes=max_crashes,
            fail_fast=fail_fast,
        )

    # ------------------------------------------------------------------
    # pipeline
    # ------------------------------------------------------------------

    def analyze_program(self, program: Program, name: str = "program",
                        source_text: Optional[str] = None,
                        frontend_seconds: Optional[float] = None,
                        ir_cache=None, summary_store=None) -> AnalysisReport:
        """``summary_store`` overrides the config-derived store: the
        incremental session (:mod:`repro.incremental`) injects its
        long-lived :class:`~repro.incremental.segments.SegmentStore`
        here so successive verdicts share one on-disk segment map."""
        from ..perf.gcpause import gc_paused

        with gc_paused(self.config.pause_gc):
            return self._analyze_program(
                program, name=name, source_text=source_text,
                frontend_seconds=frontend_seconds, ir_cache=ir_cache,
                summary_store=summary_store,
            )

    def _analyze_program(self, program: Program, name: str = "program",
                         source_text: Optional[str] = None,
                         frontend_seconds: Optional[float] = None,
                         ir_cache=None, summary_store=None) -> AnalysisReport:
        from ..restrictions.checker import check_restrictions
        from ..shm.propagation import ShmAnalysis
        from ..valueflow.engine import ValueFlowAnalysis

        from ..restrictions.solver import solver_cache_stats
        from ..valueflow.taint import taint_cache_stats

        started = time.perf_counter()
        report = AnalysisReport(name=name)
        report.stats = self._base_stats(program, source_text)
        timings = report.stats.phase_timings
        # the taint/solver caches are process-global; bracket the whole
        # pipeline (the solver runs in phase 2) to report this run's
        # contribution as deltas
        taint_before = taint_cache_stats()
        solver_before = solver_cache_stats()
        if frontend_seconds is not None:
            timings["frontend"] = frontend_seconds
        if ir_cache is not None:
            report.stats.frontend_cache_hits = ir_cache.hits
            report.stats.frontend_cache_misses = ir_cache.misses
            report.stats.cache_integrity_evictions += (
                ir_cache.integrity_evictions)

        # phase 1: shared-memory pointer identification
        phase_start = time.perf_counter()
        shm = ShmAnalysis(program, self.config)
        shm.run()
        timings["shm"] = time.perf_counter() - phase_start
        report.init_issues.extend(shm.init_issues)
        report.stats.shm_regions = len(shm.regions)
        report.stats.noncore_regions = sum(
            1 for r in shm.regions.values() if r.noncore
        )

        # phase 2: language restrictions
        if self.config.check_restrictions:
            phase_start = time.perf_counter()
            report.violations.extend(check_restrictions(program, shm, self.config))
            timings["restrictions"] = time.perf_counter() - phase_start

        # extension: vacuous-monitor lint (advisory)
        if self.config.lint_monitors:
            from ..valueflow.monitor_lint import lint_monitors

            phase_start = time.perf_counter()
            report.lint_findings.extend(
                lint_monitors(program, shm, self.config)
            )
            timings["lint"] = time.perf_counter() - phase_start

        # phase 3: value flow
        phase_start = time.perf_counter()
        store = summary_store if summary_store is not None \
            else self._summary_store()
        if store is not None:
            # a session-shared (incremental) store outlives this call:
            # report this run's contribution as deltas. A store the
            # driver just created reports absolute counts — its load-
            # time integrity evictions belong to this run.
            shared = summary_store is not None
            hits_before = store.hits if shared else 0
            misses_before = store.misses if shared else 0
            integrity_before = store.integrity_evictions if shared else 0
            evictions_before = getattr(store, "evictions", 0) if shared else 0
        vf = ValueFlowAnalysis(program, shm, self.config, summary_store=store)
        vf.run()
        if getattr(vf, "replay_validation_failed", False):
            # optimistic (trusted) segment replay could not prove its
            # deferred reads against the converged state: rerun phase 3
            # with validating replay. Every mismatching record is then
            # rejected sweep-by-sweep and recomputed — byte-identical
            # to a cold run by the summary-store argument.
            report.stats.segment_fallbacks += 1
            prior_trust = store.trust_replay
            store.trust_replay = False
            try:
                vf = ValueFlowAnalysis(
                    program, shm, self.config, summary_store=store)
                vf.run()
            finally:
                store.trust_replay = prior_trust
        timings["valueflow"] = time.perf_counter() - phase_start
        if store is not None:
            report.stats.summary_cache_hits = store.hits - hits_before
            report.stats.summary_cache_misses = store.misses - misses_before
            report.stats.cache_integrity_evictions += (
                store.integrity_evictions - integrity_before)
            report.stats.functions_reanalyzed = len({
                fname for fname, _, status in vf.summary_events
                if status == "miss"
            })
            report.stats.dirty_cone_size = len(
                getattr(store, "last_cone", ()))
            report.stats.segment_evictions = (
                getattr(store, "evictions", 0) - evictions_before)
        report.stats.kernel_counters = dict(vf.kernel_counters)
        for key, value in taint_cache_stats().items():
            report.stats.kernel_counters[key] = value - taint_before.get(key, 0)
        for key, value in solver_cache_stats().items():
            report.stats.kernel_counters[key] = value - solver_before.get(key, 0)
        if self.config.profile:
            report.stats.hotspots = {
                label: rec for label, rec in sorted(
                    vf.body_profile.items(),
                    key=lambda item: item[1]["self_seconds"],
                    reverse=True,
                )
            }
        report.warnings.extend(vf.warnings)
        report.errors.extend(vf.errors)
        report.witness_graphs = vf.witness_graphs
        report.stats.contexts_analyzed = vf.contexts_analyzed
        report.stats.monitored_functions = len(
            [f for f, items in program.function_annotations.items() if items]
        )
        # degraded-mode provenance: everything the frontend (and the
        # shm annotation collector) failed closed around. getattr keeps
        # programs pickled by older cache entries loadable.
        from ..degrade import sort_degraded

        report.degraded = sort_degraded(getattr(program, "degraded", []) or [])
        report.stats.degraded_units = len(report.degraded)
        report.stats.recovery_attempts = dict(
            getattr(program, "recovery_attempts", {}) or {})
        report.stats.recovery_successes = dict(
            getattr(program, "recovery_successes", {}) or {})
        report.stats.recovered_units = sum(
            1 for d in report.degraded if d.kind == "recovered")
        timings["total"] = (
            time.perf_counter() - started + (frontend_seconds or 0.0)
        )
        return report

    # ------------------------------------------------------------------
    # performance layer plumbing
    # ------------------------------------------------------------------

    def _recover(self) -> bool:
        """Keep-going front-ending: ``--keep-going`` or ``--recover``
        (the recovery ladder only makes sense per-unit-isolated)."""
        return bool(self.config.degraded_mode or self.config.recover_tiers)

    def _recover_token(self):
        return recover_token(self._recover(), self.config.recover_tiers)

    def _ir_cache(self):
        if not self.config.cache_dir or not self.config.frontend_cache:
            return None
        from ..perf.ircache import IRCache

        return IRCache(self.config.cache_dir)

    def _program_memo(self):
        # memo keys are IR-cache content keys, so the memo exists only
        # where the disk cache does
        if (not self.config.cache_dir or not self.config.frontend_cache
                or not self.config.frontend_memo):
            return None
        from ..perf.progmemo import program_memo

        return program_memo()

    def _memo_key(self, cache_key: Optional[str]) -> Optional[str]:
        # scope memo entries to the cache directory they belong to:
        # the memo is process-global, and two analyzers with disjoint
        # cache dirs (tests, multi-tenant embeddings) must not share
        # warm programs across that boundary
        if cache_key is None:
            return None
        return f"{os.path.abspath(self.config.cache_dir)}|{cache_key}"

    def _summary_store(self):
        # summary bodies only exist in context-sensitive summary mode
        if (not self.config.cache_dir or not self.config.summary_cache
                or not self.config.summary_mode
                or not self.config.context_sensitive):
            return None
        from ..perf.fingerprint import config_fingerprint
        from ..perf.summary_store import SummaryStore

        fp = config_fingerprint(self.config)[:16]
        return SummaryStore(
            os.path.join(self.config.cache_dir, f"summaries-{fp}.pkl")
        )

    # ------------------------------------------------------------------

    def _base_stats(self, program: Program,
                    source_text: Optional[str]) -> AnalysisStats:
        stats = AnalysisStats()
        stats.files = len(program.units)
        functions = list(program.module.defined_functions())
        stats.functions = len(functions)
        # counting instructions walks every block of every function;
        # defer it until something actually reads the stat
        stats._instruction_counter = lambda fs=tuple(functions): sum(
            sum(1 for _ in f.instructions()) for f in fs
        )
        stats.annotation_lines = program.annotation_lines
        if source_text is not None:
            stats.loc_total = _count_loc(source_text)
        return stats


def _count_loc(text: str) -> int:
    """Non-blank, non-comment-only line count (Table 1's LOC metric)."""
    count = 0
    in_comment = False
    for line in text.splitlines():
        stripped = line.strip()
        if in_comment:
            if "*/" in stripped:
                in_comment = False
                stripped = stripped.split("*/", 1)[1].strip()
            else:
                continue
        # drop any complete /* ... */ spans within the line
        stripped = _BLOCK_COMMENT_RE.sub("", stripped).strip()
        if stripped.startswith("/*"):
            in_comment = True
            continue
        if not stripped or stripped.startswith("//"):
            continue
        count += 1
    return count
