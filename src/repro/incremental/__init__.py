"""Incremental analysis: disk-backed value-flow segments, a function
dependency graph, and the ``safeflow watch`` session/loop.

``IncrementalSession``/``WatchLoop`` are imported lazily: the package
is also imported from :func:`repro.perf.fingerprint.config_fingerprint`
(to fold ``SEGMENT_FORMAT_VERSION`` in), which must not drag the whole
driver stack along.
"""

from .depgraph import DependencyGraph
from .segments import SEGMENT_FORMAT_VERSION, Segment, SegmentStore

__all__ = [
    "DependencyGraph",
    "SEGMENT_FORMAT_VERSION",
    "Segment",
    "SegmentStore",
    "IncrementalSession",
    "WatchLoop",
]


def __getattr__(name):
    if name in ("IncrementalSession", "WatchLoop"):
        from . import watcher

        return getattr(watcher, name)
    raise AttributeError(name)
