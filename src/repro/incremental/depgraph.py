"""Function-level dependency graph for incremental invalidation.

Two edge families, with different invalidation duties:

- **call edges** (caller → callee, from the recorded call dispatches of
  every persisted segment): these are *informational* for invalidation
  purposes, because the segment keys already embed each function's
  transitive closure fingerprint — editing a callee changes every
  transitive caller's closure fingerprint, so their old segments can
  never be looked up again. They are kept in the serialized graph for
  observability (``safeflow watch --stats``, tests asserting cone
  shapes) and for future distribution work;

- **cell-coupling edges** (writer → reader over canonical memory-cell
  names, from the recorded reads/writes of every segment plus the
  coupling stubs of bodies that could not be persisted): these are
  *correctness-load-bearing*. A segment's recorded reads reflect the
  **final converged** cell state of the run that produced it, so under
  optimistic (trusted) replay a stale record could re-justify its own
  inputs around a taint cycle. Before a run starts, the store computes
  the forward closure of the changed functions over these edges — the
  *dirty cone* — and evicts every segment in it, so no record whose
  inputs may have been produced by changed code is ever trusted.

The cone is a forward closure: a changed function's (old) writes fed
the recorded reads of its readers, whose writes fed *their* readers,
transitively. Taints only grow within a run, and every recorded effect
is an idempotent join, so replaying the surviving segments plus
recomputing the cone reaches the same fixpoint as a cold run — the
engine additionally re-validates every trusted read against the final
state and falls back to a validating run on any mismatch.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple


class DependencyGraph:
    """Writer→reader cell coupling + caller→callee edges, by name."""

    def __init__(self) -> None:
        #: cell name → functions whose segments/stubs write it
        self.cell_writers: Dict[str, Set[str]] = {}
        #: cell name → functions whose segments/stubs read it
        self.cell_readers: Dict[str, Set[str]] = {}
        #: caller → callees (from recorded dispatches)
        self.call_edges: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_body(self, function: str, reads: Iterable[str],
                 writes: Iterable[str],
                 calls: Iterable[str] = ()) -> None:
        for name in reads:
            self.cell_readers.setdefault(name, set()).add(function)
        for name in writes:
            self.cell_writers.setdefault(name, set()).add(function)
        for callee in calls:
            self.call_edges.setdefault(function, set()).add(callee)

    @classmethod
    def from_segments(cls, segments, couplings=None) -> "DependencyGraph":
        """Build from an iterable of :class:`repro.incremental.segments.
        Segment` plus the coupling stubs ``{function: (reads, writes)}``
        of bodies that were analyzed but not persisted."""
        graph = cls()
        for seg in segments:
            record = seg.record
            graph.add_body(
                seg.function,
                (name for name, _ in record.reads),
                (name for name, _ in record.writes),
                (call[0] for call in record.calls),
            )
        for function, (reads, writes) in (couplings or {}).items():
            graph.add_body(function, reads, writes)
        return graph

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def coupling_edges(self) -> Dict[str, Set[str]]:
        """writer function → reader functions (derived adjacency)."""
        adjacency: Dict[str, Set[str]] = {}
        for cell, writers in self.cell_writers.items():
            readers = self.cell_readers.get(cell)
            if not readers:
                continue
            for writer in writers:
                adjacency.setdefault(writer, set()).update(readers)
        return adjacency

    def dirty_cone(self, seeds: Iterable[str]) -> FrozenSet[str]:
        """Forward closure of ``seeds`` over writer→reader coupling.

        Seeds are functions whose closure fingerprint changed (edited
        functions and every transitive caller, new functions, deleted
        functions). The result always contains the seeds themselves.
        """
        adjacency = self.coupling_edges()
        cone: Set[str] = set()
        work: List[str] = list(seeds)
        while work:
            function = work.pop()
            if function in cone:
                continue
            cone.add(function)
            work.extend(adjacency.get(function, ()))
        return frozenset(cone)

    # ------------------------------------------------------------------
    # serialization (a plain payload the store seals to disk)
    # ------------------------------------------------------------------

    def to_payload(self) -> Dict[str, Dict[str, Tuple[str, ...]]]:
        def freeze(table: Dict[str, Set[str]]):
            return {key: tuple(sorted(value))
                    for key, value in sorted(table.items())}

        return {
            "cell_writers": freeze(self.cell_writers),
            "cell_readers": freeze(self.cell_readers),
            "call_edges": freeze(self.call_edges),
        }

    @classmethod
    def from_payload(cls, payload) -> "DependencyGraph":
        graph = cls()
        for attr in ("cell_writers", "cell_readers", "call_edges"):
            table = getattr(graph, attr)
            for key, values in (payload.get(attr) or {}).items():
                table[key] = set(values)
        return graph
