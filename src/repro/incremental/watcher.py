"""The incremental analysis session and the ``safeflow watch`` loop.

:class:`IncrementalSession` keeps the whole front-end state of one
program alive between verdicts:

- per-unit parse results keyed by content digest — an unchanged file is
  never re-preprocessed or re-parsed, and a verdict over *all*-unchanged
  digests short-circuits to a memoized copy of the last report without
  touching any phase;
- the lowered :class:`~repro.frontend.driver.Program`, updated by a
  **surgical unit swap** when the edit allows it (a single changed unit
  that defines only plain functions, no annotations, the same function
  names as before, none of them referenced from other units): per-def
  AST digests prune the swap to the definitions that actually changed —
  their old function objects are unbound and only they are re-lowered
  into the live module, so every other definition's IR — and with it
  the per-function fingerprint memoization — survives untouched. Any
  edit outside that envelope (signature change, annotation change, new
  or deleted file, degraded unit) falls back to a full re-lower over
  the cached parse trees, which is still parse-free;
- the long-lived :class:`~repro.incremental.segments.SegmentStore`,
  injected into every verdict so the value-flow phase replays intact
  segments and re-analyzes only the dirty cone.

:class:`WatchLoop` polls mtimes (content hashes confirm real changes),
re-verdicts on change, and holds the :func:`repro.perf.gcpause.
gc_paused` guard across a re-verdict burst, releasing it only after the
loop has been idle — the guard's exit collection is a large fraction of
a sub-100ms re-verdict budget, so it must not run between back-to-back
edits.
"""

from __future__ import annotations

import os
import time
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from pycparser import c_ast

from ..core.config import AnalysisConfig
from ..core.driver import SafeFlow
from ..core.results import AnalysisReport
from ..degrade import DegradedUnit
from ..errors import IRError, LoweringError, ParseError, PreprocessorError
from ..frontend.driver import Program, _finish, _merge_counts, _unit_failure
from ..frontend.lower import ModuleLowerer
from ..frontend.parser import ParsedUnit
from ..frontend.preprocessor import ExtractedAnnotation
from ..frontend.recovery import frontend_unit
from ..ir import Function
from ..ir.verifier import verify_function
from ..perf.fingerprint import text_digest
from .segments import SegmentStore


def _ast_digest(node) -> str:
    """Structural digest of one AST subtree, coordinates included.

    Two definitions digest equal only when re-lowering them would
    reproduce byte-identical IR: node types, attribute values *and*
    source coordinates all participate (coordinates feed diagnostics,
    so a def pushed down by an edit above it must count as changed)."""
    parts: List[str] = []
    stack = [("", node)]
    while stack:
        slot, n = stack.pop()
        parts.append(slot)
        parts.append(n.__class__.__name__)
        for attr in n.attr_names:
            parts.append(repr(getattr(n, attr, None)))
        coord = n.coord
        if coord is not None:
            parts.append(f"{coord.line}.{coord.column}")
        stack.extend(reversed(n.children()))
    return text_digest("\x00".join(parts))


class _UnitState:
    """Cached front-end state of one translation unit."""

    __slots__ = ("path", "digest", "unit", "annotations", "degraded",
                 "defs", "refs", "funcs_only", "def_digests",
                 "recovery_attempts", "recovery_successes")

    def __init__(self, path: str, digest: str,
                 unit: Optional[ParsedUnit],
                 annotations: List[ExtractedAnnotation],
                 degraded: List[DegradedUnit]):
        self.path = path
        self.digest = digest
        self.unit = unit
        self.annotations = list(annotations)
        self.degraded = list(degraded)
        #: per-tier recovery-ladder counters for this unit (empty
        #: unless the session runs with ``recover_tiers``); folded
        #: into every full re-lower's Program so watch verdicts report
        #: the same recovery stats as a cold ``safeflow analyze``
        self.recovery_attempts: Dict[str, int] = {}
        self.recovery_successes: Dict[str, int] = {}
        #: function names defined by this unit (definition order)
        self.defs: Tuple[str, ...] = ()
        #: function names this unit's code references (call targets and
        #: address-taken uses) — maintained after lowering
        self.refs: Set[str] = set()
        #: the surgical swap envelope: top level is function
        #: definitions plus nodes every unit re-lowers idempotently
        #: into a shared module anyway (typedefs, extern declarations,
        #: function prototypes — the preprocessor prelude consists of
        #: exactly these). A non-extern variable declaration defines
        #: module state and disqualifies the unit; annotations are
        #: checked separately.
        self.funcs_only = False
        if unit is not None:
            defs = []
            funcs_only = True
            for ext in unit.ast.ext:
                if isinstance(ext, c_ast.FuncDef):
                    defs.append(ext.decl.name)
                elif isinstance(ext, (c_ast.Typedef, c_ast.Pragma)):
                    continue
                elif isinstance(ext, c_ast.Decl):
                    if not isinstance(ext.type, c_ast.FuncDecl) \
                            and "extern" not in (ext.storage or []):
                        funcs_only = False
                else:
                    funcs_only = False
            self.defs = tuple(defs)
            self.funcs_only = funcs_only
        #: per-definition AST digests (swap-eligible units only): lets
        #: the surgical swap re-lower just the defs that changed
        self.def_digests: Dict[str, str] = {}
        if unit is not None and self.funcs_only:
            for ext in unit.ast.ext:
                if isinstance(ext, c_ast.FuncDef):
                    self.def_digests[ext.decl.name] = _ast_digest(ext)


def _function_refs(module, fnames: Sequence[str]) -> Set[str]:
    """Names of functions referenced from the bodies of ``fnames``
    (call targets and any function-valued operand — covers
    address-taken uses)."""
    refs: Set[str] = set()
    for fname in fnames:
        func = module.get_function(fname)
        if func is None:
            continue
        for inst in func.instructions():
            callee = getattr(inst, "callee", None)
            if isinstance(callee, Function):
                refs.add(callee.name)
            for op in inst.operands:
                if isinstance(op, Function):
                    refs.add(op.name)
    return refs


class IncrementalSession:
    """Front-end + analysis state shared by successive verdicts."""

    def __init__(self, paths: Sequence[str],
                 config: Optional[AnalysisConfig] = None,
                 name: str = "program",
                 store: Optional[SegmentStore] = None,
                 store_root: Optional[str] = None):
        self.config = config or AnalysisConfig()
        self.name = name
        self.driver = SafeFlow(self.config)
        self._paths: List[str] = list(paths)
        self._units: Dict[str, _UnitState] = {}
        self.program: Optional[Program] = None
        self.store = store if store is not None \
            else self._make_store(store_root)
        #: integrity evictions the store counted while *loading* (a
        #: stale/corrupt store on cold start evicts and recomputes);
        #: folded into the first verdict's stats
        self._pending_integrity = (
            self.store.integrity_evictions if self.store is not None else 0)
        self.verdicts = 0
        self.swaps = 0
        self.full_relowers = 0
        #: verdicts answered from the previous report because no input
        #: digest moved (editor touch/save-without-change events)
        self.memo_verdicts = 0
        self.last_changed: Tuple[str, ...] = ()
        #: function names the last surgical swap actually re-lowered
        self.last_swap_defs: Tuple[str, ...] = ()
        self._last_report: Optional[AnalysisReport] = None

    def _make_store(self, root: Optional[str]) -> Optional[SegmentStore]:
        config = self.config
        if root is None:
            # segments replay summary bodies: same preconditions as the
            # config-derived summary store
            if (not config.cache_dir or not config.summary_cache
                    or not config.summary_mode
                    or not config.context_sensitive):
                return None
            from ..perf.fingerprint import config_fingerprint

            root = os.path.join(
                config.cache_dir,
                f"segments-{config_fingerprint(config)[:16]}",
            )
        return SegmentStore(root)

    # ------------------------------------------------------------------
    # file set
    # ------------------------------------------------------------------

    @property
    def paths(self) -> List[str]:
        return list(self._paths)

    def set_paths(self, paths: Sequence[str]) -> None:
        """Replace the watched file set (new/deleted files)."""
        self._paths = list(paths)

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------

    def verdict(self) -> AnalysisReport:
        """Re-read inputs, refresh the front end as narrowly as the
        edit allows, and run the full analysis pipeline over it."""
        from ..perf.gcpause import gc_paused

        with gc_paused(self.config.pause_gc):
            frontend_started = perf_counter()
            changed, added, removed = self._refresh_units()
            self.last_changed = tuple(changed)
            if (self.program is not None and self._last_report is not None
                    and not changed and not added and not removed):
                # nothing's content digest moved: the pipeline is a
                # pure function of its inputs, so the previous report
                # *is* this verdict — answer from memory
                self.memo_verdicts += 1
                self.verdicts += 1
                return self._memoized_report(
                    perf_counter() - frontend_started)
            if self.program is None or added or removed:
                self._full_frontend()
            elif changed:
                if len(changed) == 1 and self._swap_eligible(changed[0]):
                    try:
                        self._swap_unit(changed[0])
                        self.swaps += 1
                    except (LoweringError, IRError, ParseError):
                        # the swap mutated the module before failing;
                        # the cached parse trees rebuild it from scratch
                        self._full_frontend()
                else:
                    self._full_frontend()
            frontend_seconds = perf_counter() - frontend_started
            report = self.driver.analyze_program(
                self.program, name=self.name,
                frontend_seconds=frontend_seconds,
                summary_store=self.store,
            )
        if self._pending_integrity:
            report.stats.cache_integrity_evictions += self._pending_integrity
            self._pending_integrity = 0
        self.verdicts += 1
        self._last_report = report
        return report

    def _memoized_report(self, frontend_seconds: float) -> AnalysisReport:
        """The previous report re-issued for a no-change verdict, with
        the per-run counters reset to what this (empty) run did."""
        import copy

        report = copy.copy(self._last_report)
        report.stats = stats = copy.copy(report.stats)
        stats.phase_timings = {"frontend": frontend_seconds,
                               "total": frontend_seconds}
        stats.functions_reanalyzed = 0
        stats.dirty_cone_size = 0
        stats.segment_evictions = 0
        stats.segment_fallbacks = 0
        stats.cache_integrity_evictions = 0
        return report

    # ------------------------------------------------------------------
    # front end refresh
    # ------------------------------------------------------------------

    def _refresh_units(self):
        """Re-read every watched file; (re)parse the changed ones.

        Returns ``(changed, added, removed)`` path lists. The new
        :class:`_UnitState` replaces the old one only after a swap or
        full re-lower consumed both (``_pending`` holds the new state
        of changed paths until then).
        """
        changed: List[str] = []
        added: List[str] = []
        removed: List[str] = []
        recover = bool(self.config.degraded_mode
                       or self.config.recover_tiers)
        for path in self._paths:
            try:
                with open(path, "rb") as f:
                    raw = f.read()
            except OSError:
                if path in self._units:
                    removed.append(path)
                    del self._units[path]
                continue
            digest = text_digest(raw.decode("utf-8", errors="replace"))
            state = self._units.get(path)
            if state is not None and state.digest == digest:
                continue
            new_state = self._frontend_unit(path, digest, recover)
            if state is None:
                added.append(path)
                self._units[path] = new_state
            else:
                changed.append(path)
                self._pending = getattr(self, "_pending", {})
                self._pending[path] = new_state
        for path in [p for p in self._units if p not in self._paths]:
            removed.append(path)
            del self._units[path]
        return changed, added, removed

    def _frontend_unit(self, path: str, digest: str,
                       recover: bool) -> _UnitState:
        try:
            with open(path, "r") as f:
                text = f.read()
        except (OSError, UnicodeDecodeError) as exc:
            exc = PreprocessorError(f"cannot read {path}: {exc}")
            if not recover:
                raise exc
            return _UnitState(path, digest, None, [],
                              [_unit_failure(path, exc)])
        try:
            result = frontend_unit(
                text, path,
                include_dirs=self.config.include_dirs,
                defines=self.config.defines,
                recover=recover,
                tiers=self.config.recover_tiers,
            )
        except (PreprocessorError, ParseError, RecursionError) as exc:
            if not recover:
                raise
            return _UnitState(path, digest, None, [],
                              [_unit_failure(path, exc)])
        state = _UnitState(path, digest, result.unit, result.annotations,
                           result.degraded)
        state.recovery_attempts = dict(result.attempts)
        state.recovery_successes = dict(result.successes)
        return state

    def _promote_pending(self) -> None:
        for path, state in getattr(self, "_pending", {}).items():
            self._units[path] = state
        self._pending = {}

    def _full_frontend(self) -> None:
        """Re-lower everything from the cached parse trees."""
        self._promote_pending()
        units: List[ParsedUnit] = []
        annotation_groups: List[List[ExtractedAnnotation]] = []
        degraded: List[DegradedUnit] = []
        attempts: Dict[str, int] = {}
        successes: Dict[str, int] = {}
        for path in self._paths:
            state = self._units.get(path)
            if state is None:
                continue
            degraded.extend(state.degraded)
            _merge_counts(attempts, state.recovery_attempts)
            _merge_counts(successes, state.recovery_successes)
            if state.unit is not None:
                units.append(state.unit)
                annotation_groups.append(state.annotations)
        self.program = _finish(
            units, annotation_groups, self.config.verify_ir,
            recover=bool(self.config.degraded_mode
                         or self.config.recover_tiers),
            degraded=degraded,
            recovery_attempts=attempts,
            recovery_successes=successes,
        )
        self.full_relowers += 1
        # reference sets for future swap-eligibility checks
        module = self.program.module
        for state in self._units.values():
            state.refs = _function_refs(module, state.defs)

    # ------------------------------------------------------------------
    # surgical unit swap
    # ------------------------------------------------------------------

    def _swap_eligible(self, path: str) -> bool:
        """A changed unit can be re-lowered into the live module only
        when nothing outside the unit can observe the difference:

        - old and new top level contain nothing but function
          definitions, and neither carries annotations;
        - the new unit defines exactly the same function names (a
          rename, addition or deletion moves call bindings and
          module order — full re-lower);
        - no other unit references any of those functions (the IR
          binds calls to function *objects*; external references
          would keep pointing at the old bodies);
        - none of the functions is degraded or annotated.
        """
        program = self.program
        old = self._units.get(path)
        new = getattr(self, "_pending", {}).get(path)
        if program is None or old is None or new is None:
            return False
        if old.unit is None or new.unit is None:
            return False
        if old.degraded or new.degraded:
            return False
        if not old.funcs_only or not new.funcs_only:
            return False
        if old.annotations or new.annotations:
            return False
        if tuple(sorted(old.defs)) != tuple(sorted(new.defs)):
            return False
        names = set(old.defs)
        if names & set(program.degraded_functions or ()):
            return False
        for fname in names:
            if program.function_annotations.get(fname):
                return False
        for other_path, state in self._units.items():
            if other_path == path:
                continue
            if names & state.refs:
                return False
            if names & set(state.defs):
                return False
        return True

    def _swap_unit(self, path: str) -> None:
        old = self._units[path]
        new = self._pending.pop(path)
        program = self.program
        module = program.module
        # prune the swap to the defs whose ASTs actually moved — a
        # one-function edit (or a comment/whitespace-only change) need
        # not re-lower its 30 siblings. Pruning is sound only when no
        # kept def references a re-lowered one: kept bodies bind call
        # operands to function *objects*, which the re-lower replaces.
        swapped = [f for f in new.defs
                   if new.def_digests.get(f) != old.def_digests.get(f)]
        if swapped and len(swapped) != len(new.defs):
            kept = [f for f in new.defs if f not in set(swapped)]
            if _function_refs(module, kept) & set(swapped):
                swapped = list(new.defs)
        self.last_swap_defs = tuple(swapped)
        if swapped:
            original_order = list(module.functions)
            for fname in swapped:
                module.functions.pop(fname, None)
            unit = new.unit
            if len(swapped) != len(new.defs):
                keep = set(swapped)
                pruned = c_ast.FileAST(ext=[
                    ext for ext in new.unit.ast.ext
                    if not (isinstance(ext, c_ast.FuncDef)
                            and ext.decl.name not in keep)
                ])
                unit = ParsedUnit(pruned, new.unit.source,
                                  name=new.unit.name)
            lowerer = ModuleLowerer(run_ssa=True, recover=False,
                                    module=module)
            lowerer.lower_unit(unit)
            if self.config.verify_ir:
                for fname in swapped:
                    func = module.get_function(fname)
                    if func is not None and not func.is_declaration:
                        verify_function(func)
            # restore the cold module order (same names, new objects),
            # with any newly created external declarations at the tail
            # — byte-identity with a cold run depends on deterministic
            # iteration
            reordered = {}
            for fname in original_order:
                if fname in module.functions:
                    reordered[fname] = module.functions[fname]
            for fname, func in module.functions.items():
                if fname not in reordered:
                    reordered[fname] = func
            module.functions = reordered
        index = program.units.index(old.unit)
        program.units[index] = new.unit
        self._units[path] = new
        new.refs = _function_refs(module, new.defs)


class WatchLoop:
    """mtime/content-hash polling around an :class:`IncrementalSession`.

    ``roots`` may mix files and directories; directories are rescanned
    every poll for ``*.c`` files, so new and deleted files become
    front-end changes. ``clock``/``sleep`` are injectable for tests.
    The loop enters :func:`gc_paused` before the first verdict of a
    burst and exits it only after ``idle_release`` seconds without a
    change, so back-to-back re-verdicts never pay the guard's exit
    collection.
    """

    def __init__(self, session: IncrementalSession,
                 roots: Optional[Sequence[str]] = None,
                 interval: float = 0.2,
                 idle_release: float = 2.0,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep,
                 on_report=None):
        self.session = session
        self.roots = list(roots) if roots is not None else session.paths
        self.interval = interval
        self.idle_release = idle_release
        self.clock = clock
        self.sleep = sleep
        self.on_report = on_report
        self._mtimes: Dict[str, Tuple[float, int]] = {}
        self._pause = None
        self._ran = False
        self._last_activity: Optional[float] = None

    # -- gc pause across bursts ----------------------------------------

    def _enter_pause(self) -> None:
        if self._pause is None and self.session.config.pause_gc:
            from ..perf.gcpause import gc_paused

            self._pause = gc_paused(True)
            self._pause.__enter__()

    def _release_pause(self) -> None:
        if self._pause is not None:
            pause, self._pause = self._pause, None
            pause.__exit__(None, None, None)

    @property
    def gc_pause_held(self) -> bool:
        return self._pause is not None

    # -- scanning ------------------------------------------------------

    def _targets(self) -> List[str]:
        targets: List[str] = []
        for root in self.roots:
            if os.path.isdir(root):
                for dirpath, _, filenames in sorted(os.walk(root)):
                    for fname in sorted(filenames):
                        if fname.endswith(".c"):
                            targets.append(os.path.join(dirpath, fname))
            else:
                targets.append(root)
        return targets

    def _scan(self) -> bool:
        """True when any watched file's (mtime, size) moved."""
        targets = self._targets()
        stamped: Dict[str, Tuple[float, int]] = {}
        for path in targets:
            try:
                st = os.stat(path)
                stamped[path] = (st.st_mtime, st.st_size)
            except OSError:
                continue
        moved = stamped != self._mtimes
        self._mtimes = stamped
        if moved:
            self.session.set_paths(targets)
        return moved

    # -- driving -------------------------------------------------------

    def poll_once(self) -> Optional[AnalysisReport]:
        """One poll: re-verdict if anything moved (always on the first
        call); otherwise maybe release the gc pause. Returns the report
        when a verdict ran."""
        moved = self._scan()
        if moved or not self._ran:
            self._ran = True
            self._enter_pause()
            report = self.session.verdict()
            self._last_activity = self.clock()
            if self.on_report is not None:
                self.on_report(report)
            return report
        if (self._pause is not None and self._last_activity is not None
                and self.clock() - self._last_activity >= self.idle_release):
            self._release_pause()
        return None

    def run(self, max_verdicts: Optional[int] = None,
            duration: Optional[float] = None,
            once: bool = False) -> int:
        """Poll until ``max_verdicts`` verdicts ran, ``duration``
        seconds elapsed, or (``once``) the first verdict. Returns the
        number of verdicts."""
        verdicts = 0
        started = self.clock()
        try:
            while True:
                report = self.poll_once()
                if report is not None:
                    verdicts += 1
                    if once or (max_verdicts is not None
                                and verdicts >= max_verdicts):
                        break
                if duration is not None \
                        and self.clock() - started >= duration:
                    break
                self.sleep(self.interval)
        finally:
            self._release_pause()
        return verdicts
