"""Disk-backed value-flow segment store (the incremental subsystem).

A *segment* is one persisted summary/effects body run — the
:class:`repro.perf.summary_store.BodyRecord` (reads, writes, warnings,
failures, VFG edges, call dispatches, returned taint) plus its identity
metadata: function, body kind, closure fingerprint, assumed-core
context and serialized argument taints. Segments are keyed exactly like
:class:`repro.perf.summary_store.SummaryStore` entries, so the
value-flow engine drives both stores through one duck-typed protocol
(``entry_key`` / ``lookup`` / ``stage`` / ``flush``).

What the segment store adds over the summary store:

- **an append-only checksum-framed log**: every frame is length-
  prefixed and sealed (:mod:`repro.perf.integrity`), appended with an
  ``fsync``. A SIGKILL mid-write leaves a torn tail that the next open
  truncates back to the last intact frame (counted as an integrity
  eviction, never an error) — the PR 4 evict-and-recompute discipline.
  The log is compacted in place once dead frames dominate;

- **run lifecycle + dirty-cone invalidation** (:meth:`begin_run`): the
  store remembers the per-function closure fingerprints of the last
  completed run. At the start of a run the engine hands it the current
  map; the diff (edited functions and their transitive callers, new
  functions, deleted functions) seeds a forward closure over the
  writer→reader cell-coupling edges of the persisted
  :class:`repro.incremental.depgraph.DependencyGraph`, and every
  segment in that *dirty cone* is evicted up front. This is
  correctness-load-bearing for trusted replay — see below;

- **trusted (optimistic) replay** (``trust_replay``): recorded cell
  reads reflect the final converged state of the producing run, so
  validating them against mid-fixpoint state (the summary store's
  discipline) rejects nearly every record in the early sweeps and
  re-pays the whole fixpoint. With ``trust_replay`` the engine applies
  intact segments without sweep-time read validation, *defers* every
  read check to the converged end state, and the driver falls back to
  a validating rerun if any deferred check fails. Eviction of the
  dirty cone up front is what makes this sound: a stale record whose
  inputs were produced by changed code is never replayed, so the only
  way a deferred check can pass is that the recorded input really is
  the converged value;

- **coupling stubs** (:meth:`note_coupling`): bodies that cannot be
  persisted (they touched an unnamed cell, or ran through the merged
  context-budget path) still read and write named cells. Their
  writer→reader facts are persisted as stubs so the dirty cone sees
  every coupling, not just the replayable ones.

The dependency graph is serialized alongside the log (``deps.bin``,
sealed) on every flush; it is an introspection artifact — the cone is
always computed from the live segments, so a damaged ``deps.bin`` is
simply rewritten.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..perf.fingerprint import SCHEMA_VERSION
from ..perf.integrity import IntegrityError, seal, unseal
from ..perf.summary_store import BodyRecord, SummaryStore
from ..resilience.faults import on_segment_flush
from .depgraph import DependencyGraph

#: bump on any change to the segment/frame layout; folded into
#: ``config_fingerprint`` so a format rev namespaces every store
SEGMENT_FORMAT_VERSION = 1

LOG_NAME = "segments.log"
DEPS_NAME = "deps.bin"

_LEN_BYTES = 4
_MAX_FRAME = 1 << 30


@dataclass
class Segment:
    """One persisted per-(function, context) analysis unit."""

    function: str
    kind: str  # "summary" | "effects"
    closure_fp: str
    ctx: Tuple[str, ...]
    args: tuple
    record: BodyRecord


def _frame(obj) -> bytes:
    payload = seal(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    return len(payload).to_bytes(_LEN_BYTES, "big") + payload


class SegmentStore:
    """On-disk, crash-tolerant, incrementally-invalidated segment map.

    ``root`` is a directory owned by this store (created on demand);
    the caller namespaces it by config fingerprint so records produced
    under one configuration are never replayed into another.
    """

    def __init__(self, root: str, trust_replay: bool = True):
        self.root = root
        self.path = os.path.join(root, LOG_NAME)
        self.deps_path = os.path.join(root, DEPS_NAME)
        #: engine-visible mode switch: apply records optimistically and
        #: defer read validation to the converged state (the driver
        #: flips this off for the validating fallback rerun)
        self.trust_replay = trust_replay
        self.hits = 0
        self.misses = 0
        self.integrity_evictions = 0
        #: segments evicted by dirty-cone invalidation (not integrity)
        self.evictions = 0
        self.last_seeds: FrozenSet[str] = frozenset()
        self.last_cone: FrozenSet[str] = frozenset()
        #: converged merged-input joins of the last successful run in
        #: this process (see ``ValueFlowAnalysis._apply_merged_seeds``).
        #: Deliberately *not* persisted: seeds are only sound against
        #: the exact segment population that produced them, and a
        #: process restart pays one ordinary warm run to re-harvest.
        self.merged_seeds: Optional[dict] = None
        self._segments: Dict[str, Segment] = {}
        #: function → (read cell names, written cell names) for bodies
        #: analyzed but not persisted (coupling stubs)
        self._couplings: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {}
        #: closure fingerprints of the last *completed* (flushed) run
        self._closures: Dict[str, str] = {}
        self._staged: Dict[str, Segment] = {}
        self._staged_couplings: Dict[
            str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {}
        self._tombstones: List[str] = []
        self._uncouple: List[str] = []
        #: metadata captured by :meth:`entry_key`, so :meth:`stage` can
        #: wrap the engine's bare record into a full :class:`Segment`
        self._pending_meta: Dict[str, Tuple[str, str, str, tuple, tuple]] = {}
        #: the closure map of the run in flight (None outside a run)
        self._run_closures: Optional[Dict[str, str]] = None
        self._disk_frames = 0
        self._load()

    # ------------------------------------------------------------------
    # loading / crash recovery
    # ------------------------------------------------------------------

    def _load(self) -> None:
        try:
            with open(self.path, "rb") as f:
                raw = f.read()
        except OSError:
            return
        frames: List[tuple] = []
        offset = 0
        torn = False
        size = len(raw)
        while offset < size:
            end = offset + _LEN_BYTES
            if end > size:
                torn = True
                break
            length = int.from_bytes(raw[offset:end], "big")
            if length <= 0 or length > _MAX_FRAME or end + length > size:
                torn = True
                break
            try:
                obj = pickle.loads(unseal(raw[end:end + length]))
            except (IntegrityError, Exception):
                torn = True
                break
            frames.append(obj)
            offset = end + length
        if torn:
            # a kill mid-append left a torn tail: keep the intact
            # prefix, truncate the rest, count one eviction
            self.integrity_evictions += 1
            self._truncate_to(offset)
        if not frames:
            return
        header = frames[0]
        if (not isinstance(header, tuple) or len(header) != 2
                or header[0] != "header"
                or header[1].get("format") != SEGMENT_FORMAT_VERSION
                or header[1].get("schema") != SCHEMA_VERSION):
            # foreign or stale-format store: evict wholesale and
            # recompute (stale segments must never replay)
            self.integrity_evictions += 1
            self._remove_files()
            return
        for obj in frames[1:]:
            self._apply(obj)
        self._disk_frames = len(frames)

    def _apply(self, obj: tuple) -> None:
        tag = obj[0]
        if tag == "segment":
            _, key, segment = obj
            self._segments[key] = segment
        elif tag == "evict":
            for key in obj[1]:
                self._segments.pop(key, None)
        elif tag == "coupling":
            _, function, reads, writes = obj
            self._couplings[function] = (tuple(reads), tuple(writes))
        elif tag == "uncouple":
            for function in obj[1]:
                self._couplings.pop(function, None)
        elif tag == "closures":
            self._closures = dict(obj[1])
        # unknown tags are ignored: forward-compatible within a format

    def _truncate_to(self, offset: int) -> None:
        try:
            if offset <= 0:
                os.unlink(self.path)
            else:
                with open(self.path, "r+b") as f:
                    f.truncate(offset)
        except OSError:
            pass

    def _remove_files(self) -> None:
        for path in (self.path, self.deps_path):
            try:
                os.unlink(path)
            except OSError:
                pass
        self._segments.clear()
        self._couplings.clear()
        self._closures = {}
        self._disk_frames = 0

    # ------------------------------------------------------------------
    # run lifecycle: dirty-cone invalidation
    # ------------------------------------------------------------------

    def begin_run(self, closures: Dict[str, str]) -> FrozenSet[str]:
        """Start a run: diff closure fingerprints, evict the dirty cone.

        ``closures`` maps every currently defined function to its
        transitive closure fingerprint. Seeds are the symmetric
        difference against the last completed run (edited functions and
        all their transitive callers — the closure fingerprint moves
        for every one of them — plus new and deleted functions); the
        cone is their forward closure over writer→reader cell coupling.
        Idempotent within a run: a fallback rerun recomputes the same
        (already applied) eviction set.
        """
        current = dict(closures)
        seeds = {
            name
            for name in set(self._closures) | set(current)
            if self._closures.get(name) != current.get(name)
        }
        self.last_seeds = frozenset(seeds)
        if seeds:
            graph = self.dependency_graph()
            cone = graph.dirty_cone(seeds)
        else:
            cone = frozenset()
        self.last_cone = cone
        if cone:
            evicted = [key for key, seg in self._segments.items()
                       if seg.function in cone]
            for key in evicted:
                del self._segments[key]
            self._tombstones.extend(evicted)
            self.evictions += len(evicted)
        self._run_closures = current
        return cone

    def dependency_graph(self) -> DependencyGraph:
        """The live graph (persisted segments + coupling stubs)."""
        return DependencyGraph.from_segments(
            self._segments.values(), self._couplings
        )

    # ------------------------------------------------------------------
    # the engine-facing store protocol
    # ------------------------------------------------------------------

    def entry_key(self, func_name: str, kind: str, closure_fp: str,
                  ctx: Tuple[str, ...], args: tuple) -> str:
        """Same digest as :meth:`SummaryStore.entry_key` (the protocols
        are interchangeable); additionally captures the metadata that
        turns a staged record into a full :class:`Segment`."""
        key = SummaryStore.entry_key(func_name, kind, closure_fp, ctx, args)
        self._pending_meta[key] = (func_name, kind, closure_fp, ctx, args)
        return key

    def lookup(self, key: str) -> Optional[BodyRecord]:
        segment = self._segments.get(key)
        return segment.record if segment is not None else None

    def stage(self, key: str, record: BodyRecord) -> None:
        meta = self._pending_meta.get(key)
        if meta is None:  # unknown key: engine bypassed entry_key
            return
        function, kind, closure_fp, ctx, args = meta
        self._staged[key] = Segment(
            function=function, kind=kind, closure_fp=closure_fp,
            ctx=ctx, args=args, record=record,
        )

    def note_coupling(self, function: str, reads, writes) -> None:
        """Record the cell coupling of a body that has no segment."""
        reads = tuple(sorted(reads))
        writes = tuple(sorted(writes))
        if not reads and not writes:
            return
        self._staged_couplings[function] = (reads, writes)

    def hold_merged_seeds(self, payload: Optional[dict]) -> None:
        """Keep (or poison, with ``None``) the engine's converged
        merged-input joins for the next trusted run in this process."""
        self.merged_seeds = payload

    def discard_staged(self) -> None:
        """Drop everything staged by a run whose deferred validation
        failed: its records were computed against optimistic state."""
        self._staged.clear()
        self._staged_couplings.clear()

    def __len__(self) -> int:
        return len(self._segments)

    # ------------------------------------------------------------------
    # flush / compaction / artifacts
    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Persist the completed run: evictions, new segments, coupling
        stubs and the closure map, appended as sealed frames with one
        fsync; then refresh ``deps.bin`` and compact if dead frames
        dominate. No-op when nothing changed."""
        run_closures = self._run_closures
        if run_closures is not None:
            # stubs of re-analyzed (cone) functions that were not
            # re-noted this run describe bodies that no longer exist,
            # as do stubs of deleted functions
            for function in list(self._couplings):
                replaced = function in self._staged_couplings
                gone = function not in run_closures
                stale = function in self.last_cone and not replaced
                if gone or stale:
                    del self._couplings[function]
                    self._uncouple.append(function)
        closures_changed = (
            run_closures is not None and run_closures != self._closures
        )
        if not (self._staged or self._staged_couplings or self._tombstones
                or self._uncouple or closures_changed):
            self._pending_meta.clear()
            return
        frames: List[bytes] = []
        fresh = self._disk_frames == 0
        if fresh:
            frames.append(_frame(("header", {
                "format": SEGMENT_FORMAT_VERSION,
                "schema": SCHEMA_VERSION,
            })))
        if self._tombstones:
            frames.append(_frame(("evict", tuple(self._tombstones))))
        if self._uncouple:
            frames.append(_frame(("uncouple", tuple(self._uncouple))))
        for key, segment in self._staged.items():
            frames.append(_frame(("segment", key, segment)))
        for function, (reads, writes) in self._staged_couplings.items():
            frames.append(_frame(("coupling", function, reads, writes)))
        if closures_changed:
            frames.append(_frame(("closures", dict(run_closures))))
        blob = b"".join(frames)
        try:
            os.makedirs(self.root, exist_ok=True)
            with open(self.path, "ab") as f:
                on_segment_flush(f, blob)
                f.write(blob)
                f.flush()
                os.fsync(f.fileno())
        except OSError:
            return
        self._disk_frames += len(frames)
        self._segments.update(self._staged)
        self._couplings.update(self._staged_couplings)
        if run_closures is not None:
            self._closures = dict(run_closures)
        self._staged.clear()
        self._staged_couplings.clear()
        self._tombstones.clear()
        self._uncouple.clear()
        self._pending_meta.clear()
        live = len(self._segments) + len(self._couplings) + 2
        if self._disk_frames > 2 * live + 64:
            self._compact()
        self._write_deps()

    def _compact(self) -> None:
        """Rewrite the log with only live frames (atomic replace)."""
        frames = [_frame(("header", {
            "format": SEGMENT_FORMAT_VERSION,
            "schema": SCHEMA_VERSION,
        }))]
        if self._closures:
            frames.append(_frame(("closures", dict(self._closures))))
        for function, (reads, writes) in sorted(self._couplings.items()):
            frames.append(_frame(("coupling", function, reads, writes)))
        for key, segment in sorted(self._segments.items()):
            frames.append(_frame(("segment", key, segment)))
        try:
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as f:
                    f.write(b"".join(frames))
                    f.flush()
                    os.fsync(f.fileno())
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return
        self._disk_frames = len(frames)

    def _write_deps(self) -> None:
        """Serialize the dependency graph alongside the store."""
        payload = {
            "format": SEGMENT_FORMAT_VERSION,
            "graph": self.dependency_graph().to_payload(),
            "closures": dict(self._closures),
        }
        try:
            blob = seal(pickle.dumps(payload,
                                     protocol=pickle.HIGHEST_PROTOCOL))
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as f:
                    f.write(blob)
                os.replace(tmp, self.deps_path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return

    def read_deps_artifact(self) -> Optional[dict]:
        """Load ``deps.bin``; ``None`` when absent or damaged (the
        artifact is derived state — the caller just rebuilds)."""
        try:
            with open(self.deps_path, "rb") as f:
                raw = f.read()
        except OSError:
            return None
        try:
            payload = pickle.loads(unseal(raw))
        except (IntegrityError, Exception):
            self.integrity_evictions += 1
            return None
        if payload.get("format") != SEGMENT_FORMAT_VERSION:
            return None
        return payload
