"""Crash isolation for the SafeFlow analysis fleet.

The paper's premise is that a trusted core must survive misbehaving
peers; this package holds the analyzer to the same standard. It is the
supervision layer shared by the parallel batch driver
(:mod:`repro.perf.batch`) and the daemon's worker pool
(:mod:`repro.server.pool`):

- :mod:`~repro.resilience.supervisor` — ``BrokenProcessPool``
  detection with transparent executor rebuilds, plus crash attribution
  and quarantine (:class:`CrashLedger`), so one crash costs one
  result, never the batch or the daemon;
- :mod:`~repro.resilience.guards` — per-worker ``setrlimit`` caps and
  a cooperative in-analysis deadline, so runaway inputs degrade into a
  structured ``resource_exhausted`` diagnostic;
- :mod:`~repro.resilience.faults` — deterministic, env-driven fault
  injection (kill/slow/boom a worker on a named job, corrupt or tear
  cache entries on disk);
- :mod:`~repro.resilience.chaos` — the ``safeflow chaos`` harness:
  run a generated workload under a fault schedule and assert the final
  verdicts are byte-identical to a fault-free run.

:func:`worker_harness` is the one entry point worker functions wrap a
job in: it fires scheduled faults, applies rlimits (only inside a real
worker process — rlimits are irreversible), and arms the thread-local
analysis deadline.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from . import faults
from .guards import ResourceGuards, apply_rlimits, check_deadline, deadline_scope
from .supervisor import CrashLedger, SupervisedExecutor


@contextmanager
def worker_harness(job_name: str, guards: Optional[ResourceGuards] = None):
    """Per-job worker preamble: faults, rlimits, deadline."""
    faults.on_job_start(job_name)
    if guards is not None and guards.has_rlimits() and faults.in_worker():
        apply_rlimits(guards)
    with deadline_scope(
        guards.deadline_seconds if guards is not None else None
    ):
        yield


__all__ = [
    "CrashLedger",
    "ResourceGuards",
    "SupervisedExecutor",
    "apply_rlimits",
    "check_deadline",
    "deadline_scope",
    "faults",
    "worker_harness",
]
