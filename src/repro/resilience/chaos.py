"""The ``safeflow chaos`` harness: fault schedules vs byte-identity.

The repo-wide invariant is that every acceleration and resilience
path — caches, parallel batch, supervised pools, crash recovery —
renders reports *byte-identical* to a cold sequential run. This module
turns that invariant into an executable check: generate a
deterministic workload (:func:`repro.corpus.generate_core` variants),
run it fault-free for a baseline, then re-run it under each named
fault schedule (:mod:`repro.resilience.faults`) and assert that

- every non-quarantined job completes with a render byte-identical to
  the baseline;
- the supervision layer actually engaged (worker restarts observed for
  kill schedules, integrity evictions counted for corruption ones);
- for the ``serve-kill`` schedule, the daemon answers a *follow-up*
  request in the same process — one worker crash never costs the
  service;
- for the ``kill-resume`` schedule, the batch *driver* is SIGKILLed
  right after a result reaches the write-ahead journal, and a
  ``--resume`` run completes the batch byte-identical to an
  uninterrupted one, re-running only the unfinished jobs;
- for the ``watch-kill`` schedule, an incremental watch session is
  SIGKILLed mid-append to its segment log, and a fresh session on the
  same store truncates the torn tail (one integrity eviction) and
  re-verdicts byte-identical to a fault-free cold run;
- for the ``overload`` schedule, a two-shard fleet under multi-tenant
  admission control is stormed past capacity and one shard is
  SIGKILLed mid-storm: the shard's circuit breaker must open, every
  request must end as either a byte-identical result or a structured
  admission rejection (``rate_limited``/``shed``/``queue_full``) —
  zero accepted-then-dropped — and a post-storm wave must complete
  cleanly once the shard is restarted (goodput recovers).

Schedules needing a real process pool (anything that kills a worker)
are skipped, not failed, on platforms where no pool can be created —
there is no isolation boundary to test there.
"""

from __future__ import annotations

import dataclasses
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.config import AnalysisConfig
from . import faults
from .faults import FaultPlan

#: schedule names in execution order; ``--smoke`` runs the starred core
SCHEDULES = ("kill", "quarantine", "slow", "corrupt-ir", "torn-summary",
             "serve-kill", "kill-resume", "watch-kill", "tier-crash",
             "overload")
SMOKE_SCHEDULES = ("kill", "corrupt-ir", "serve-kill", "kill-resume",
                   "watch-kill", "tier-crash", "overload")

#: the job a schedule's fault targets (second job: exercises recovery
#: with completed work before and pending work after the crash)
TARGET = "job-1"


@dataclass
class ScheduleReport:
    """Outcome of one schedule run."""

    name: str
    passed: bool = True
    skipped: bool = False
    notes: List[str] = field(default_factory=list)

    def fail(self, note: str) -> None:
        self.passed = False
        self.notes.append(f"FAIL: {note}")

    def note(self, note: str) -> None:
        self.notes.append(note)


@dataclass
class ChaosOutcome:
    """All schedule reports plus the workload shape."""

    jobs: int
    workers: int
    schedules: List[ScheduleReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(s.passed for s in self.schedules)

    def to_json(self) -> Dict[str, object]:
        return {
            "jobs": self.jobs,
            "workers": self.workers,
            "ok": self.ok,
            "schedules": [
                {"name": s.name, "passed": s.passed,
                 "skipped": s.skipped, "notes": list(s.notes)}
                for s in self.schedules
            ],
        }

    def render(self) -> str:
        lines = []
        for s in self.schedules:
            status = ("SKIP" if s.skipped
                      else "PASS" if s.passed else "FAIL")
            lines.append(f"{s.name:<14} {status}")
            for note in s.notes:
                lines.append(f"    {note}")
        verdict = "OK" if self.ok else "FAILED"
        lines.append(f"chaos: {verdict} ({self.jobs} jobs, "
                     f"{self.workers} workers)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# workload
# ----------------------------------------------------------------------

def _write_workload(root: str, count: int) -> List:
    """``count`` deterministic generated programs, one file per job."""
    from ..corpus import generate_core
    from ..perf.batch import BatchJob

    jobs = []
    for i in range(count):
        program = generate_core(
            data_error_regions=1 + i % 2,
            control_fp_regions=i % 2,
            benign_read_regions=1,
            monitored_regions=1 + i % 2,
            filler_functions=i % 3,
            chain_depth=i % 2,
        )
        path = os.path.join(root, f"job-{i}.c")
        with open(path, "w") as f:
            f.write(program.source)
        jobs.append(BatchJob(name=f"job-{i}", files=(path,)))
    return jobs


def _fingerprints(outcome) -> Dict[str, str]:
    """job name → rendered report (the byte-identity unit)."""
    prints = {}
    for result in outcome.results:
        if result.ok:
            prints[result.name] = result.report.render(verbose=False)
    return prints


def _pool_available() -> bool:
    from ..perf.batch import resolve_mp_context
    from .supervisor import SupervisedExecutor

    if resolve_mp_context() is None:
        return False
    probe = SupervisedExecutor(max_workers=1)
    try:
        return probe.available
    finally:
        probe.shutdown(wait=False)


def _compare(report: ScheduleReport, baseline: Dict[str, str],
             observed: Dict[str, str],
             expect_missing: Optional[set] = None) -> None:
    expect_missing = expect_missing or set()
    for name, render in sorted(baseline.items()):
        if name in expect_missing:
            if name in observed:
                report.fail(f"{name} completed but should have been "
                            f"quarantined")
            continue
        if name not in observed:
            report.fail(f"{name} did not complete")
        elif observed[name] != render:
            report.fail(f"{name} render differs from fault-free run")
    if not any(n.startswith("FAIL") for n in report.notes):
        survivors = len(baseline) - len(expect_missing)
        report.note(f"{survivors} job(s) byte-identical to "
                    f"fault-free baseline")


# ----------------------------------------------------------------------
# schedules
# ----------------------------------------------------------------------

def _run_batch(jobs, config, workers, plan=None, **kwargs):
    from ..perf.batch import run_batch

    with faults.activate(plan):
        return run_batch(jobs, config, max_workers=workers, **kwargs)


def _schedule_kill(report, jobs, baseline, config, workers, scratch):
    plan = FaultPlan(kill_job=TARGET,
                     latch_dir=os.path.join(scratch, "latch"))
    outcome = _run_batch(jobs, config, workers, plan)
    if outcome.worker_restarts < 1:
        report.fail("worker was killed but no pool restart was recorded")
    else:
        report.note(f"pool restarted {outcome.worker_restarts} time(s)")
    if outcome.quarantined:
        report.fail(f"one-shot kill must not quarantine "
                    f"(got {outcome.quarantined})")
    _compare(report, baseline, _fingerprints(outcome))


def _schedule_quarantine(report, jobs, baseline, config, workers, scratch):
    plan = FaultPlan(kill_job=TARGET, kill_always=True)
    outcome = _run_batch(jobs, config, workers, plan)
    if outcome.quarantined != [TARGET]:
        report.fail(f"expected quarantined == [{TARGET!r}], "
                    f"got {outcome.quarantined}")
    else:
        report.note(f"{TARGET} quarantined after repeated crashes")
    by_name = {r.name: r for r in outcome.results}
    target = by_name.get(TARGET)
    if target is None or target.code != "worker_crashed":
        report.fail(f"{TARGET} should carry code worker_crashed")
    _compare(report, baseline, _fingerprints(outcome),
             expect_missing={TARGET})


def _schedule_slow(report, jobs, baseline, config, workers, scratch):
    plan = FaultPlan(slow_job=TARGET, slow_seconds=0.3)
    outcome = _run_batch(jobs, config, workers, plan)
    if outcome.quarantined:
        report.fail("slow worker must not be quarantined")
    _compare(report, baseline, _fingerprints(outcome))


def _schedule_corrupt_ir(report, jobs, baseline, config, workers, scratch):
    cache_dir = os.path.join(scratch, "cache-corrupt")
    cached = dataclasses.replace(config, cache_dir=cache_dir)
    _run_batch(jobs, cached, workers)  # cold pass populates the cache
    flipped = faults.corrupt_ir_entry(cache_dir)
    torn = faults.truncate_ir_entry(cache_dir)
    if flipped is None and torn is None:
        report.fail("no IR cache entries were written to corrupt")
        return
    report.note("corrupted one IR entry, truncated another")
    outcome = _run_batch(jobs, cached, workers)
    evictions = sum(r.report.stats.cache_integrity_evictions
                    for r in outcome.results if r.ok)
    if evictions < 1:
        report.fail("damaged entries were not detected/evicted")
    else:
        report.note(f"{evictions} integrity eviction(s) counted")
    _compare(report, baseline, _fingerprints(outcome))


def _schedule_torn_summary(report, jobs, _unused_baseline, config, workers,
                           scratch):
    # summary mode changes what work is replayed, not the verdicts;
    # the baseline is a summary-mode fault-free run of the same jobs
    cache_dir = os.path.join(scratch, "cache-summary")
    summary = dataclasses.replace(config, cache_dir=cache_dir,
                                  summary_mode=True)
    baseline = _fingerprints(_run_batch(jobs, summary, workers))
    torn = faults.tear_summary_store(cache_dir)
    if torn is None:
        report.fail("no summary store was written to tear")
        return
    report.note("tore the summary store mid-file")
    outcome = _run_batch(jobs, summary, workers)
    evictions = sum(r.report.stats.cache_integrity_evictions
                    for r in outcome.results if r.ok)
    if evictions < 1:
        report.fail("torn store was not detected/evicted")
    else:
        report.note(f"{evictions} integrity eviction(s) counted")
    _compare(report, baseline, _fingerprints(outcome))


def _schedule_serve_kill(report, jobs, baseline, config, workers, scratch):
    from ..server.client import SafeFlowClient
    from ..server.daemon import SafeFlowServer

    plan = FaultPlan(kill_job=TARGET,
                     latch_dir=os.path.join(scratch, "serve-latch"))
    server = SafeFlowServer(config=config, port=0, workers=workers)
    if server.pool.mode != "processes":
        server.stop()
        report.skipped = True
        report.note("no process pool on this platform; nothing to kill")
        return
    pid_before = os.getpid()
    try:
        with faults.activate(plan):
            server.start()
            host, port = server.address
            with SafeFlowClient(host=host, port=port) as client:
                observed = {}
                for job in jobs:
                    result = client.analyze(
                        files=list(job.files), name=job.name)
                    observed[job.name] = result["render"]
                # the daemon must answer follow-ups in the SAME process
                if not client.ping():
                    report.fail("daemon did not answer after the crash")
                health = client.health()
                if health["pid"] != pid_before:
                    report.fail("daemon process changed identity")
                if health.get("worker_restarts", 0) < 1:
                    report.fail("no worker restart recorded in health")
                else:
                    report.note(
                        f"daemon survived: {health['worker_restarts']} "
                        f"restart(s), follow-up served by pid "
                        f"{health['pid']}")
                resilience = client.metrics().get("resilience", {})
                if resilience.get("jobs_resubmitted", 0) < 1:
                    report.fail("crashed request was not resubmitted")
        _compare(report, baseline, observed)
    finally:
        server.stop()


def _schedule_kill_resume(report, jobs, _unused_baseline, config, workers,
                          scratch):
    """Kill the batch *driver* after a journal append, then resume.

    Three ``safeflow batch --journal`` subprocess runs over the same
    workload: an uninterrupted reference, a run SIGKILLed by the
    ``kill_after_journal`` fault the instant the target job's record is
    durable, and a ``--resume`` of the killed journal. Asserts the
    resume reused exactly the journaled results (re-running only the
    unfinished jobs) and that the final journal replays byte-identical
    to the uninterrupted run. Sequential (``--jobs 1``) so the journal
    contents at the kill point are deterministic.
    """
    import json as json_mod
    import signal
    import subprocess
    import sys

    from ..perf.journal import BatchJournal

    files = [job.files[0] for job in jobs]
    target = os.path.basename(files[1])  # the CLI names jobs by basename

    def run_cli(journal, extra=(), env_extra=None):
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        env.pop(faults.ENV_VAR, None)
        if env_extra:
            env.update(env_extra)
        cmd = [sys.executable, "-m", "repro.cli", "batch",
               "--jobs", "1", "--no-cache", "--json",
               "--journal", journal, *extra, *files]
        return subprocess.run(cmd, env=env, capture_output=True,
                              text=True, timeout=600)

    def journal_renders(path):
        replay = BatchJournal(path).replay()
        return {name: rec[1].report.render(verbose=False)
                for name, rec in replay.results.items()
                if rec[1].ok and rec[1].report is not None}

    reference = os.path.join(scratch, "reference.journal")
    proc = run_cli(reference)
    if proc.returncode not in (0, 1):
        report.fail(f"reference run failed (rc {proc.returncode}): "
                    f"{proc.stderr.strip()[:200]}")
        return
    baseline = journal_renders(reference)
    if len(baseline) != len(files):
        report.fail(f"reference journal holds {len(baseline)} result(s), "
                    f"expected {len(files)}")
        return

    journal = os.path.join(scratch, "killed.journal")
    plan = FaultPlan(kill_after_journal=target)
    proc = run_cli(journal, env_extra={faults.ENV_VAR: plan.to_json()})
    if proc.returncode != -signal.SIGKILL:
        report.fail(f"driver should die by SIGKILL right after "
                    f"journaling {target!r} (rc {proc.returncode})")
        return
    survived = journal_renders(journal)
    if not survived or len(survived) >= len(files):
        report.fail(f"killed journal holds {len(survived)} result(s); "
                    f"expected a proper non-empty prefix of {len(files)}")
        return
    report.note(f"driver SIGKILLed mid-batch; journal holds "
                f"{len(survived)}/{len(files)} durable result(s)")

    proc = run_cli(journal, extra=("--resume",))
    if proc.returncode not in (0, 1):
        report.fail(f"resume run failed (rc {proc.returncode}): "
                    f"{proc.stderr.strip()[:200]}")
        return
    payload = json_mod.loads(proc.stdout)
    resumed = payload.get("resumed_jobs", 0)
    if resumed != len(survived):
        report.fail(f"resume reused {resumed} job(s), expected "
                    f"{len(survived)} (only unfinished jobs re-run)")
    else:
        report.note(f"resume reused {resumed} journaled result(s), "
                    f"re-ran {len(files) - resumed}")
    _compare(report, baseline, journal_renders(journal))


def _schedule_watch_kill(report, _unused_jobs, _unused_baseline, config,
                         _unused_workers, scratch):
    """SIGKILL a watch session mid-append to ``segments.log``.

    A subprocess drives an :class:`repro.incremental.watcher.
    IncrementalSession` over a generated multi-unit program: cold
    verdict, filler-body edit, re-verdict. The ``kill_segment_flush``
    fault SIGKILLs it during the second segment-store append, after a
    durable prefix that ends *inside* a frame — exactly the torn tail
    a machine death leaves. A fresh session on the same store must
    then truncate back to the last intact frame (counted as an
    integrity eviction) and produce a verdict byte-identical to a
    fault-free cold run over the edited sources.
    """
    import signal
    import subprocess
    import sys

    from ..corpus import generate_core_files
    from ..incremental.watcher import IncrementalSession

    src_dir = os.path.join(scratch, "watch-src")
    generated = generate_core_files(
        filler_units=2, fillers_per_unit=2,
        data_error_regions=2, monitored_regions=1, chain_depth=1,
    )
    paths = generated.write_to(src_dir)
    store_root = os.path.join(scratch, "watch-store")

    # the driver script edits one filler unit between verdicts, so the
    # killed append carries that unit's re-analyzed segments
    driver = (
        "import sys\n"
        "from repro.core.config import AnalysisConfig\n"
        "from repro.incremental.watcher import IncrementalSession\n"
        "store, target, *paths = sys.argv[1:]\n"
        "config = AnalysisConfig(cache_dir=None, summary_mode=True)\n"
        "session = IncrementalSession(paths, config=config,\n"
        "                             store_root=store)\n"
        "session.verdict()\n"
        "with open(target) as f:\n"
        "    text = f.read()\n"
        "assert '* 0.99' in text\n"
        "with open(target, 'w') as f:\n"
        "    f.write(text.replace('* 0.99', '* 0.98'))\n"
        "session.verdict()\n"
        "print('survived the scheduled kill', file=sys.stderr)\n"
    )
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    env[faults.ENV_VAR] = FaultPlan(kill_segment_flush=2).to_json()
    proc = subprocess.run(
        [sys.executable, "-c", driver, store_root, paths[1], *paths],
        env=env, capture_output=True, text=True, timeout=600)
    if proc.returncode != -signal.SIGKILL:
        report.fail(f"watch driver should die by SIGKILL mid-append "
                    f"(rc {proc.returncode}): {proc.stderr.strip()[:200]}")
        return
    log = os.path.join(store_root, "segments.log")
    if not os.path.exists(log):
        report.fail("killed driver left no segment log to recover")
        return
    report.note("watch driver SIGKILLed mid-append to segments.log")

    inc = dataclasses.replace(config, summary_mode=True)
    cold = IncrementalSession(
        list(paths), config=inc,
        store_root=os.path.join(scratch, "watch-cold"))
    baseline_render = cold.verdict().render(verbose=False)

    resumed = IncrementalSession(list(paths), config=inc,
                                 store_root=store_root)
    rep = resumed.verdict()
    evictions = rep.stats.cache_integrity_evictions
    if evictions < 1:
        report.fail("torn segment-log tail was not detected/evicted")
    else:
        report.note(f"{evictions} integrity eviction(s) on restart")
    if rep.render(verbose=False) != baseline_render:
        report.fail("post-crash verdict differs from fault-free cold run")
    else:
        report.note("post-crash re-verdict byte-identical to a cold run")


def _schedule_tier_crash(report, _unused_jobs, _unused_baseline, config,
                         workers, scratch):
    """Crash each recovery tier in turn on a salvage workload.

    The contract under test: a crashing tier counts as that tier
    *failing* — units fall through to the next tier or are lost
    fail-closed, jobs always complete (never a driver error), and no
    crash can make the ladder certify more than the fault-free run.
    """
    from ..frontend.recovery import DEFAULT_TIERS
    from ..perf.batch import BatchJob

    units = {
        "wild-gnu": ("int __attribute__((noinline)) t(int x) "
                     "{ return x + x; }\n"
                     "int u(void) { return t(2); }\n"),
        "wild-stdint": ("#include <stdint.h>\n"
                        "uint16_t v;\n"
                        "uint16_t b(uint16_t a) "
                        "{ return (uint16_t) (a + 1); }\n"),
        "wild-broken": ("int good(int a) { return a + 1; }\n"
                        "int bad(int a)\n{\n    return a @@ 2;\n}\n"),
        "wild-clean": "int plain(int a) { return a - 1; }\n",
    }
    src_dir = os.path.join(scratch, "wild-src")
    os.makedirs(src_dir, exist_ok=True)
    jobs = []
    for name, text in units.items():
        path = os.path.join(src_dir, f"{name}.c")
        with open(path, "w") as f:
            f.write(text)
        jobs.append(BatchJob(name=name, files=(path,)))

    ladder = dataclasses.replace(config, degraded_mode=True,
                                 recover_tiers=DEFAULT_TIERS)
    fault_free = _run_batch(jobs, ladder, workers)
    baseline_verdicts = {r.name: r.report.verdict
                         for r in fault_free.results if r.ok}
    baseline_pass = {n for n, v in baseline_verdicts.items()
                     if v == "pass"}
    if len(baseline_verdicts) != len(jobs):
        report.fail("fault-free ladder run did not complete every job")
        return

    for tier in ("strict",) + tuple(DEFAULT_TIERS):
        plan = FaultPlan(crash_tier=tier)
        outcome = _run_batch(jobs, ladder, workers, plan)
        verdicts = {r.name: r.report.verdict
                    for r in outcome.results if r.ok}
        if len(verdicts) != len(jobs):
            incomplete = [r.name for r in outcome.results if not r.ok]
            report.fail(f"crash_tier={tier}: {incomplete} did not "
                        f"complete — a crashing tier must never be a "
                        f"driver error")
            continue
        escaped = {n for n, v in verdicts.items()
                   if v == "pass"} - baseline_pass
        if escaped:
            report.fail(f"crash_tier={tier}: {sorted(escaped)} passed "
                        f"only under the fault — fail-open")
            continue
        if tier == "strict" and verdicts["wild-clean"] == "pass":
            # proves the fault reached the workers: with strict
            # crashing, even a clean unit must be salvaged by a later
            # tier (degraded), not certified
            report.fail("crash_tier=strict: clean unit still passed — "
                        "fault did not propagate")
        else:
            report.note(f"crash_tier={tier}: all jobs completed, "
                        f"pass set never grew")


def _schedule_overload(report, jobs, baseline, config, workers, scratch):
    """SIGKILL one shard of a tenant-aware fleet mid-overload.

    The admission-control contract under fire: work the fleet
    *accepted* is never dropped (it completes byte-identical, even if
    its shard dies and the router re-dispatches it), work the fleet
    *refused* is refused with a structured admission code the caller
    can act on, and the dead shard's circuit breaker visibly opens
    and then recovers.
    """
    import json as json_mod
    import signal as signal_mod
    import threading

    from ..fleet import FleetConfig, FleetRouter
    from ..server.client import SafeFlowClient, ServerError

    admission = {"queue_full", "rate_limited", "shed"}
    tenants_path = os.path.join(scratch, "overload-tenants.json")
    with open(tenants_path, "w") as f:
        json_mod.dump({
            "tenants": {
                "gold": {"weight": 3, "priority": "high"},
                "free": {"weight": 1, "priority": "low",
                         "rate": 200, "burst": 50},
            },
        }, f)

    router = FleetRouter(FleetConfig(
        shards=2, port=0,
        cache_root=os.path.join(scratch, "overload-fleet"),
        backend="process", use_processes=False,
        queue_size=4, health_interval=0.2,
        tenants_path=tenants_path, max_inflight="auto",
        # a short window so the burst of connection failures from the
        # SIGKILL dominates the storm's successes and visibly trips
        breaker_min_volume=2, breaker_window=4,
        breaker_cooldown_s=0.5,
    ))
    try:
        host, port = router.start()

        def analyze(client, job, tenant):
            return client.analyze(files=list(job.files), name=job.name,
                                  tenant=tenant)

        # warm pass doubles as the byte-identity preflight
        with SafeFlowClient(host=host, port=port,
                            request_timeout=120.0) as client:
            for job in jobs:
                result = analyze(client, job, "gold")
                if result["render"] != baseline[job.name]:
                    report.fail(f"{job.name}: fleet verdict differs "
                                f"from fault-free baseline")
                    return

        threads_n, rounds = 8, 20
        lock = threading.Lock()
        outcomes = {"ok": 0, "admission": 0, "drift": 0, "lost": 0}

        def storm(wid):
            tenant = "gold" if wid % 2 == 0 else "free"
            try:
                with SafeFlowClient(host=host, port=port, retries=2,
                                    request_timeout=120.0) as client:
                    for n in range(rounds):
                        job = jobs[(wid + n) % len(jobs)]
                        try:
                            result = analyze(client, job, tenant)
                        except ServerError as exc:
                            with lock:
                                if exc.name in admission:
                                    outcomes["admission"] += 1
                                else:
                                    outcomes["lost"] += 1
                            continue
                        with lock:
                            if result["render"] == baseline[job.name]:
                                outcomes["ok"] += 1
                            else:
                                outcomes["drift"] += 1
            except Exception:
                with lock:
                    outcomes["lost"] += 1

        threads = [threading.Thread(target=storm, args=(w,))
                   for w in range(threads_n)]
        for t in threads:
            t.start()
        import time as time_mod
        time_mod.sleep(0.15)
        victim = router._shard_list()[0].backend.pid
        if victim is not None:
            os.kill(victim, signal_mod.SIGKILL)
        for t in threads:
            t.join()

        snapshot = router.metrics_snapshot()
        qos = snapshot.get("qos", {})
        if outcomes["lost"]:
            report.fail(f"{outcomes['lost']} request(s) lost — accepted "
                        f"work must complete or be refused at admission, "
                        f"never dropped")
        if outcomes["drift"]:
            report.fail(f"{outcomes['drift']} result(s) differ from the "
                        f"fault-free baseline under overload")
        if outcomes["ok"] == 0:
            report.fail("no request completed during the storm")
        if qos.get("breaker_opens", 0) < 1:
            report.fail("dead shard's circuit breaker never opened")
        else:
            report.note(f"breaker opened {qos['breaker_opens']} time(s) "
                        f"on shard death")
        report.note(f"storm: {outcomes['ok']} completed byte-identical, "
                    f"{outcomes['admission']} refused at admission")

        # goodput recovers: once the shard is back, a clean wave runs
        with SafeFlowClient(host=host, port=port,
                            request_timeout=120.0) as client:
            for job in jobs:
                result = analyze(client, job, "gold")
                if result["render"] != baseline[job.name]:
                    report.fail(f"{job.name}: post-recovery verdict "
                                f"differs from baseline")
                    return
            health = client.call("health")
        restarts = sum(s.get("restarts", 0)
                       for s in health.get("shards", []))
        if restarts < 1:
            report.fail("killed shard was never restarted")
        else:
            report.note(f"goodput recovered: post-storm wave completed "
                        f"({restarts} shard restart(s))")
    finally:
        router.stop()


_RUNNERS: Dict[str, Callable] = {
    "kill": _schedule_kill,
    "quarantine": _schedule_quarantine,
    "slow": _schedule_slow,
    "corrupt-ir": _schedule_corrupt_ir,
    "torn-summary": _schedule_torn_summary,
    "serve-kill": _schedule_serve_kill,
    "kill-resume": _schedule_kill_resume,
    "watch-kill": _schedule_watch_kill,
    "tier-crash": _schedule_tier_crash,
    "overload": _schedule_overload,
}

#: schedules meaningless without a real worker process to kill
_NEEDS_POOL = {"kill", "quarantine", "serve-kill"}


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------

def run_chaos(schedules=None, jobs: int = 6, workers: int = 2,
              smoke: bool = False) -> ChaosOutcome:
    """Run the named ``schedules`` (default: all) over a generated
    workload and return the per-schedule verdicts."""
    if schedules is None:
        schedules = SMOKE_SCHEDULES if smoke else SCHEDULES
    unknown = [s for s in schedules if s not in _RUNNERS]
    if unknown:
        raise ValueError(f"unknown chaos schedule(s): {unknown} "
                         f"(known: {', '.join(SCHEDULES)})")
    if smoke:
        jobs = min(jobs, 3)
    jobs = max(2, jobs)
    workers = max(2, workers)

    scratch = tempfile.mkdtemp(prefix="safeflow-chaos-")
    outcome = ChaosOutcome(jobs=jobs, workers=workers)
    try:
        src_dir = os.path.join(scratch, "src")
        os.makedirs(src_dir, exist_ok=True)
        batch_jobs = _write_workload(src_dir, jobs)
        config = AnalysisConfig(cache_dir=None)
        baseline = _fingerprints(
            _run_batch(batch_jobs, config, workers))
        pool_ok = _pool_available()
        for name in schedules:
            report = ScheduleReport(name=name)
            if name in _NEEDS_POOL and not pool_ok:
                report.skipped = True
                report.note("no process pool on this platform")
                outcome.schedules.append(report)
                continue
            try:
                _RUNNERS[name](report, batch_jobs, baseline, config,
                               workers, scratch)
            except Exception as exc:
                report.fail(f"schedule raised "
                            f"{type(exc).__name__}: {exc}")
            outcome.schedules.append(report)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return outcome
