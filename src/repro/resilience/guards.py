"""Per-worker resource guards: rlimits + an in-analysis deadline.

A runaway translation unit must produce a structured
``resource_exhausted`` diagnostic, never an OOM kill that takes the
worker (and, unsupervised, the batch or daemon) with it. Three guards
cooperate:

- **CPU time** — ``resource.setrlimit(RLIMIT_CPU)``. ``RLIMIT_CPU``
  counts *cumulative* process CPU, and workers are long-lived and
  reused across jobs, so the budget must be re-armed **relative** to
  the CPU already consumed: each :func:`apply_rlimits` call sets the
  soft limit to ``getrusage(RUSAGE_SELF) + cpu_seconds``. An absolute
  cap would hand every worker a finite CPU *lifetime* — once its total
  across many jobs crossed the budget, innocent jobs would draw
  spurious ``SIGXCPU``. The soft limit delivers ``SIGXCPU``, which
  :func:`apply_rlimits` turns into a
  :class:`~repro.errors.ResourceExhaustedError` (kind ``cpu``) raised
  at the next bytecode boundary (and which Linux re-delivers every
  second past the limit, so a swallowed first raise gets retried). The
  *hard* limit is deliberately left untouched: a hard limit can only
  ever be lowered by an unprivileged process, so a per-job
  ``soft + grace`` hard cap could never be re-raised for the next job
  in the same worker — the stale cap would ``SIGKILL`` innocent jobs
  mid-run. Code that out-stalls ``SIGXCPU`` (a signal-proof C loop) is
  instead covered by the supervision layer's wall-clock abandonment.
- **Memory** — ``RLIMIT_AS`` (``RLIMIT_RSS`` is a no-op on modern
  Linux; the address-space cap is the nearest enforceable stand-in).
  Exceeding it surfaces as ``MemoryError``, which worker entry points
  map to ``resource_exhausted`` (kind ``rss``).
- **Deadline** — a *cooperative* wall-clock budget checked by
  :func:`check_deadline` inside the two unbounded loops of the
  analysis: the value-flow outer fixpoint
  (:meth:`repro.valueflow.engine.ValueFlowAnalysis.run`) and the
  Fourier–Motzkin elimination
  (:func:`repro.restrictions.solver.is_feasible`). The deadline is
  thread-local so the daemon's in-process fallback mode, where runner
  *threads* execute analyses side by side, cannot cross-contaminate
  budgets.

rlimits are process-wide (the address-space cap outlives the job that
armed it), so :func:`apply_rlimits` must only ever run inside a
sacrificial worker process — callers gate it on
:func:`repro.resilience.faults.in_worker`.
"""

from __future__ import annotations

import dataclasses
import math
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

from ..errors import ResourceExhaustedError

try:  # POSIX only; guards degrade to deadline-only elsewhere
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None

try:
    import signal as _signal
except ImportError:  # pragma: no cover
    _signal = None

@dataclass(frozen=True)
class ResourceGuards:
    """Per-job resource budget; ``None`` fields are unbounded.

    Picklable and tuple-convertible so the server pool can ship it to
    worker processes inside a plain job spec.
    """

    cpu_seconds: Optional[int] = None
    rss_bytes: Optional[int] = None
    deadline_seconds: Optional[float] = None

    def has_rlimits(self) -> bool:
        return self.cpu_seconds is not None or self.rss_bytes is not None

    def with_deadline(self, seconds: Optional[float]) -> "ResourceGuards":
        """A copy whose deadline is the tighter of ours and ``seconds``."""
        if seconds is None:
            return self
        if self.deadline_seconds is not None:
            seconds = min(seconds, self.deadline_seconds)
        return dataclasses.replace(self, deadline_seconds=seconds)

    def to_tuple(self):
        return (self.cpu_seconds, self.rss_bytes, self.deadline_seconds)

    @staticmethod
    def from_tuple(data) -> "ResourceGuards":
        return ResourceGuards(*data)


def _on_sigxcpu(_signum, _frame):  # pragma: no cover - exercised in workers
    raise ResourceExhaustedError(
        "analysis exceeded its CPU-time budget", kind="cpu"
    )


def apply_rlimits(guards: ResourceGuards) -> bool:
    """Cap this process's CPU time / address space per ``guards``.

    Called once per job inside a (reused) worker process. The CPU
    budget is relative: the soft limit is re-armed to the CPU this
    process has *already consumed* plus ``guards.cpu_seconds``, so
    every job gets its own budget however long the worker has lived.
    The hard limit is never changed (see the module docstring).

    Returns True when at least one limit was applied. Fail-open on
    platforms without ``resource`` or where the change is forbidden —
    the cooperative deadline still applies.
    """
    if _resource is None or not guards.has_rlimits():
        return False
    applied = False
    if guards.cpu_seconds is not None:
        try:
            usage = _resource.getrusage(_resource.RUSAGE_SELF)
            consumed = usage.ru_utime + usage.ru_stime
            soft = math.ceil(consumed) + max(1, int(guards.cpu_seconds))
            _, hard = _resource.getrlimit(_resource.RLIMIT_CPU)
            if hard != _resource.RLIM_INFINITY:
                soft = min(soft, hard)
            _resource.setrlimit(_resource.RLIMIT_CPU, (soft, hard))
            if _signal is not None and hasattr(_signal, "SIGXCPU"):
                _signal.signal(_signal.SIGXCPU, _on_sigxcpu)
            applied = True
        except (ValueError, OSError):  # pragma: no cover - odd hosts
            pass
    if guards.rss_bytes is not None and hasattr(_resource, "RLIMIT_AS"):
        try:
            soft = int(guards.rss_bytes)
            _, hard = _resource.getrlimit(_resource.RLIMIT_AS)
            if hard != _resource.RLIM_INFINITY:
                soft = min(soft, hard)
            _resource.setrlimit(_resource.RLIMIT_AS, (soft, hard))
            applied = True
        except (ValueError, OSError):  # pragma: no cover - odd hosts
            pass
    return applied


# ----------------------------------------------------------------------
# the cooperative in-analysis deadline
# ----------------------------------------------------------------------

_state = threading.local()


def set_deadline(seconds: Optional[float]) -> None:
    """Arm (or with ``None`` disarm) this thread's analysis deadline."""
    if seconds is None:
        _state.deadline = None
    else:
        _state.deadline = time.monotonic() + seconds


def clear_deadline() -> None:
    _state.deadline = None


def check_deadline() -> None:
    """Raise :class:`ResourceExhaustedError` when the deadline passed.

    Called from the analysis's unbounded loops; a single attribute
    read when no deadline is armed, so the fast path costs nothing
    measurable.
    """
    deadline = getattr(_state, "deadline", None)
    if deadline is not None and time.monotonic() > deadline:
        raise ResourceExhaustedError(
            "analysis exceeded its wall-clock deadline", kind="deadline"
        )


@contextmanager
def deadline_scope(seconds: Optional[float]):
    """Arm the deadline for the duration of one job, then restore."""
    previous = getattr(_state, "deadline", None)
    set_deadline(seconds)
    try:
        yield
    finally:
        _state.deadline = previous
