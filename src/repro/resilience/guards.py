"""Per-worker resource guards: rlimits + an in-analysis deadline.

A runaway translation unit must produce a structured
``resource_exhausted`` diagnostic, never an OOM kill that takes the
worker (and, unsupervised, the batch or daemon) with it. Three guards
cooperate:

- **CPU time** — ``resource.setrlimit(RLIMIT_CPU)``. The soft limit
  delivers ``SIGXCPU``, which :func:`apply_rlimits` turns into a
  :class:`~repro.errors.ResourceExhaustedError` (kind ``cpu``) raised
  at the next bytecode boundary; the hard limit (soft + grace) is the
  kernel's backstop ``SIGKILL``, which the supervision layer then
  handles as a worker crash.
- **Memory** — ``RLIMIT_AS`` (``RLIMIT_RSS`` is a no-op on modern
  Linux; the address-space cap is the nearest enforceable stand-in).
  Exceeding it surfaces as ``MemoryError``, which worker entry points
  map to ``resource_exhausted`` (kind ``rss``).
- **Deadline** — a *cooperative* wall-clock budget checked by
  :func:`check_deadline` inside the two unbounded loops of the
  analysis: the value-flow outer fixpoint
  (:meth:`repro.valueflow.engine.ValueFlowAnalysis.run`) and the
  Fourier–Motzkin elimination
  (:func:`repro.restrictions.solver.is_feasible`). The deadline is
  thread-local so the daemon's in-process fallback mode, where runner
  *threads* execute analyses side by side, cannot cross-contaminate
  budgets.

rlimits are process-wide and effectively irreversible (a lowered hard
limit cannot be raised back), so :func:`apply_rlimits` must only ever
run inside a sacrificial worker process — callers gate it on
:func:`repro.resilience.faults.in_worker`.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

from ..errors import ResourceExhaustedError

try:  # POSIX only; guards degrade to deadline-only elsewhere
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None

try:
    import signal as _signal
except ImportError:  # pragma: no cover
    _signal = None

#: seconds between the SIGXCPU soft limit and the SIGKILL hard limit
CPU_GRACE_SECONDS = 5


@dataclass(frozen=True)
class ResourceGuards:
    """Per-job resource budget; ``None`` fields are unbounded.

    Picklable and tuple-convertible so the server pool can ship it to
    worker processes inside a plain job spec.
    """

    cpu_seconds: Optional[int] = None
    rss_bytes: Optional[int] = None
    deadline_seconds: Optional[float] = None

    def has_rlimits(self) -> bool:
        return self.cpu_seconds is not None or self.rss_bytes is not None

    def with_deadline(self, seconds: Optional[float]) -> "ResourceGuards":
        """A copy whose deadline is the tighter of ours and ``seconds``."""
        if seconds is None:
            return self
        if self.deadline_seconds is not None:
            seconds = min(seconds, self.deadline_seconds)
        return dataclasses.replace(self, deadline_seconds=seconds)

    def to_tuple(self):
        return (self.cpu_seconds, self.rss_bytes, self.deadline_seconds)

    @staticmethod
    def from_tuple(data) -> "ResourceGuards":
        return ResourceGuards(*data)


def _on_sigxcpu(_signum, _frame):  # pragma: no cover - exercised in workers
    raise ResourceExhaustedError(
        "analysis exceeded its CPU-time budget", kind="cpu"
    )


def apply_rlimits(guards: ResourceGuards) -> bool:
    """Cap this process's CPU time / address space per ``guards``.

    Returns True when at least one limit was applied. Fail-open on
    platforms without ``resource`` or where lowering is forbidden —
    the cooperative deadline still applies.
    """
    if _resource is None or not guards.has_rlimits():
        return False
    applied = False
    if guards.cpu_seconds is not None:
        try:
            soft = int(guards.cpu_seconds)
            _, hard = _resource.getrlimit(_resource.RLIMIT_CPU)
            new_hard = soft + CPU_GRACE_SECONDS
            if hard != _resource.RLIM_INFINITY:
                new_hard = min(new_hard, hard)
            _resource.setrlimit(_resource.RLIMIT_CPU, (soft, new_hard))
            if _signal is not None and hasattr(_signal, "SIGXCPU"):
                _signal.signal(_signal.SIGXCPU, _on_sigxcpu)
            applied = True
        except (ValueError, OSError):  # pragma: no cover - odd hosts
            pass
    if guards.rss_bytes is not None and hasattr(_resource, "RLIMIT_AS"):
        try:
            soft = int(guards.rss_bytes)
            _, hard = _resource.getrlimit(_resource.RLIMIT_AS)
            if hard != _resource.RLIM_INFINITY:
                soft = min(soft, hard)
            _resource.setrlimit(_resource.RLIMIT_AS, (soft, hard))
            applied = True
        except (ValueError, OSError):  # pragma: no cover - odd hosts
            pass
    return applied


# ----------------------------------------------------------------------
# the cooperative in-analysis deadline
# ----------------------------------------------------------------------

_state = threading.local()


def set_deadline(seconds: Optional[float]) -> None:
    """Arm (or with ``None`` disarm) this thread's analysis deadline."""
    if seconds is None:
        _state.deadline = None
    else:
        _state.deadline = time.monotonic() + seconds


def clear_deadline() -> None:
    _state.deadline = None


def check_deadline() -> None:
    """Raise :class:`ResourceExhaustedError` when the deadline passed.

    Called from the analysis's unbounded loops; a single attribute
    read when no deadline is armed, so the fast path costs nothing
    measurable.
    """
    deadline = getattr(_state, "deadline", None)
    if deadline is not None and time.monotonic() > deadline:
        raise ResourceExhaustedError(
            "analysis exceeded its wall-clock deadline", kind="deadline"
        )


@contextmanager
def deadline_scope(seconds: Optional[float]):
    """Arm the deadline for the duration of one job, then restore."""
    previous = getattr(_state, "deadline", None)
    set_deadline(seconds)
    try:
        yield
    finally:
        _state.deadline = previous
