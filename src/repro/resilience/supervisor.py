"""Supervision of analysis worker processes.

``ProcessPoolExecutor`` has a brutal failure mode: one worker dying
(OOM kill, hard rlimit, a C-extension segfault) marks the whole pool
broken, fails *every* outstanding future with ``BrokenProcessPool``,
and leaves the executor permanently unusable. Unsupervised, one
poisoned translation unit costs the entire batch — or the daemon's
executor, and with it every later request.

Two small pieces turn that into "one crash costs one result":

- :class:`SupervisedExecutor` owns the executor and *rebuilds* it when
  a crash is reported, under a generation counter so the many runner
  threads (or batch wait-loop iterations) that observe the same break
  trigger exactly one rebuild. Jobs that already completed keep their
  results; unaffected jobs are simply resubmitted to the new pool.
- :class:`CrashLedger` tracks crash *attribution*. Worker death cannot
  name its culprit (the process is gone), so every job in flight at
  break time is recorded as a suspect; a job whose crash count reaches
  ``max_crashes`` (default 2) is **quarantined** — resolved with a
  structured ``worker_crashed`` result instead of being retried
  forever. The batch driver re-runs first-time suspects one at a time
  (isolation), so a second crash is unambiguous and innocent siblings
  pay at most one re-run.
"""

from __future__ import annotations

import concurrent.futures
import threading
from typing import Dict, List, Optional, Tuple


class CrashLedger:
    """Thread-safe crash counts per job key, with a quarantine line."""

    def __init__(self, max_crashes: int = 2):
        self.max_crashes = max(1, int(max_crashes))
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}

    def record(self, key: str) -> int:
        """Count one crash against ``key``; returns the new total."""
        with self._lock:
            self._counts[key] = self._counts.get(key, 0) + 1
            return self._counts[key]

    def count(self, key: str) -> int:
        with self._lock:
            return self._counts.get(key, 0)

    def is_quarantined(self, key: str) -> bool:
        return self.count(key) >= self.max_crashes

    def quarantined(self) -> List[str]:
        with self._lock:
            return sorted(k for k, n in self._counts.items()
                          if n >= self.max_crashes)


class SupervisedExecutor:
    """A process executor that survives ``BrokenProcessPool``.

    ``submit`` returns ``(generation, future)``; a caller that sees the
    future die with ``BrokenProcessPool`` reports it through
    :meth:`notify_broken` with that generation. The first reporter of a
    generation rebuilds the executor (and is told so, for restart
    accounting); late reporters of the same break find the generation
    already advanced and do nothing. ``available`` goes False only when
    a rebuild itself fails — the platform stopped allowing process
    creation — at which point callers fall back exactly as they do when
    no pool could be created in the first place.
    """

    def __init__(self, max_workers: int):
        self.max_workers = max(1, int(max_workers))
        self._lock = threading.Lock()
        self._generation = 0
        self.restarts = 0
        self._shut_down = False
        self._executor = self._build()

    def _build(self):
        from ..perf.batch import resolve_mp_context  # lazy: avoid cycle

        context = resolve_mp_context()
        if context is None:
            return None
        try:
            return concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=context,
            )
        except (OSError, PermissionError, ValueError):
            return None

    @property
    def available(self) -> bool:
        with self._lock:
            return self._executor is not None and not self._shut_down

    def submit(self, fn, *args) -> Tuple[int, concurrent.futures.Future]:
        """Submit work; ``RuntimeError`` when no executor is usable."""
        with self._lock:
            if self._executor is None or self._shut_down:
                raise RuntimeError("no worker pool available")
            return self._generation, self._executor.submit(fn, *args)

    def notify_broken(self, generation: int) -> bool:
        """Report a break observed on ``generation``.

        Returns True when *this* call performed the rebuild (exactly
        one caller per break), False when the pool had already been
        rebuilt — or shut down — by the time the report arrived.
        """
        with self._lock:
            if self._shut_down or generation != self._generation:
                return False
            old = self._executor
            self._generation += 1
            self._executor = self._build()
            self.restarts += 1
        if old is not None:
            # the broken executor cannot run anything; don't wait on it
            old.shutdown(wait=False)
        return True

    def shutdown(self, wait: bool = True,
                 cancel_futures: bool = False) -> None:
        with self._lock:
            if self._shut_down:
                return
            self._shut_down = True
            executor = self._executor
            self._executor = None
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=cancel_futures)
