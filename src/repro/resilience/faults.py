"""Deterministic fault injection for the resilience layer.

A :class:`FaultPlan` describes *what goes wrong and when* — kill the
worker while it runs job k, stall it, raise an artificial allocation
failure — plus the on-disk corruptions the chaos harness applies
between passes (flip bytes in an IR-cache entry, tear a summary-store
write). Plans travel through the ``SAFEFLOW_FAULTS`` environment
variable as JSON so that fork- and spawn-started worker processes
inherit them without any plumbing through the analysis API: production
code paths call :func:`on_job_start` unconditionally, and with no plan
in the environment that is a single dict lookup.

Determinism rules:

- every fault targets a *job name*, never a timer or a random draw;
- one-shot faults (the default for ``kill``) are latched through an
  ``O_CREAT | O_EXCL`` token file in ``latch_dir``, which is atomic
  across the worker processes of a pool — exactly one worker fires,
  and the supervised re-run of the same job proceeds cleanly;
- ``kill_always`` disables the latch to model a *poisoned* input that
  kills every worker it touches (the quarantine schedule).

Process-killing faults only ever fire inside a real worker process
(:func:`in_worker`), so an in-process fallback pool or a sequential
batch never shoots down the daemon/CLI itself — the fault is simply
skipped there, mirroring the fact that there is no isolation boundary
to test.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time
from dataclasses import asdict, dataclass
from typing import Optional

#: environment variable carrying the active plan as JSON
ENV_VAR = "SAFEFLOW_FAULTS"


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic fault schedule."""

    #: SIGKILL the worker process at the start of this job
    kill_job: Optional[str] = None
    #: fire the kill on *every* run of the job (poisoned input);
    #: default is once, latched through ``latch_dir``
    kill_always: bool = False
    #: sleep at the start of this job (slow-worker injection)
    slow_job: Optional[str] = None
    slow_seconds: float = 0.0
    #: raise ``MemoryError`` at the start of this job — the
    #: deterministic stand-in for an RLIMIT_AS allocation failure
    boom_job: Optional[str] = None
    #: SIGKILL the *batch driver* right after this job's result has
    #: been durably appended to the batch journal — the deterministic
    #: stand-in for a machine dying mid-batch (the kill-resume chaos
    #: schedule). Unlike ``kill_job`` this deliberately fires in the
    #: driver process, never in a worker.
    kill_after_journal: Optional[str] = None
    #: SIGKILL the process during its Nth (1-based) segment-store
    #: append, after a durable *prefix* of the frame bytes reached
    #: ``segments.log`` — the deterministic stand-in for a machine
    #: dying mid-append during ``safeflow watch`` (the watch-kill
    #: chaos schedule). Fires in whatever process owns the store.
    kill_segment_flush: Optional[int] = None
    #: raise inside this recovery-ladder tier ("strict", "gnu",
    #: "prelude", "cleanup", "salvage") every time it is attempted —
    #: the chaos stand-in for a buggy tier. The ladder must treat the
    #: crash as that tier *failing* and fall through to the next tier,
    #: never as a driver error (see
    #: :func:`repro.frontend.recovery.frontend_unit`).
    crash_tier: Optional[str] = None
    #: directory for one-shot latch tokens (required by one-shot kills)
    latch_dir: Optional[str] = None

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        return FaultPlan(**json.loads(text))


# parse cache: the env string is read on every job start; plans are
# tiny but workers run many jobs, so cache by exact string
_parsed: dict = {}


def plan_from_env() -> Optional[FaultPlan]:
    text = os.environ.get(ENV_VAR)
    if not text:
        return None
    plan = _parsed.get(text)
    if plan is None:
        try:
            plan = FaultPlan.from_json(text)
        except (ValueError, TypeError):
            return None  # malformed plan: fail-open, inject nothing
        if len(_parsed) > 8:
            _parsed.clear()
        _parsed[text] = plan
    return plan


class activate:
    """Context manager installing ``plan`` into the environment.

    Workers started (or forked) inside the scope inherit the plan;
    the previous value is restored on exit.
    """

    def __init__(self, plan: Optional[FaultPlan]):
        self.plan = plan
        self._previous: Optional[str] = None

    def __enter__(self) -> "activate":
        self._previous = os.environ.get(ENV_VAR)
        if self.plan is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = self.plan.to_json()
        return self

    def __exit__(self, *_exc) -> None:
        if self._previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = self._previous


def in_worker() -> bool:
    """True inside a multiprocessing worker (fork or spawn)."""
    return multiprocessing.parent_process() is not None


def _claim(latch_dir: Optional[str], token: str) -> bool:
    """Atomically claim a one-shot token; True for exactly one caller."""
    if latch_dir is None:
        return False
    try:
        os.makedirs(latch_dir, exist_ok=True)
        fd = os.open(os.path.join(latch_dir, token),
                     os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        return False
    os.write(fd, str(os.getpid()).encode())
    os.close(fd)
    return True


def on_job_start(job_name: str) -> None:
    """Fire any faults scheduled for ``job_name``.

    Called by the worker entry points (:mod:`repro.perf.batch`,
    :mod:`repro.server.pool`) before the analysis begins. No-op
    without an active plan.
    """
    plan = plan_from_env()
    if plan is None:
        return
    if plan.slow_job == job_name and plan.slow_seconds > 0:
        time.sleep(plan.slow_seconds)
    if plan.boom_job == job_name:
        if plan.kill_always or _claim(plan.latch_dir, f"boom-{job_name}"):
            raise MemoryError(
                f"injected allocation failure in job {job_name!r}"
            )
    if plan.kill_job == job_name and in_worker():
        if plan.kill_always or _claim(plan.latch_dir, f"kill-{job_name}"):
            os.kill(os.getpid(), signal.SIGKILL)


def on_journal_append(job_name: str) -> None:
    """Fire the ``kill_after_journal`` fault, if scheduled.

    Called by :class:`repro.perf.journal.BatchJournal` after a job's
    record has been appended *and* flushed/fsynced: the record is
    durable, so a resume must replay it. The kill targets the batch
    driver itself (a simulated machine death), so it fires regardless
    of :func:`in_worker`, and needs no latch — the process is gone
    right after.
    """
    plan = plan_from_env()
    if plan is None or plan.kill_after_journal != job_name:
        return
    os.kill(os.getpid(), signal.SIGKILL)


class RecoveryTierCrash(RuntimeError):
    """The injected ``crash_tier`` fault: a recovery tier blowing up."""


def on_recovery_tier(tier_name: str) -> None:
    """Fire the ``crash_tier`` fault, if scheduled.

    Called by :func:`repro.frontend.recovery.frontend_unit` at the
    start of every tier attempt. Raising (rather than SIGKILL) is the
    point: the contract under test is that a *crashing* tier counts as
    that tier failing — the ladder falls through to the next tier and
    the driver never sees the exception. Fires on every attempt (no
    latch): a buggy tier is buggy for every unit.
    """
    plan = plan_from_env()
    if plan is None or plan.crash_tier != tier_name:
        return
    raise RecoveryTierCrash(f"injected recovery-tier crash: {tier_name}")


#: per-process count of segment-store log appends (kill_segment_flush)
_segment_flushes = 0


def on_segment_flush(fileobj, blob: bytes) -> None:
    """Fire the ``kill_segment_flush`` fault, if scheduled.

    Called by :meth:`repro.incremental.segments.SegmentStore.flush`
    with the open log file and the sealed frames about to be appended.
    On the scheduled append, writes a prefix that is guaranteed to end
    *inside* the final frame, fsyncs it (the torn tail is durable) and
    SIGKILLs the process: the next open of the store must truncate back
    to the last intact frame, count an integrity eviction, and
    recompute. No latch needed — the process is gone right after.
    """
    global _segment_flushes
    plan = plan_from_env()
    if plan is None or plan.kill_segment_flush is None:
        return
    _segment_flushes += 1
    if _segment_flushes != plan.kill_segment_flush:
        return
    # a sealed frame is 4 length bytes + a digest-carrying payload far
    # larger than 16 bytes, so cutting 16 bytes off the end always
    # leaves a partial final frame
    fileobj.write(blob[: max(1, len(blob) - 16)])
    fileobj.flush()
    os.fsync(fileobj.fileno())
    os.kill(os.getpid(), signal.SIGKILL)


# ----------------------------------------------------------------------
# on-disk corruption helpers (driver-level faults of the chaos harness)
# ----------------------------------------------------------------------

def corrupt_ir_entry(cache_dir: str) -> Optional[str]:
    """Flip bytes in the middle of one IR-cache entry; path or None."""
    directory = os.path.join(cache_dir, "ir")
    try:
        names = sorted(n for n in os.listdir(directory)
                       if n.endswith(".pkl"))
    except OSError:
        return None
    if not names:
        return None
    path = os.path.join(directory, names[0])
    with open(path, "r+b") as f:
        data = f.read()
        middle = len(data) // 2
        f.seek(middle)
        f.write(bytes(b ^ 0xFF for b in data[middle:middle + 16]))
    return path


def truncate_ir_entry(cache_dir: str) -> Optional[str]:
    """Truncate one IR-cache entry to half (partial-disk write)."""
    directory = os.path.join(cache_dir, "ir")
    try:
        names = sorted(n for n in os.listdir(directory)
                       if n.endswith(".pkl"))
    except OSError:
        return None
    if not names:
        return None
    path = os.path.join(directory, names[0])
    size = os.path.getsize(path)
    with open(path, "r+b") as f:
        f.truncate(max(1, size // 2))
    return path


def tear_summary_store(cache_dir: str) -> Optional[str]:
    """Tear the summary store mid-write (truncate to half); path/None."""
    try:
        names = sorted(n for n in os.listdir(cache_dir)
                       if n.startswith("summaries-") and n.endswith(".pkl"))
    except OSError:
        return None
    if not names:
        return None
    path = os.path.join(cache_dir, names[0])
    size = os.path.getsize(path)
    with open(path, "r+b") as f:
        f.truncate(max(1, size // 2))
    return path
