"""Diagnostics, tables, and value-flow-graph rendering."""

from .diagnostics import (
    CriticalDependencyError,
    DependencyKind,
    Diagnostic,
    InitializationIssue,
    RestrictionViolation,
    Severity,
    UnmonitoredReadWarning,
    sort_key,
)

__all__ = [
    "CriticalDependencyError",
    "DependencyKind",
    "Diagnostic",
    "InitializationIssue",
    "RestrictionViolation",
    "Severity",
    "UnmonitoredReadWarning",
    "sort_key",
]
