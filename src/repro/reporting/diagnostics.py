"""Diagnostic records produced by the three analysis phases.

Terminology follows the paper's Table 1:

- **warning** — an access to an unmonitored non-core shared-memory
  value in the core component ("a warning is reported for each unsafe
  access to shared memory, without any false positives or false
  negatives", §3.3);
- **error (dependency)** — critical data (an ``assert(safe(x))``) is
  data- or control-dependent on an unsafe value;
- **restriction violation** — the program leaves the restricted
  language subset (P1–P3, A1, A2), so the analysis guarantees no
  longer hold;
- a **candidate false positive** is an error whose taint reaches the
  assertion *only* through control dependence — the exact class the
  paper triages manually with value flow graphs (§3.4.1, §4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..ir.source import SourceLocation


class Severity(enum.Enum):
    WARNING = "warning"
    ERROR = "error"
    VIOLATION = "violation"

    def __str__(self) -> str:
        return self.value


class DependencyKind(enum.Enum):
    """How unsafe data reaches the critical assertion."""

    DATA = "data"
    CONTROL = "control"
    BOTH = "data+control"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """Base diagnostic; subclasses add structure."""

    message: str
    location: Optional[SourceLocation]
    function: str
    severity: Severity

    def __str__(self) -> str:
        loc = f"{self.location}: " if self.location else ""
        return f"{loc}{self.severity}: {self.message} [in {self.function}]"


@dataclass(frozen=True)
class UnmonitoredReadWarning(Diagnostic):
    """A read of a non-core shared variable outside any monitoring
    context: the value returned is *unsafe* (§2 operational rules)."""

    region: str = ""
    #: stable identity for deduplication: (function, region, line)
    @property
    def key(self) -> Tuple[str, str, int]:
        line = self.location.line if self.location else 0
        return (self.function, self.region, line)


@dataclass(frozen=True)
class CriticalDependencyError(Diagnostic):
    """Critical data depends on at least one unmonitored non-core value."""

    variable: str = ""
    kind: DependencyKind = DependencyKind.DATA
    #: the unmonitored reads this assertion transitively depends on
    sources: Tuple[UnmonitoredReadWarning, ...] = ()
    #: human-readable witness path through the value flow graph
    witness: Tuple[str, ...] = ()
    #: set by triage when the dependency is control-only (§3.4.1)
    candidate_false_positive: bool = False

    def witness_text(self) -> str:
        return " ->\n    ".join(self.witness)


@dataclass(frozen=True)
class RestrictionViolation(Diagnostic):
    """A violation of the restricted language subset (phase 2)."""

    rule: str = ""  # "P1" | "P2" | "P3" | "A1" | "A2"


@dataclass(frozen=True)
class InitializationIssue(Diagnostic):
    """Problems discovered in shminit functions (overlaps, bad sizes)."""

    region_a: str = ""
    region_b: str = ""


def sort_key(diag: Diagnostic):
    loc = diag.location or SourceLocation("~", 1 << 30)
    return (loc.filename, loc.line, diag.function, diag.message)
