"""Plain-text table rendering for reports and the Table 1 harness."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Fixed-width ASCII table (right-pads text, right-aligns numbers)."""
    str_rows: List[List[str]] = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))

    def fmt(row: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(row):
            width = widths[i] if i < len(widths) else len(cell)
            parts.append(cell.ljust(width))
        return "| " + " | ".join(parts) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt(list(headers)))
    lines.append(sep)
    for row in str_rows:
        lines.append(fmt(row))
    lines.append(sep)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def table1_comparison(results) -> str:
    """Render measured-vs-paper Table 1.

    ``results`` is a list of (CorpusSystem, AnalysisReport) pairs.
    """
    headers = [
        "System", "LOC tot", "LOC core", "Annot (paper)",
        "Errors (paper)", "Warnings (paper)", "FalsePos (paper)",
    ]
    rows = []
    for system, report in results:
        counts = report.counts()
        paper = system.paper
        rows.append([
            system.title,
            f"{system.loc_total()} ({paper.loc_total})",
            f"{system.loc_core()} ({paper.loc_core})",
            f"{counts['annotation_lines']} ({paper.annotation_lines})",
            f"{counts['errors']} ({paper.error_dependencies})",
            f"{counts['warnings']} ({paper.warnings})",
            f"{counts['false_positives']} ({paper.false_positives})",
        ])
    return render_table(
        headers, rows,
        title="Table 1 — Applying SafeFlow to Control Systems "
              "(measured (paper))",
    )
