# Convenience targets for the SafeFlow reproduction.

PYTHON ?= python3

.PHONY: install test bench bench-server serve-smoke table1 demo examples experiments clean

install:
	$(PYTHON) -m pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only \
		--benchmark-json=BENCH_parallel.json

bench-server:
	$(PYTHON) -m pytest benchmarks/bench_server.py -q

serve-smoke:
	$(PYTHON) scripts/serve_smoke.py

table1:
	$(PYTHON) -m repro.cli table1

demo:
	$(PYTHON) -m repro.cli demo --rigged --trusting || true
	$(PYTHON) -m repro.cli demo

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/audit_corpus.py
	$(PYTHON) examples/inverted_pendulum.py
	$(PYTHON) examples/runtime_vs_static.py
	$(PYTHON) examples/message_passing.py

experiments:
	$(PYTHON) scripts/regen_experiments.py

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis *.egg-info build dist
